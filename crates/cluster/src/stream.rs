//! Streaming online clustering: single-pass selection with bounded
//! memory (ROADMAP "Live sampling / online clustering", after Pac-Sim).
//!
//! The batch pipeline is two-pass: characterize every frame, then
//! cluster the full `n × d` matrix. [`StreamClusterer`] replaces the
//! whole-sequence barrier with an incremental engine that consumes one
//! frame at a time and retains only
//!
//! * a seeded **reservoir** of at most `reservoir_capacity` raw rows
//!   (Vitter's Algorithm R, so every frame is retained with equal
//!   probability regardless of stream length),
//! * a fixed set of **micro-centroids** updated with sequential
//!   mini-batch steps (learning rate `1 / count`, the Sculley rule) that
//!   sketch the cluster structure of *evicted* frames, and
//! * one in-flight **mini-batch** of at most `batch_size` rows.
//!
//! Peak retained rows are therefore `reservoir + batch window` — O(1)
//! in the stream length — and the per-frame cost is `O(k_micro · d)`,
//! so an `n`-frame stream costs `O(n · k)` instead of the batch path's
//! `O(n² · d)` similarity/silhouette walls (the finishing pass is
//! `O(m · k² · d)` over the reservoir only).
//!
//! An **online k search** probes BIC at `{live_k − 1, live_k,
//! live_k + 1}` over the current reservoir every `probe_interval`
//! mini-batches, promoting or demoting the candidate cluster count as
//! frames arrive; [`StreamClusterer::live_representatives`] promotes
//! one representative frame per live cluster on demand, so a consumer
//! can act mid-stream without waiting for the end.
//!
//! # Determinism
//!
//! Every data-dependent decision folds in **arrival order on the caller
//! thread**: reservoir offers consume the seeded RNG in frame order,
//! micro-centroid updates apply one row at a time in frame order, and
//! probe/finish seeds derive only from `(seed, round, k)`
//! ([`probe_seed`], pinned). The parallel machinery lives *inside* the
//! finishing [`search_clusters_with`] call, which is already
//! bit-identical at any thread count — so the whole streaming path is
//! too.
//!
//! # The exact mode (oracle)
//!
//! With `reservoir_capacity == 0` the reservoir is unbounded: Algorithm
//! R never evicts (and never consumes RNG), so [`StreamClusterer::finish`]
//! stabilizes over *all* rows in arrival order — the same matrix, the
//! same [`search_clusters_with`] call, and therefore **bitwise** the
//! batch search's output. The proptest oracle and the CI determinism
//! matrix pin streaming-exact ≡ batch at 1/2/8 threads.

use crate::kmeans::{kmeans_with_scratch, KMeansConfig, KMeansResult, KMeansScratch};
use crate::matrix::PointMatrix;
use crate::search::{candidate_seed, search_clusters_with, SearchConfig, SearchScratch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Lloyd iterations of a mid-stream probe fit: enough to settle the BIC
/// ordering of adjacent `k` candidates, far cheaper than a full fit.
const PROBE_ITERATIONS: usize = 10;

/// Configuration of the streaming clusterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Maximum raw rows retained in the reservoir. `0` means
    /// *unbounded* — the exact mode whose output is bitwise the batch
    /// search's (the memory bound is then `n`, not O(1)).
    pub reservoir_capacity: usize,
    /// Rows buffered before a mini-batch micro-centroid update.
    pub batch_size: usize,
    /// Number of micro-centroids sketching evicted frames.
    pub micro_clusters: usize,
    /// Mini-batches between online BIC probes of the candidate `k`.
    /// `0` disables probing (the finishing search still picks `k`).
    pub probe_interval: usize,
    /// The §III-F search run over the reservoir at finish time (its
    /// `seed` also drives the reservoir RNG and the probe fits).
    pub search: SearchConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            reservoir_capacity: 1024,
            batch_size: 256,
            micro_clusters: 16,
            probe_interval: 4,
            search: SearchConfig::default(),
        }
    }
}

impl StreamConfig {
    /// The exact (unbounded-reservoir) configuration — the oracle mode
    /// whose output is bitwise the batch search's.
    pub fn exact() -> Self {
        Self {
            reservoir_capacity: 0,
            ..Self::default()
        }
    }

    /// Sets the reservoir capacity (builder style; `0` = unbounded).
    pub fn with_reservoir_capacity(mut self, capacity: usize) -> Self {
        self.reservoir_capacity = capacity;
        self
    }

    /// Sets the mini-batch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch_size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Sets the micro-centroid count (builder style).
    pub fn with_micro_clusters(mut self, micro_clusters: usize) -> Self {
        assert!(micro_clusters >= 1, "micro_clusters must be at least 1");
        self.micro_clusters = micro_clusters;
        self
    }

    /// Sets the probe interval (builder style; `0` disables probes).
    pub fn with_probe_interval(mut self, interval: usize) -> Self {
        self.probe_interval = interval;
        self
    }

    /// Sets the finishing search configuration (builder style).
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Sets the base seed (builder style) — forwarded to the search,
    /// the reservoir RNG and the probe fits.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.search.seed = seed;
        self
    }
}

/// Derives the reservoir RNG seed from the base seed —
/// `seed ⊕ 0xA076_1D64_78BD_642F` (pinned): the reservoir stream must
/// be independent of every k-means stream derived from the same seed.
#[inline]
pub fn reservoir_seed(seed: u64) -> u64 {
    seed ^ 0xA076_1D64_78BD_642F
}

/// Derives the k-means seed of online probe `round` at candidate `k` —
/// [`candidate_seed`]`(seed ⊕ round · 0x2545_F491_4F6C_DD1D, k)`
/// (pinned): every probe round gets an independent stream per
/// candidate, decoupled from the finishing search's streams.
#[inline]
pub fn probe_seed(seed: u64, round: u64, k: usize) -> u64 {
    candidate_seed(seed ^ round.wrapping_mul(0x2545_F491_4F6C_DD1D), k)
}

/// Outcome of a finished stream: the same shape as the batch search's
/// selection, plus streaming diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The selected number of clusters.
    pub k: usize,
    /// Cluster label of every frame, in arrival order. Reservoir
    /// survivors carry their exact stabilization label; evicted frames
    /// carry their micro-centroid's nearest final cluster.
    pub labels: Vec<usize>,
    /// One `(frame_index, cluster_size)` per cluster, in cluster
    /// order. Representatives always come from the retained reservoir;
    /// sizes count the *full* stream.
    pub representatives: Vec<(usize, usize)>,
    /// BIC score of every `k` the finishing search evaluated.
    pub bic_scores: Vec<f64>,
    /// Total frames consumed.
    pub frames_seen: usize,
    /// Rows retained in the reservoir at finish time.
    pub reservoir_len: usize,
    /// High-water mark of raw rows retained at any instant
    /// (reservoir + mini-batch window) — the bounded-memory fence.
    pub peak_rows_retained: usize,
    /// The online probe's final candidate `k` (diagnostic; the
    /// finishing search decides the real `k`).
    pub live_k: usize,
}

/// Incremental single-pass clusterer. Feed rows with
/// [`StreamClusterer::push`], optionally keep the per-column scales
/// current with [`StreamClusterer::set_scales`], then call
/// [`StreamClusterer::finish`].
#[derive(Debug)]
pub struct StreamClusterer {
    dim: usize,
    config: StreamConfig,
    /// Per-column scale applied inside every distance (rows are stored
    /// raw so late scale refinements — the running normalization masses
    /// of a fused pipeline — apply retroactively to retained rows).
    scales: Vec<f64>,
    /// Flat `micro_clusters × dim` raw-space centroid block; only the
    /// first `micro_init` rows are live.
    micro: Vec<f64>,
    micro_count: Vec<u64>,
    micro_init: usize,
    /// Micro-centroid of every frame, in arrival order (`u32` halves
    /// the only O(n) state the clusterer keeps).
    micro_labels: Vec<u32>,
    reservoir: PointMatrix,
    /// Frame index of every reservoir slot.
    res_frames: Vec<usize>,
    rng: SmallRng,
    batch: PointMatrix,
    n_seen: usize,
    batches_done: usize,
    probes_done: u64,
    live_k: usize,
    peak_rows: usize,
    probe_scratch: KMeansScratch,
}

impl StreamClusterer {
    /// A fresh clusterer for `dim`-column rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, config: StreamConfig) -> Self {
        assert!(dim >= 1, "rows need at least one column");
        assert!(config.batch_size >= 1, "batch_size must be at least 1");
        assert!(
            config.micro_clusters >= 1,
            "micro_clusters must be at least 1"
        );
        let capacity = config.reservoir_capacity;
        Self {
            dim,
            scales: vec![1.0; dim],
            micro: vec![0.0; config.micro_clusters * dim],
            micro_count: vec![0; config.micro_clusters],
            micro_init: 0,
            micro_labels: Vec::new(),
            reservoir: if capacity > 0 {
                PointMatrix::with_capacity(capacity, dim)
            } else {
                PointMatrix::new(dim)
            },
            res_frames: Vec::new(),
            rng: SmallRng::seed_from_u64(reservoir_seed(config.search.seed)),
            batch: PointMatrix::with_capacity(config.batch_size, dim),
            n_seen: 0,
            batches_done: 0,
            probes_done: 0,
            live_k: 1,
            peak_rows: 0,
            probe_scratch: KMeansScratch::default(),
            config,
        }
    }

    /// Updates the per-column scales applied inside every distance.
    /// Retained raw rows pick the new scales up retroactively; the
    /// finishing pass always uses the scales current at finish time.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != dim`.
    pub fn set_scales(&mut self, scales: &[f64]) {
        assert_eq!(scales.len(), self.dim, "scales length != dim");
        self.scales.copy_from_slice(scales);
    }

    /// Consumes one row in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length != dim");
        let frame = self.n_seen;
        self.n_seen += 1;
        self.batch.push_row(row);
        // Algorithm R, keyed on arrival order only: the RNG is consumed
        // exactly when the reservoir is full, so the unbounded (exact)
        // mode never touches it.
        let capacity = self.config.reservoir_capacity;
        if capacity == 0 || self.reservoir.len() < capacity {
            self.reservoir.push_row(row);
            self.res_frames.push(frame);
        } else {
            let j = self.rng.gen_range(0..frame + 1);
            if j < capacity {
                self.reservoir.set_row(j, row);
                self.res_frames[j] = frame;
            }
        }
        self.peak_rows = self.peak_rows.max(self.reservoir.len() + self.batch.len());
        if self.batch.len() >= self.config.batch_size {
            self.flush_batch();
        }
    }

    /// Total rows consumed so far.
    pub fn frames_seen(&self) -> usize {
        self.n_seen
    }

    /// Rows currently retained in the reservoir.
    pub fn reservoir_len(&self) -> usize {
        self.reservoir.len()
    }

    /// The online probe's current candidate cluster count.
    pub fn live_k(&self) -> usize {
        self.live_k
    }

    /// High-water mark of raw rows retained at any instant.
    pub fn peak_rows_retained(&self) -> usize {
        self.peak_rows
    }

    /// Promotes one representative frame per live cluster from the
    /// current reservoir (a quick seeded fit at [`StreamClusterer::live_k`];
    /// deterministic for a given stream prefix). Empty before the first
    /// row arrives.
    pub fn live_representatives(&mut self) -> Vec<usize> {
        if self.reservoir.is_empty() {
            return Vec::new();
        }
        let scaled = self.scaled_reservoir();
        let k = self.live_k.min(scaled.len()).max(1);
        let cfg = KMeansConfig {
            max_iterations: PROBE_ITERATIONS,
            ..KMeansConfig::new(k)
                .with_seed(probe_seed(self.config.search.seed, self.probes_done, k))
                .with_init(self.config.search.init)
        };
        self.probe_scratch.reset_for_new_data();
        let fit = kmeans_with_scratch(&scaled, &cfg, &mut self.probe_scratch);
        fit.representatives(&scaled)
            .into_iter()
            .map(|slot| self.res_frames[slot])
            .collect()
    }

    /// Flushes any partial mini-batch, stabilizes over the retained
    /// reservoir and returns the selection.
    ///
    /// # Panics
    ///
    /// Panics if no rows were pushed.
    pub fn finish(mut self) -> StreamOutcome {
        if !self.batch.is_empty() {
            self.flush_batch();
        }
        assert!(self.n_seen > 0, "cannot finish an empty stream");
        let scaled = self.scaled_reservoir();
        // In exact mode `scaled` is the full normalized dataset in
        // arrival order, so this is *the* batch search — bit-identical
        // selection by construction.
        let found = search_clusters_with(&scaled, &self.config.search, &mut SearchScratch::new());
        let k = found.k;
        let rep_slots = found.clustering.representatives(&scaled);
        let micro_map = self.map_micro_to_final(&found.clustering);
        let mut labels = vec![0usize; self.n_seen];
        for (i, &m) in self.micro_labels.iter().enumerate() {
            labels[i] = micro_map[m as usize];
        }
        // Reservoir survivors get their exact label (in exact mode this
        // overwrites every frame — labels ≡ the batch labels).
        for (slot, &frame) in self.res_frames.iter().enumerate() {
            labels[frame] = found.clustering.labels[slot];
        }
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            sizes[l] += 1;
        }
        let representatives = rep_slots
            .into_iter()
            .zip(sizes)
            .map(|(slot, size)| (self.res_frames[slot], size))
            .collect();
        StreamOutcome {
            k,
            labels,
            representatives,
            bic_scores: found.bic_scores,
            frames_seen: self.n_seen,
            reservoir_len: self.reservoir.len(),
            peak_rows_retained: self.peak_rows,
            live_k: self.live_k,
        }
    }

    /// Assigns every buffered row to its nearest micro-centroid (or
    /// founds a new one while slots remain) with a sequential
    /// mini-batch update, then probes the candidate `k` on schedule.
    fn flush_batch(&mut self) {
        let dim = self.dim;
        for bi in 0..self.batch.len() {
            // Split so the row and the centroid block can be borrowed
            // together: centroids live strictly inside `self.micro`.
            let row = self.batch.row(bi);
            if self.micro_init < self.config.micro_clusters {
                let c = self.micro_init;
                self.micro[c * dim..(c + 1) * dim].copy_from_slice(row);
                self.micro_count[c] = 1;
                self.micro_init += 1;
                self.micro_labels.push(c as u32);
                continue;
            }
            let mut best = 0usize;
            let mut best_d2 = f64::INFINITY;
            for c in 0..self.micro_init {
                let cent = &self.micro[c * dim..(c + 1) * dim];
                let mut acc = 0.0f64;
                for ((&x, &y), &s) in row.iter().zip(cent).zip(&self.scales) {
                    let diff = (x - y) * s;
                    acc += diff * diff;
                }
                // Strict `<`: first minimum wins, like the assignment
                // rule of the batch k-means.
                if acc < best_d2 {
                    best_d2 = acc;
                    best = c;
                }
            }
            self.micro_count[best] += 1;
            let lr = 1.0 / self.micro_count[best] as f64;
            let cent = &mut self.micro[best * dim..(best + 1) * dim];
            for (c, &x) in cent.iter_mut().zip(row) {
                *c += (x - *c) * lr;
            }
            self.micro_labels.push(best as u32);
        }
        self.batch.clear();
        self.batches_done += 1;
        let interval = self.config.probe_interval;
        if interval > 0 && self.batches_done.is_multiple_of(interval) && self.reservoir.len() >= 2 {
            self.probe_k();
        }
    }

    /// One online BIC probe: fit `{live_k − 1, live_k, live_k + 1}`
    /// over the scaled reservoir with cheap seeded runs and move
    /// `live_k` to the best-scoring candidate (promote/demote).
    fn probe_k(&mut self) {
        let scaled = self.scaled_reservoir();
        self.probes_done += 1;
        let lo = self.live_k.saturating_sub(1).max(1);
        let hi = (self.live_k + 1).min(scaled.len());
        let mut best_k = self.live_k.min(scaled.len()).max(1);
        let mut best_score = f64::NEG_INFINITY;
        self.probe_scratch.reset_for_new_data();
        for k in lo..=hi {
            let cfg = KMeansConfig {
                max_iterations: PROBE_ITERATIONS,
                ..KMeansConfig::new(k)
                    .with_seed(probe_seed(self.config.search.seed, self.probes_done, k))
                    .with_init(self.config.search.init)
            };
            let fit = kmeans_with_scratch(&scaled, &cfg, &mut self.probe_scratch);
            let score = crate::bic::bic_score(&scaled, &fit);
            // Strict `>`: the lowest candidate wins ties, biasing the
            // live estimate toward fewer clusters between probes.
            if score > best_score {
                best_score = score;
                best_k = k;
            }
        }
        self.live_k = best_k;
    }

    /// The reservoir with the current scales applied, in slot order.
    fn scaled_reservoir(&self) -> PointMatrix {
        let flat: Vec<f64> = self
            .reservoir
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &v)| v * self.scales[i % self.dim])
            .collect();
        PointMatrix::from_flat(flat, self.dim)
    }

    /// Nearest final cluster of every live micro-centroid (scaled
    /// space, strict `<`, first minimum wins).
    fn map_micro_to_final(&self, clustering: &KMeansResult) -> Vec<usize> {
        let dim = self.dim;
        (0..self.micro_init.max(1))
            .map(|c| {
                let cent = &self.micro[c * dim..(c + 1) * dim];
                let mut best = 0usize;
                let mut best_d2 = f64::INFINITY;
                for (fc, fcent) in clustering.centroids.iter().enumerate() {
                    let mut acc = 0.0f64;
                    for ((&x, &y), &s) in cent.iter().zip(fcent).zip(&self.scales) {
                        let diff = x * s - y;
                        acc += diff * diff;
                    }
                    if acc < best_d2 {
                        best_d2 = acc;
                        best = fc;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::search_clusters;

    /// Two well-separated blobs, interleaved in arrival order.
    fn blob_rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 50.0 };
                let j = (i as f64 * 0.37).sin();
                vec![c + j, c - j * 0.5]
            })
            .collect()
    }

    fn stream_all(rows: &[Vec<f64>], config: StreamConfig) -> StreamOutcome {
        let mut s = StreamClusterer::new(rows[0].len(), config);
        for row in rows {
            s.push(row);
        }
        s.finish()
    }

    #[test]
    fn exact_mode_is_bitwise_the_batch_search() {
        let rows = blob_rows(70);
        let config = StreamConfig::exact().with_seed(9).with_batch_size(16);
        let out = stream_all(&rows, config);
        let data = PointMatrix::from_rows(rows);
        let found = search_clusters(&data, &config.search);
        assert_eq!(out.k, found.k);
        assert_eq!(out.labels, found.clustering.labels);
        assert_eq!(out.bic_scores, found.bic_scores);
        let reps: Vec<(usize, usize)> = found
            .clustering
            .representatives(&data)
            .into_iter()
            .zip(found.clustering.cluster_sizes())
            .collect();
        assert_eq!(out.representatives, reps);
        assert_eq!(out.reservoir_len, 70);
    }

    #[test]
    fn exact_mode_identical_across_thread_counts() {
        let rows = blob_rows(60);
        let config = StreamConfig::exact().with_seed(3);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            runs.push(stream_all(&rows, config));
        }
        megsim_exec::set_threads(0);
        for pair in runs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn bounded_mode_respects_the_memory_fence() {
        let rows = blob_rows(5000);
        let config = StreamConfig::default()
            .with_reservoir_capacity(128)
            .with_batch_size(64)
            .with_micro_clusters(8)
            .with_seed(7);
        let out = stream_all(&rows, config);
        assert!(
            out.peak_rows_retained <= 128 + 64,
            "peak = {}",
            out.peak_rows_retained
        );
        assert_eq!(out.reservoir_len, 128);
        assert_eq!(out.frames_seen, 5000);
        assert_eq!(out.labels.len(), 5000);
        let total: usize = out.representatives.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 5000);
        assert!(out.k >= 2, "two blobs must not collapse: k = {}", out.k);
        for (c, &(frame, _)) in out.representatives.iter().enumerate() {
            assert_eq!(out.labels[frame], c, "representative outside its cluster");
        }
    }

    #[test]
    fn bounded_mode_separates_the_blobs() {
        // Every frame's blob is recoverable from its arrival parity;
        // no final cluster may mix the two blobs even though most
        // frames were labeled through an evicted micro-centroid.
        let rows = blob_rows(2000);
        let out = stream_all(
            &rows,
            StreamConfig::default()
                .with_reservoir_capacity(256)
                .with_batch_size(128)
                .with_seed(5),
        );
        for c in 0..out.k {
            let members: Vec<usize> = (0..2000).filter(|&i| out.labels[i] == c).collect();
            assert!(
                members.iter().all(|m| m % 2 == members[0] % 2),
                "cluster {c} mixes blobs"
            );
        }
    }

    #[test]
    fn online_probe_promotes_k() {
        let rows = blob_rows(600);
        let mut s = StreamClusterer::new(
            2,
            StreamConfig::default()
                .with_reservoir_capacity(128)
                .with_batch_size(32)
                .with_probe_interval(2)
                .with_seed(11),
        );
        assert_eq!(s.live_k(), 1);
        for row in &rows {
            s.push(row);
        }
        assert!(s.live_k() >= 2, "live_k = {}", s.live_k());
        let live = s.live_representatives();
        assert_eq!(live.len(), s.live_k());
        // Promoted representatives span both blobs.
        assert!(live.iter().any(|f| f % 2 == 0) && live.iter().any(|f| f % 2 == 1));
    }

    #[test]
    fn streaming_is_deterministic_for_a_given_seed() {
        let rows = blob_rows(1500);
        let config = StreamConfig::default()
            .with_reservoir_capacity(100)
            .with_batch_size(50)
            .with_seed(21);
        assert_eq!(stream_all(&rows, config), stream_all(&rows, config));
    }

    #[test]
    fn scales_apply_retroactively_to_retained_rows() {
        // Streaming raw rows with scales s must finish bitwise like
        // streaming pre-scaled rows with unit scales: rows are stored
        // raw and scaled only inside distances.
        let rows = blob_rows(80);
        let scales = [0.25, 4.0];
        let config = StreamConfig::exact().with_seed(2);
        let mut raw = StreamClusterer::new(2, config);
        for row in &rows {
            raw.push(row);
        }
        raw.set_scales(&scales);
        let mut pre = StreamClusterer::new(2, config);
        for row in &rows {
            pre.push(&[row[0] * scales[0], row[1] * scales[1]]);
        }
        assert_eq!(raw.finish(), pre.finish());
    }

    #[test]
    fn seed_derivations_are_pinned() {
        // The reservoir stream and every probe stream must stay
        // decoupled from the search streams forever: pin the exact
        // derivations (changing either reshuffles which frames survive
        // eviction / which probe fit wins, silently changing output).
        assert_eq!(reservoir_seed(0), 0xA076_1D64_78BD_642F);
        assert_eq!(reservoir_seed(0xA076_1D64_78BD_642F), 0);
        // 0x2545_F491_4F6C_DD1D ⊕ candidate_seed's golden-ratio term.
        assert_eq!(probe_seed(0, 1, 1), 0xBB72_8D28_3026_A108);
        assert_eq!(
            probe_seed(7, 3, 2),
            candidate_seed(7 ^ 3u64.wrapping_mul(0x2545_F491_4F6C_DD1D), 2)
        );
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn finishing_an_empty_stream_panics() {
        let s = StreamClusterer::new(2, StreamConfig::default());
        let _ = s.finish();
    }
}
