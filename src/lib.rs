//! Umbrella crate for the MEGsim reproduction workspace.
//!
//! Re-exports the member crates so the workspace-level integration tests
//! and examples can reach everything through a single dependency.

pub use megsim_cluster as cluster;
pub use megsim_core as core;
pub use megsim_funcsim as funcsim;
pub use megsim_gfx as gfx;
pub use megsim_mem as mem;
pub use megsim_power as power;
pub use megsim_stats as stats;
pub use megsim_timing as timing;
pub use megsim_workloads as workloads;
