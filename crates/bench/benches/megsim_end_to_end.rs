//! The headline comparison: full-sequence cycle simulation vs the
//! MEGsim flow (functional characterization + clustering + simulating
//! only the representatives). The wall-clock ratio is the simulation
//! speedup the paper reports as 126x at full scale.
//!
//! Both flows are additionally swept across worker-pool sizes
//! (`--threads 1/2/N` equivalent) to measure how the deterministic
//! execution layer scales; results are bit-identical at every size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megsim_core::evaluate::{characterize_sequence, simulate_representatives, simulate_sequence};
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, usize::from);
    let mut sweep = vec![1];
    if max >= 2 {
        sweep.push(2);
    }
    if max > 2 {
        sweep.push(max);
    }
    sweep
}

fn bench_end_to_end(c: &mut Criterion) {
    let workload = by_alias("pvz", 0.02, 7).expect("known alias"); // 100 frames
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();

    let mut full = c.benchmark_group("full_sequence_simulation_pvz100");
    for threads in thread_sweep() {
        full.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                megsim_exec::set_threads(threads);
                b.iter(|| simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu));
            },
        );
    }
    full.finish();

    let mut flow = c.benchmark_group("megsim_flow_pvz100");
    for threads in thread_sweep() {
        flow.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                megsim_exec::set_threads(threads);
                b.iter(|| {
                    let matrix = characterize_sequence(
                        workload.iter_frames(),
                        workload.shaders(),
                        &gpu,
                        &config,
                    );
                    let selection = select_representatives(&matrix, &config);
                    simulate_representatives(
                        |i| workload.frame(i),
                        &selection,
                        workload.shaders(),
                        &gpu,
                    )
                });
            },
        );
    }
    flow.finish();
    megsim_exec::set_threads(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
