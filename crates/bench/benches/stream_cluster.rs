//! Streaming online clustering benchmark: the single-pass bounded-memory
//! selection path against the exact two-pass batch path, across three
//! decades of trace length (10³, 10⁴, 10⁵ synthetic frames).
//!
//! Readings merge into `BENCH_9.json` at the repo root. Three claims are
//! recorded: (1) the headline wall-clock speedup at 10⁵ frames, (2) the
//! streaming path's near-linear n-scaling (the 10⁵/10⁴ time ratio,
//! guarded below 30× — an O(n²) path would read ~100×), and (3) the
//! bounded-memory fence (peak retained rows vs the reservoir knob).
//! A fourth leg drives 10⁴ real frames through the fused
//! decode→characterize→cluster pipeline to time the end-to-end path.

use std::time::Instant;

use megsim_bench::report::{available_cores, merge_bench_json, stream_context_entries};
use megsim_core::evaluate::characterize_stream;
use megsim_core::pipeline::{
    select_representatives, select_representatives_stream, MegsimConfig, StreamClusterConfig,
};
use megsim_core::{frame_cache, FeatureMatrix};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

/// Best-of-`reps` wall-clock seconds for `f`.
fn secs(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// A synthetic two-phase feature matrix of `n` frames: alternating
/// 18-frame "menu" and "gameplay" scenes with jittered shader activity,
/// the shape of the paper's workloads stretched to arbitrary length.
fn two_phase_matrix(n: usize) -> FeatureMatrix {
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let jitter = (i as f64 * 0.7).sin() * 5.0;
        if (i / 18) % 2 == 0 {
            rows.push(vec![100.0 + jitter, 0.0, 500.0 + jitter, 0.0, 50.0]);
        } else {
            rows.push(vec![0.0, 900.0 + jitter, 0.0, 4000.0 + jitter, 300.0]);
        }
    }
    FeatureMatrix::from_rows(rows, 2, 2)
}

fn main() {
    let cores = available_cores();
    let config = MegsimConfig::default().with_seed(42);
    let stream = StreamClusterConfig::default();
    let mut entries = stream_context_entries(100_000, stream.reservoir_capacity, stream.batch_size);
    entries.push(("stream_available_parallelism".to_string(), cores as f64));

    let mut stream_secs_by_n = Vec::new();
    for &n in &[1_000usize, 10_000, 100_000] {
        let matrix = two_phase_matrix(n);
        // The exact path re-runs the full k-search over all n rows; one
        // rep at the largest size keeps the bench CI-sized.
        let reps = if n >= 100_000 { 1 } else { 3 };
        let batch = secs(reps, || {
            std::hint::black_box(select_representatives(&matrix, &config));
        });
        let streamed = secs(reps, || {
            std::hint::black_box(select_representatives_stream(&matrix, &config, &stream));
        });
        let outcome = select_representatives_stream(&matrix, &config, &stream);
        let fence = stream.reservoir_capacity + stream.batch_size;
        assert!(
            outcome.peak_rows_retained <= fence,
            "memory fence breached at n={n}: peak {} > {}",
            outcome.peak_rows_retained,
            fence
        );
        entries.push((format!("stream_cluster_n{n}_batch_secs"), batch));
        entries.push((format!("stream_cluster_n{n}_stream_secs"), streamed));
        entries.push((format!("stream_cluster_n{n}_speedup"), batch / streamed));
        entries.push((
            format!("stream_cluster_n{n}_peak_rows"),
            outcome.peak_rows_retained as f64,
        ));
        println!(
            "n={n}: batch {batch:.3}s, stream {streamed:.3}s ({:.1}x), k={} peak_rows={}",
            batch / streamed,
            outcome.selection.k(),
            outcome.peak_rows_retained
        );
        stream_secs_by_n.push(streamed);
    }

    // n-scaling guard: a 10x problem must cost nowhere near 100x. The
    // streaming path is O(n·k); a quadratic regression would read ~100.
    let scaling = stream_secs_by_n[2] / stream_secs_by_n[1];
    entries.push(("stream_cluster_scaling_1e5_over_1e4".to_string(), scaling));
    println!("stream n-scaling 1e5/1e4: {scaling:.1}x (guard < 30)");
    assert!(
        scaling < 30.0,
        "streaming path lost its linear n-scaling: 10x the frames cost {scaling:.1}x the time"
    );

    // End-to-end fused pipeline: 10⁴ real frames (a 100-frame workload
    // cycled with the frame cache on, so replay cost stays realistic
    // without 10⁴ distinct renders) through decode→characterize→cluster.
    frame_cache::set_enabled(true);
    let workload = by_alias("jjo", 0.02, 42).expect("known alias");
    let frames: Vec<_> = workload.generate_frames();
    let gpu = GpuConfig::small(192, 192);
    let n_e2e = 10_000usize;
    frame_cache::clear();
    let e2e = secs(1, || {
        let sel = characterize_stream(
            frames.iter().cycle().take(n_e2e).cloned(),
            workload.shaders(),
            &gpu,
            &config,
            &stream,
        );
        assert_eq!(sel.selection.labels.len(), n_e2e);
        std::hint::black_box(sel);
    });
    frame_cache::clear();
    entries.push((
        "stream_characterize_1e4_frames_per_sec".to_string(),
        n_e2e as f64 / e2e,
    ));
    println!(
        "fused characterize+cluster: {} frames in {e2e:.2}s ({:.0} frames/s)",
        n_e2e,
        n_e2e as f64 / e2e
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_9.json");
    if let Err(e) = merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
