//! Intra-frame parallel timing: tile-sharded raster simulation with a
//! deterministic memory-traffic merge.
//!
//! All pre-PR-6 parallelism was frame-level, so one large frame
//! serialized on a single core. Tiles, however, are independent through
//! the FP-array raster pipeline — only the shared memory system (tile
//! cache, per-FP texture caches, L2, DRAM) couples them. This module
//! splits `Gpu::simulate_frame`'s tile loop into two stages:
//!
//! 1. **Record** (parallel, pure): shard workers walk disjoint tile
//!    ranges and do everything that does not touch shared state —
//!    texture-sampler memoization and per-fragment address generation,
//!    same-line run coalescing ([`megsim_mem::RunCoalescer`]),
//!    polygon-list run layout, per-FP ALU clock sums, Early-Z/blend
//!    occupancy, round-robin quad distribution — emitting a compact
//!    per-shard [`ShardLog`] of `(addr, count, kind)` runs plus pure
//!    clock totals. No cache or DRAM is touched, so shards race on
//!    nothing.
//! 2. **Replay** (serial, tile-index-ascending): the caller thread
//!    merges completed shards in order, replaying each tile's log
//!    through the existing [`megsim_mem::Cache::access_run`] /
//!    [`megsim_mem::MemoryHierarchy::access_run`] fast paths and
//!    re-deriving every latency-coupled clock (polygon-list read-back,
//!    texture-pipe stalls, IMR depth/color posted writes, the tile
//!    flush) exactly as the sequential loop would.
//!
//! Because the log captures the *complete* ordered stream of
//! potentially-memory-touching events — with the pure clock advances
//! between them — the replay leaves every cache line, LRU stamp, DRAM
//! row buffer, stat counter and cycle count **bit-identical to the
//! sequential raster phase at any thread count and any shard size**.
//! The oracle tests below pin that equivalence against both the direct
//! fast path and the retained seed [`crate::ReferenceGpu`].

use std::ops::Range;

use megsim_funcsim::{FrameTrace, RenderMode};
use megsim_gfx::math::Vec2;
use megsim_gfx::shader::ShaderTable;
use megsim_gfx::texture::LodSampler;
use megsim_mem::{AddressSpace, Cache, MemoryHierarchy, RunCoalescer};

use crate::config::GpuConfig;
use crate::gpu::texture_run;
use crate::stats::UnitBusy;

/// Tiles per shard. Small enough that shards load-balance across
/// uneven tiles, large enough that per-shard overhead (one allocation
/// set + one pipeline hand-off) amortizes. Determinism does not depend
/// on this value: replay order is tile-index order regardless.
pub(crate) const SHARD_TILES: usize = 8;

/// One potentially-memory-touching event of a tile, in the exact order
/// the sequential raster loop would issue it. `pre` fields carry the
/// pure clock advances accumulated since the previous event on the
/// same clock, so the replay reconstructs each clock's running value
/// at the moment of the access.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TileOp {
    /// A coalesced same-line texture-sample run on FP `fp`'s cache.
    Tex {
        /// Fragment Processor (texture cache index).
        fp: u8,
        /// Accesses in the run (all on `addr`'s line).
        count: u32,
        /// First address of the run.
        addr: u64,
    },
    /// An IMR depth-buffer line access, `pre` Early-Z cycles after the
    /// previous depth event.
    Depth {
        /// Early-Z occupancy accumulated since the last depth access
        /// (including this quad's own test cycle).
        pre: u32,
        /// Depth line address.
        addr: u64,
    },
    /// An IMR color read-modify-write, `pre` blend cycles after the
    /// previous color event.
    Color {
        /// Blend occupancy accumulated since the last color access
        /// (including this quad's visible fragments).
        pre: u32,
        /// Whether the blend mode reads the destination first.
        read: bool,
        /// Frame-buffer line address.
        addr: u64,
    },
}

/// Pure per-tile totals plus the end offsets of the tile's slices in
/// the shard's flat run/op arrays (CSR layout — one allocation set per
/// shard, not per tile).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileMeta {
    /// Flattened tile index (row-major), for flush addressing.
    tile_index: u32,
    /// Rasterizer attribute-interpolation occupancy (pure).
    raster_clock: u64,
    /// Early-Z occupancy accumulated after the last depth event (the
    /// whole tile's occupancy when no depth events were recorded).
    earlyz_tail: u64,
    /// Blend occupancy accumulated after the last color event.
    blend_tail: u64,
    /// On-chip depth-buffer accesses (covered fragments).
    depth_accesses: u64,
    /// On-chip color-buffer accesses (visible fragments, ×2 when the
    /// blend mode reads the destination).
    color_accesses: u64,
    /// Visible pixels — the tile flush recomputes its line addresses
    /// from this, so flush traffic needs no log entries.
    visible_px: u64,
    /// End offset of this tile's polygon-list runs in
    /// [`ShardLog::list_runs`].
    list_run_end: u32,
    /// End offset of this tile's ops in [`ShardLog::ops`].
    op_end: u32,
}

/// The recorded raster work of one shard of tiles: per-tile metadata
/// over flat run/op arrays.
#[derive(Debug, Default)]
pub(crate) struct ShardLog {
    metas: Vec<TileMeta>,
    /// Same-line polygon-list read runs, all tiles concatenated.
    list_runs: Vec<(u64, u64)>,
    /// Ordered memory-touching events, all tiles concatenated.
    ops: Vec<TileOp>,
    /// Per-FP ALU clock sums, `fragment_processors` entries per tile.
    fp_alu: Vec<u64>,
}

/// Records the raster-phase work of `trace.tiles[range]` without
/// touching any shared cache or DRAM state. Pure: depends only on the
/// trace, shader table, configuration and frame index, so shards can
/// record concurrently in any order.
pub(crate) fn record_tiles(
    trace: &FrameTrace,
    shaders: &ShaderTable,
    config: &GpuConfig,
    frame_index: u64,
    range: Range<usize>,
) -> ShardLog {
    let immediate = trace.mode == RenderMode::Immediate;
    let deferred = trace.mode == RenderMode::TileBasedDeferred;
    let tc_shift = config.tile_cache.line_size.trailing_zeros();
    let tex_shift = config.texture_cache.line_size.trailing_zeros();
    let n_fp = config.fragment_processors;
    let earlyz_step: u64 = if deferred { 2 } else { 1 };

    let mut log = ShardLog {
        metas: Vec::with_capacity(range.len()),
        ..ShardLog::default()
    };
    let mut samplers: Vec<LodSampler> = Vec::new();
    for tile in &trace.tiles[range] {
        // Polygon-list read-back runs: a pure function of the tile
        // index and entry count (absent in immediate mode), coalesced
        // by tile-cache line exactly as the sequential scan would.
        if !immediate {
            let entries = tile.prims.len() as u64;
            let mut n = 0u64;
            while n < entries {
                let addr = AddressSpace::polygon_list_entry(tile.tile_index, n);
                let line = addr >> tc_shift;
                let mut m = n + 1;
                while m < entries
                    && AddressSpace::polygon_list_entry(tile.tile_index, m) >> tc_shift == line
                {
                    m += 1;
                }
                log.list_runs.push((addr, m - n));
                n = m;
            }
        }

        let fp_base = log.fp_alu.len();
        log.fp_alu.resize(fp_base + n_fp, 0);
        let mut raster_clock = 0u64;
        let mut earlyz_pending = 0u64;
        let mut blend_pending = 0u64;
        let mut depth_accesses = 0u64;
        let mut color_accesses = 0u64;
        let mut visible_px = 0u64;
        let mut fp_rr = 0usize;
        for prim in &tile.prims {
            let fs = shaders.fragment_shader(prim.fragment_shader);
            let fs_instr = u64::from(fs.instruction_count());
            let mut quad_cost = [0u64; 5];
            for (v, cost) in quad_cost.iter_mut().enumerate().skip(1) {
                *cost = (v as u64 * fs_instr).div_ceil(config.fragment_issue_width);
            }
            samplers.clear();
            if let Some(texture) = prim.texture.as_ref() {
                for filter in &fs.texture_samples {
                    samplers.push(texture.lod_sampler(*filter, prim.lod));
                }
            }
            let texel = samplers
                .first()
                .map(|s| s.texel_extent())
                .unwrap_or_default();
            let offsets = [
                Vec2::new(0.0, 0.0),
                Vec2::new(texel.x, 0.0),
                Vec2::new(0.0, texel.y),
                Vec2::new(texel.x, texel.y),
            ];
            raster_clock += prim.quads.len() as u64
                * u64::from(prim.attributes)
                * config.rasterizer_cycles_per_attribute;
            for quad in &prim.quads {
                earlyz_pending += earlyz_step;
                depth_accesses += u64::from(quad.covered_count());
                if immediate && prim.depth_test {
                    let addr = AddressSpace::depth_pixel(
                        u32::from(quad.x),
                        u32::from(quad.y),
                        trace.viewport.width,
                    );
                    log.ops.push(TileOp::Depth {
                        pre: earlyz_pending as u32,
                        addr,
                    });
                    earlyz_pending = 0;
                }
                let vis = u64::from(quad.visible_count());
                if vis == 0 {
                    fp_rr += 1;
                    if fp_rr == n_fp {
                        fp_rr = 0;
                    }
                    continue;
                }
                let fp = fp_rr;
                fp_rr += 1;
                if fp_rr == n_fp {
                    fp_rr = 0;
                }
                log.fp_alu[fp_base + fp] += quad_cost[vis as usize];
                if !samplers.is_empty() {
                    // Same-line run merging with the exact boundaries
                    // of the sequential address scan; the coalescer
                    // state spans the whole quad, as in the direct
                    // path's `sample_textures`.
                    let mut runs = RunCoalescer::new(tex_shift);
                    for off in &offsets[..vis.min(4) as usize] {
                        let fuv = Vec2::new(quad.uv.x + off.x, quad.uv.y + off.y);
                        for sampler in &samplers {
                            sampler.for_each_run(fuv, tex_shift, |addr, count| {
                                runs.push(addr, count, |addr, count| {
                                    log.ops.push(TileOp::Tex {
                                        fp: fp as u8,
                                        count: count as u32,
                                        addr,
                                    });
                                });
                            });
                        }
                    }
                    runs.flush(|addr, count| {
                        log.ops.push(TileOp::Tex {
                            fp: fp as u8,
                            count: count as u32,
                            addr,
                        });
                    });
                }
                blend_pending += vis;
                color_accesses += vis * if prim.blend.reads_destination() { 2 } else { 1 };
                if immediate {
                    let addr = AddressSpace::framebuffer_pixel(
                        u32::from(quad.x),
                        u32::from(quad.y),
                        trace.viewport.width,
                        frame_index,
                    );
                    log.ops.push(TileOp::Color {
                        pre: blend_pending as u32,
                        read: prim.blend.reads_destination(),
                        addr,
                    });
                    blend_pending = 0;
                }
                visible_px += vis;
            }
        }
        log.metas.push(TileMeta {
            tile_index: tile.tile_index,
            raster_clock,
            earlyz_tail: earlyz_pending,
            blend_tail: blend_pending,
            depth_accesses,
            color_accesses,
            visible_px,
            list_run_end: log.list_runs.len() as u32,
            op_end: log.ops.len() as u32,
        });
    }
    log
}

/// Raster-phase accumulators threaded through the tile-ordered merge.
#[derive(Debug, Default)]
pub(crate) struct ReplayState {
    /// Accumulated per-tile pipeline time.
    pub tile_work_clock: u64,
    /// Accumulated frame-buffer flush time (overlaps tile work).
    pub flush_clock: u64,
    /// On-chip color-buffer accesses.
    pub color_accesses: u64,
    /// On-chip depth-buffer accesses.
    pub depth_accesses: u64,
    /// Visible pixels replayed — the split-frame distributor sizes each
    /// GPU's region transfer from this.
    pub visible_px: u64,
}

impl ReplayState {
    /// The raster phase's duration so far: tile work and the
    /// overlapping flush engine, whichever finishes later.
    pub fn raster_cycles(&self) -> u64 {
        self.tile_work_clock.max(self.flush_clock)
    }
}

/// Replays one shard's log against the shared memory system, tile by
/// tile in index order — the deterministic merge. Must be called with
/// shards in ascending tile order; within the call it reproduces the
/// sequential raster loop's access order and clock arithmetic exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn replay_shard(
    log: &ShardLog,
    trace: &FrameTrace,
    config: &GpuConfig,
    tile_cache: &mut Cache,
    texture_caches: &mut [Cache],
    memory: &mut MemoryHierarchy,
    frame_index: u64,
    base: u64,
    busy: &mut UnitBusy,
    state: &mut ReplayState,
    tex_clock: &mut [u64],
) {
    let immediate = trace.mode == RenderMode::Immediate;
    let tc_latency = config.tile_cache.latency;
    let stall_cap = config.texture_miss_stall_cap;
    let n_fp = config.fragment_processors;
    let mut list_start = 0usize;
    let mut op_start = 0usize;
    for (t, meta) in log.metas.iter().enumerate() {
        let tile_base = base + state.tile_work_clock;
        // Polygon-list read-back through the tile cache.
        let mut list_clock = 0u64;
        for &(addr, count) in &log.list_runs[list_start..meta.list_run_end as usize] {
            list_clock += 1;
            let acc = tile_cache.access_run(addr, false, count);
            if let Some(wb) = acc.writeback {
                memory.access(wb, tile_base + list_clock, true);
            }
            if acc.hit {
                list_clock += tc_latency;
            } else {
                let fill = memory.access(addr, tile_base + list_clock, false);
                list_clock += fill.latency;
            }
            list_clock += (count - 1) * (1 + tc_latency);
        }
        list_start = meta.list_run_end as usize;

        // Ordered event replay: texture runs, IMR depth tests and IMR
        // color writes interleave on the shared L2/DRAM exactly as the
        // per-quad loop issued them.
        let mut earlyz_clock = 0u64;
        let mut blend_clock = 0u64;
        tex_clock[..n_fp].fill(0);
        for op in &log.ops[op_start..meta.op_end as usize] {
            match *op {
                TileOp::Tex { fp, count, addr } => texture_run(
                    &mut texture_caches[fp as usize],
                    memory,
                    addr,
                    u64::from(count),
                    tile_base,
                    stall_cap,
                    &mut tex_clock[fp as usize],
                ),
                TileOp::Depth { pre, addr } => {
                    earlyz_clock += u64::from(pre);
                    let acc = memory.access(addr, tile_base + earlyz_clock, true);
                    let arrival = acc.ready_at.saturating_sub(tile_base);
                    earlyz_clock =
                        earlyz_clock.max(arrival.saturating_sub(config.plb_write_window));
                }
                TileOp::Color { pre, read, addr } => {
                    blend_clock += u64::from(pre);
                    if read {
                        memory.access(addr, tile_base + blend_clock, false);
                    }
                    let acc = memory.access(addr, tile_base + blend_clock, true);
                    let arrival = acc.ready_at.saturating_sub(tile_base);
                    blend_clock =
                        blend_clock.max(arrival.saturating_sub(config.flush_write_window));
                }
            }
        }
        op_start = meta.op_end as usize;
        earlyz_clock += meta.earlyz_tail;
        blend_clock += meta.blend_tail;
        state.depth_accesses += meta.depth_accesses;
        state.color_accesses += meta.color_accesses;
        state.visible_px += meta.visible_px;

        let fp_alu = &log.fp_alu[t * n_fp..(t + 1) * n_fp];
        let fp_alu_max = fp_alu.iter().copied().max().unwrap_or(0);
        let tex_max = tex_clock[..n_fp].iter().copied().max().unwrap_or(0);
        let fp_max = fp_alu
            .iter()
            .zip(&tex_clock[..n_fp])
            .map(|(&alu, &tex)| alu.max(tex))
            .max()
            .unwrap_or(0);
        busy.polygon_list_read += list_clock;
        busy.rasterizer += meta.raster_clock;
        busy.early_z += earlyz_clock;
        busy.fragment_alu += fp_alu_max;
        busy.texture_pipe += tex_max;
        busy.blending += blend_clock;
        let tile_pipeline = list_clock
            .max(meta.raster_clock)
            .max(earlyz_clock)
            .max(fp_max)
            .max(blend_clock);
        state.tile_work_clock += tile_pipeline + config.early_z_in_flight;

        // Tile flush: line addresses are a pure function of the tile
        // rect and visible-pixel count, so they are recomputed here
        // instead of logged (IMR wrote its colors inline — nothing to
        // flush).
        if immediate {
            continue;
        }
        let (tx, ty) = (
            meta.tile_index % trace.viewport.tiles_x(),
            meta.tile_index / trace.viewport.tiles_x(),
        );
        let rect = trace.viewport.tile_rect(tx, ty);
        let flush_bytes = meta.visible_px * 4;
        let flush_lines = flush_bytes.div_ceil(config.dram.line_size);
        let row_pixels = u64::from(trace.viewport.width);
        for line in 0..flush_lines {
            let local = line * (config.dram.line_size / 4);
            let y = rect.1 + (local / u64::from(trace.viewport.tile_size)) as u32;
            let x = rect.0 + (local % u64::from(trace.viewport.tile_size)) as u32;
            let addr = AddressSpace::framebuffer_pixel(
                x.min(trace.viewport.width - 1),
                y.min(trace.viewport.height - 1),
                row_pixels as u32,
                frame_index,
            );
            let w = memory.access(addr, base + state.flush_clock, true);
            let retire = w.ready_at.saturating_sub(base);
            state.flush_clock =
                (state.flush_clock + 1).max(retire.saturating_sub(config.flush_write_window));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GpuConfig;
    use crate::gpu::{Gpu, ShardMode};
    use crate::stats::FrameStats;
    use crate::timing_reference::ReferenceGpu;
    use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
    use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec2, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    const MODES: [RenderMode; 3] = [
        RenderMode::TileBased,
        RenderMode::TileBasedDeferred,
        RenderMode::Immediate,
    ];

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 10));
        t.add(ShaderProgram::fragment(
            0,
            "fs_tex",
            7,
            vec![TextureFilter::Bilinear],
        ));
        t.add(ShaderProgram::fragment(1, "fs_flat", 3, vec![]));
        t.add(ShaderProgram::fragment(
            2,
            "fs_multi",
            5,
            vec![TextureFilter::Trilinear, TextureFilter::Nearest],
        ));
        t
    }

    fn draw_of(
        tris: &[[(f32, f32, f32); 3]],
        fs: u32,
        blend: BlendMode,
        depth_test: bool,
    ) -> DrawCall {
        let mut vertices = Vec::new();
        let mut indices = Vec::new();
        for t in tris {
            for &(x, y, z) in t {
                indices.push(vertices.len() as u32);
                let mut v = Vertex::at(Vec3::new(x, y, z));
                v.uv = Vec2::new((x + 1.0) * 0.5, (y + 1.0) * 0.5);
                vertices.push(v);
            }
        }
        DrawCall {
            mesh: Arc::new(Mesh::new(vertices, indices, 0x100)),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(fs),
            texture: (fs != 1).then(|| TextureDesc::new(0, 64, 64, 4, 0x8000)),
            blend,
            depth_test,
        }
    }

    /// Three warm frames of layered overdraw: textured opaque base,
    /// multi-sampler mid layer, flat alpha-blended top — every unit,
    /// blend kind and cache in play.
    fn scene() -> Vec<Frame> {
        let mut f = Frame::new();
        f.draws.push(draw_of(
            &[
                [(-0.9, -0.9, 0.4), (0.9, -0.9, 0.4), (0.9, 0.9, 0.4)],
                [(-0.9, -0.9, 0.4), (0.9, 0.9, 0.4), (-0.9, 0.9, 0.4)],
            ],
            0,
            BlendMode::Opaque,
            true,
        ));
        f.draws.push(draw_of(
            &[[(-0.7, -0.5, -0.2), (0.8, -0.6, -0.2), (0.1, 0.9, -0.2)]],
            2,
            BlendMode::Additive,
            true,
        ));
        f.draws.push(draw_of(
            &[[(-0.3, -1.1, -0.6), (1.1, 0.2, -0.6), (-0.8, 0.9, -0.6)]],
            1,
            BlendMode::AlphaBlend,
            false,
        ));
        vec![f.clone(), f.clone(), f]
    }

    fn run_sequence(
        mode: RenderMode,
        viewport: Viewport,
        shard: ShardMode,
        frames: &[Frame],
    ) -> (Vec<FrameStats>, u64) {
        let t = shaders();
        let mut cfg = GpuConfig::small(viewport.width, viewport.height);
        cfg.viewport = viewport;
        cfg.render_mode = mode;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let mut gpu = Gpu::new(cfg);
        gpu.set_shard_mode(shard);
        let stats = frames
            .iter()
            .map(|f| gpu.simulate_frame(&renderer.render_frame(f, &t), &t))
            .collect();
        (stats, gpu.now())
    }

    #[test]
    fn forced_sharding_bit_identical_to_sequential_all_modes() {
        let frames = scene();
        let viewport = Viewport::new(128, 128, 32);
        for mode in MODES {
            let base = run_sequence(mode, viewport, ShardMode::Off, &frames);
            for threads in [1, 2, 8] {
                megsim_exec::set_threads(threads);
                let got = run_sequence(mode, viewport, ShardMode::Force, &frames);
                megsim_exec::set_threads(0);
                assert_eq!(got, base, "{mode:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn forced_sharding_matches_reference_on_partial_tiles() {
        // 33×33 target with 16-px tiles: a 3×3 grid whose right column
        // and bottom row are 1-px slivers — the shard-boundary and
        // flush-rect-clamp regression case.
        let frames = scene();
        let viewport = Viewport::new(33, 33, 16);
        let t = shaders();
        for mode in MODES {
            let mut cfg = GpuConfig::small(viewport.width, viewport.height);
            cfg.viewport = viewport;
            cfg.render_mode = mode;
            let renderer = Renderer::new(RenderConfig { viewport, mode });
            let mut sharded = Gpu::new(cfg.clone());
            sharded.set_shard_mode(ShardMode::Force);
            let mut reference = ReferenceGpu::new(cfg);
            for (i, frame) in frames.iter().enumerate() {
                let trace = renderer.render_frame(frame, &t);
                let a = sharded.simulate_frame(&trace, &t);
                let b = reference.simulate_frame(&trace, &t);
                assert_eq!(a, b, "{mode:?} frame {i}");
                assert_eq!(sharded.now(), reference.now(), "{mode:?} frame {i} clock");
            }
        }
    }

    #[test]
    fn forced_sharding_handles_trivial_frames() {
        // Empty frames and single-prim slivers: zero or one shard, no
        // ops to replay, flush rect on a partial tile.
        let tiny = {
            let mut f = Frame::new();
            f.draws.push(draw_of(
                &[[(-0.05, -0.05, 0.0), (0.05, -0.05, 0.0), (0.0, 0.05, 0.0)]],
                1,
                BlendMode::Opaque,
                true,
            ));
            f
        };
        let frames = vec![Frame::new(), tiny, Frame::new()];
        let viewport = Viewport::new(33, 33, 16);
        for mode in MODES {
            let base = run_sequence(mode, viewport, ShardMode::Off, &frames);
            let got = run_sequence(mode, viewport, ShardMode::Force, &frames);
            assert_eq!(got, base, "{mode:?}");
        }
    }

    #[test]
    fn auto_sharding_stays_bit_identical_when_pool_active() {
        // Auto flips the sharded path on once >1 worker thread exists;
        // the stats must not move relative to the single-thread run.
        let frames = scene();
        let viewport = Viewport::new(96, 40, 24);
        for mode in MODES {
            megsim_exec::set_threads(1);
            let base = run_sequence(mode, viewport, ShardMode::Auto, &frames);
            megsim_exec::set_threads(8);
            let got = run_sequence(mode, viewport, ShardMode::Auto, &frames);
            megsim_exec::set_threads(0);
            assert_eq!(got, base, "{mode:?}");
        }
    }
}
