//! Quickstart: run MEGsim end-to-end on one synthetic benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Flow (paper §III): fast functional characterization of every frame →
//! k-means/BIC clustering → simulate only the representative frames on
//! the cycle-level model → scale by cluster sizes → compare against the
//! full simulation.

use megsim_core::evaluate::{characterize_sequence, evaluate_megsim, simulate_sequence};
use megsim_core::pipeline::MegsimConfig;
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

fn main() {
    // A scaled-down "Jetpack Joyride"-like 2-D endless runner
    // (500 frames instead of the paper's 5000, for a fast demo).
    let workload = by_alias("jjo", 0.1, 42).expect("known benchmark alias");
    let gpu = GpuConfig::mali450_like(); // the Table I machine
    let config = MegsimConfig::default();

    println!(
        "workload: {} ({} frames, {} vertex + {} fragment shaders)",
        workload.name,
        workload.frames(),
        workload.shaders().vertex_count(),
        workload.shaders().fragment_count()
    );

    // 1. Fast functional characterization (the paper's §III-B pass).
    println!("characterizing frames functionally...");
    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);

    // 2. Ground truth: full cycle-level simulation (what MEGsim avoids).
    println!("running the full cycle-level simulation (ground truth)...");
    let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);

    // 3. MEGsim: cluster, pick representatives, estimate, compare.
    let run = evaluate_megsim(&matrix, &per_frame, &config);

    println!();
    println!(
        "MEGsim simulates {} of {} frames — a {:.1}x reduction",
        run.frames_simulated(),
        workload.frames(),
        run.reduction_factor()
    );
    println!("relative errors vs full simulation:");
    println!("  total cycles       {:>7.3}%", run.errors.cycles * 100.0);
    println!(
        "  DRAM accesses      {:>7.3}%",
        run.errors.dram_accesses * 100.0
    );
    println!(
        "  L2 accesses        {:>7.3}%",
        run.errors.l2_accesses * 100.0
    );
    println!(
        "  tile-cache accesses{:>7.3}%",
        run.errors.tile_cache_accesses * 100.0
    );
    println!();
    println!(
        "estimated cycles {:>14}  actual {:>14}",
        run.estimated.cycles, run.actual.cycles
    );
}
