//! Subcommand implementations of the `megsim` tool.

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::BufReader;

use megsim_bench::report;
use megsim_core::evaluate::{characterize_sequence, evaluate_megsim, simulate_sequence};
use megsim_core::pipeline::{select_representatives, MegsimConfig, StreamClusterConfig};
use megsim_core::{metric_errors, sequence_totals, FeatureMatrix, StreamSelection};
use megsim_gfx::draw::Frame;
use megsim_gfx::shader::{ShaderKind, ShaderTable};
use megsim_gl::{
    encode_with_version, record_sequence, Command, FrameIter, StreamDecoder, TraceError,
    FORMAT_VERSION,
};
use megsim_timing::{DispatchMode, GpuConfig, MultiGpuConfig, Topology};

const USAGE: &str = "\
usage: megsim <command> [options]

commands:
  record       --benchmark <alias> [--scale F] [--seed N] --out <trace.mglt>
               [--codec-version {1|2}]
               generate a synthetic benchmark and record its GL trace
               (v2 is the compact varint wire format)
  info         <trace.mglt>
               print trace statistics (single streaming decode pass)
  characterize <trace.mglt> [--out features.csv]
               replay the trace functionally and emit the N x D
               feature matrix (paper §III-B)
  select       <trace.mglt> [--out plan.csv] [--seed N] [--stream-cluster]
               cluster the frames and print the representative plan
               (paper §III-E/F)
  estimate     <trace.mglt> [--seed N] [--ground-truth] [--stream-cluster]
               [--gpus N] [--dispatch {afr|sfr}] [--mem {shared|private}]
               run MEGsim end-to-end on the trace: simulate only the
               representatives and report estimated totals; with
               --ground-truth also run the full simulation and report
               the Fig. 7 relative errors. --gpus simulates an N-GPU
               rig (default 1): --dispatch picks alternate-frame (afr,
               frame i on GPU i mod N) or split-frame (sfr, tile bands
               per GPU) work distribution and --mem picks one shared
               contended L2+DRAM back end or a private hierarchy per
               GPU; the accuracy table is then reported per
               (N, dispatch, mem) against the multi-GPU ground truth
  batch        <manifest>
               run a manifest of campaigns concurrently on one worker
               pool and one shared frame cache; each line reads
               `<name> <characterize|estimate> <trace> [seed=N]
               [out=PATH] [ground-truth]` (# comments allowed); prints
               a per-campaign cache-tier table
  help         print this message

global options:
  --threads N  worker threads for the parallel stages (0 = MEGSIM_THREADS
               env or all cores); results are identical at any count
  --no-frame-cache
               disable the content-addressed frame-result cache (results
               are identical either way; only wall-clock time changes)
  --cache-dir DIR
               attach a persistent on-disk frame-result store under DIR
               (also via MEGSIM_CACHE_DIR) so repeated runs start warm
               across processes; corrupt or unwritable store data only
               warns and degrades to a cold run, never fails
  --no-persist ignore MEGSIM_CACHE_DIR for this run
  --stream-cluster
               (select/estimate) fuse characterize + cluster into one
               single-pass online clustering stage with bounded memory:
               only a frame reservoir, the micro-centroids and the
               current frame are retained, O(n*k) in the trace length;
               --reservoir N caps retained feature rows (default 1024;
               0 = unbounded exact mode, bitwise identical to the
               two-pass path) and --stream-batch N sets the mini-batch
               size (default 256)";

/// Dispatches a full argv (including program name).
pub fn run(argv: &[String]) -> Result<(), String> {
    use megsim_core::frame_cache;
    let mut opts = Options::parse(argv)?;
    let threads: usize = opts.flag("threads", 0)?;
    megsim_exec::set_threads(threads);
    frame_cache::set_enabled(!opts.has("no-frame-cache"));
    // Attach the persistent disk tier if requested. Opening can only
    // fail on directory-level problems, and even then the run proceeds
    // cold: a broken cache must never fail a campaign.
    let cache_dir = opts.flags.get("cache-dir").cloned().or_else(|| {
        if opts.has("no-persist") {
            None
        } else {
            std::env::var("MEGSIM_CACHE_DIR")
                .ok()
                .filter(|s| !s.is_empty())
        }
    });
    let store_attached = match &cache_dir {
        Some(dir) => match frame_cache::set_store_dir(std::path::Path::new(dir)) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("warning: cannot open cache dir {dir}: {e}; running cold");
                false
            }
        },
        None => false,
    };
    let before = frame_cache::report();
    let result = match opts.command.as_str() {
        "record" => record(&mut opts),
        "info" => info(&mut opts),
        "characterize" => characterize(&mut opts),
        "select" => select(&mut opts),
        "estimate" => estimate(&mut opts),
        "batch" => batch(&mut opts),
        "help" | "--help" | "-h" | "" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    // Per-invocation cache accounting: the delta since dispatch, not
    // process-lifetime totals (they differ under tests and embedding).
    let delta = frame_cache::report().delta_since(&before);
    let lookups = delta.activity_hits
        + delta.activity_disk_hits
        + delta.activity_shared_hits
        + delta.activity_misses
        + delta.stats_hits
        + delta.stats_disk_hits
        + delta.stats_shared_hits
        + delta.stats_misses;
    if frame_cache::is_enabled() && lookups > 0 {
        eprintln!("{}", delta.summary());
    }
    if store_attached {
        match frame_cache::flush_store() {
            Ok(sealed) => {
                if sealed > 0 {
                    eprintln!("cache store: sealed {sealed} new records");
                }
            }
            Err(e) => eprintln!("warning: cache store flush failed: {e}"),
        }
        // Detach so embedding callers (and the CLI tests) that invoke
        // `run` repeatedly in one process get per-invocation stores.
        frame_cache::detach_store();
    }
    result
}

/// Parsed command line: a subcommand, positional arguments and flags.
struct Options {
    command: String,
    positional: Vec<String>,
    flags: HashMap<String, String>,
    bools: Vec<String>,
}

impl Options {
    fn parse(argv: &[String]) -> Result<Self, String> {
        // Global flags may appear before or after the subcommand: the
        // first non-flag token is the command, everything else keeps
        // its relative meaning.
        let mut command = String::new();
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut bools = Vec::new();
        let rest: Vec<&String> = argv.iter().skip(1).collect();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i];
            if let Some(name) = a.strip_prefix("--") {
                if name == "ground-truth"
                    || name == "no-frame-cache"
                    || name == "no-persist"
                    || name == "stream-cluster"
                {
                    bools.push(name.to_string());
                    i += 1;
                } else {
                    let value = rest
                        .get(i + 1)
                        .ok_or_else(|| format!("missing value for --{name}"))?;
                    flags.insert(name.to_string(), (*value).clone());
                    i += 2;
                }
            } else if command.is_empty() {
                command = a.clone();
                i += 1;
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Self {
            command,
            positional,
            flags,
            bools,
        })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            Some(v) => v.parse().map_err(|_| format!("invalid --{name}: {v}")),
            None => Ok(default),
        }
    }

    fn required_flag(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn trace_path(&mut self) -> Result<String, String> {
        if self.positional.is_empty() {
            return Err("expected a trace file argument".into());
        }
        Ok(self.positional.remove(0))
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

/// Opens a trace file for frame-granular streaming replay: frames are
/// decoded incrementally off the file handle, never materialized as a
/// whole sequence.
fn open_frames(path: &str) -> Result<FrameIter<BufReader<File>>, String> {
    let file = File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    FrameIter::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// Adapts the fallible streaming frame iterator into the infallible
/// shape the parallel passes consume, parking the first decode/replay
/// error for the caller to check once the pass finishes.
struct StreamedFrames {
    iter: FrameIter<BufReader<File>>,
    error: Option<TraceError>,
}

impl StreamedFrames {
    fn open(path: &str) -> Result<Self, String> {
        Ok(Self {
            iter: open_frames(path)?,
            error: None,
        })
    }

    /// Surfaces the parked error, if the stream ended on one.
    fn finish(self, path: &str) -> Result<(), String> {
        match self.error {
            Some(e) => Err(format!("{path}: {e}")),
            None => Ok(()),
        }
    }
}

impl Iterator for StreamedFrames {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        match self.iter.next()? {
            Ok(frame) => Some(frame),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// One streaming characterization pass over a trace file: returns the
/// shader library (decoded from the trace prelude) and the `N × D`
/// feature matrix, holding only a window of frames in memory.
fn characterize_trace(
    path: &str,
    gpu: &GpuConfig,
    config: &MegsimConfig,
) -> Result<(ShaderTable, FeatureMatrix), String> {
    let mut frames = StreamedFrames::open(path)?;
    let shaders = frames.iter.shaders().clone();
    let matrix = characterize_sequence(&mut frames, &shaders, gpu, config);
    frames.finish(path)?;
    Ok((shaders, matrix))
}

/// Parses the streaming-clustering knobs shared by `select` and
/// `estimate` (`--reservoir`, `--stream-batch`).
fn stream_cluster_config(opts: &Options) -> Result<StreamClusterConfig, String> {
    let defaults = StreamClusterConfig::default();
    let capacity: usize = opts.flag("reservoir", defaults.reservoir_capacity)?;
    let batch: usize = opts.flag("stream-batch", defaults.batch_size)?;
    if batch == 0 {
        return Err("--stream-batch must be at least 1".into());
    }
    Ok(defaults
        .with_reservoir_capacity(capacity)
        .with_batch_size(batch))
}

/// One fused decode → characterize → cluster pass over a trace file
/// (`--stream-cluster`): frames flow through the online clusterer and
/// are dropped, so memory stays bounded by the reservoir instead of
/// growing with the trace. Returns the shader library and the
/// streaming selection.
fn select_stream(
    path: &str,
    gpu: &GpuConfig,
    config: &MegsimConfig,
    stream: &StreamClusterConfig,
) -> Result<(ShaderTable, StreamSelection), String> {
    let mut frames = StreamedFrames::open(path)?;
    let shaders = frames.iter.shaders().clone();
    let selection = megsim_core::characterize_stream(&mut frames, &shaders, gpu, config, stream);
    frames.finish(path)?;
    Ok((shaders, selection))
}

/// Second streaming pass of `estimate`: re-decodes the trace and keeps
/// only the frames whose indices were selected as representatives.
fn collect_frames_by_index(
    path: &str,
    wanted: &HashSet<usize>,
) -> Result<HashMap<usize, Frame>, String> {
    let mut out = HashMap::with_capacity(wanted.len());
    for (i, frame) in open_frames(path)?.enumerate() {
        if out.len() == wanted.len() {
            break;
        }
        let frame = frame.map_err(|e| format!("{path}: {e}"))?;
        if wanted.contains(&i) {
            out.insert(i, frame);
        }
    }
    Ok(out)
}

fn record(opts: &mut Options) -> Result<(), String> {
    let alias = opts.required_flag("benchmark")?.to_string();
    let scale: f64 = opts.flag("scale", 0.1)?;
    let seed: u64 = opts.flag("seed", 42)?;
    let out = opts.required_flag("out")?.to_string();
    let version: u16 = opts.flag("codec-version", FORMAT_VERSION)?;
    let workload = megsim_workloads::by_alias(&alias, scale, seed).ok_or_else(|| {
        format!("unknown benchmark '{alias}' (try asp, bbr1, bbr2, hcr, hwh, jjo, pvz, spd)")
    })?;
    let frames: Vec<Frame> = workload.generate_frames();
    let stream = record_sequence(workload.shaders(), &frames);
    let bytes = encode_with_version(&stream, version)
        .ok_or_else(|| format!("unsupported --codec-version {version} (supported: 1, 2)"))?;
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "recorded {} ({} frames, {} draws) -> {} ({} bytes, MGLT v{version})",
        workload.name,
        stream.frame_count(),
        stream.draw_count(),
        out,
        bytes.len()
    );
    Ok(())
}

fn info(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let file = File::open(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let size = file
        .metadata()
        .map_err(|e| format!("cannot stat {path}: {e}"))?
        .len();
    // One incremental decode pass: commands are counted as they stream
    // by, so memory stays O(1) in the trace length.
    let mut decoder =
        StreamDecoder::new(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let version = decoder.version();
    let (mut commands, mut frames, mut draws) = (0u64, 0u64, 0u64);
    let (mut vertex, mut fragment) = (0u64, 0u64);
    for cmd in &mut decoder {
        let cmd = cmd.map_err(|e| format!("{path}: {e}"))?;
        commands += 1;
        match cmd {
            Command::SwapBuffers => frames += 1,
            Command::Draw(_) => draws += 1,
            Command::ProgramData(p) => match p.kind {
                ShaderKind::Vertex => vertex += 1,
                ShaderKind::Fragment => fragment += 1,
            },
            _ => {}
        }
    }
    println!("trace:             {path}");
    println!("format:            MGLT v{version}");
    println!("size:              {size} bytes");
    println!("commands:          {commands}");
    println!("frames:            {frames}");
    println!("draw calls:        {draws}");
    println!("vertex shaders:    {vertex}");
    println!("fragment shaders:  {fragment}");
    let draws_per_frame = draws as f64 / frames.max(1) as f64;
    println!("draws per frame:   {draws_per_frame:.1}");
    Ok(())
}

fn characterize(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let gpu = GpuConfig::mali450_like();
    let (_, matrix) = characterize_trace(&path, &gpu, &MegsimConfig::default())?;
    let csv = report::feature_matrix_csv(&matrix);
    match opts.flags.get("out") {
        Some(out) => {
            std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "wrote {} x {} feature matrix to {out}",
                matrix.frames(),
                matrix.dim()
            );
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn select(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let seed: u64 = opts.flag("seed", 42)?;
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default().with_seed(seed);
    let selection = if opts.has("stream-cluster") {
        let stream = stream_cluster_config(opts)?;
        let (_, streamed) = select_stream(&path, &gpu, &config, &stream)?;
        eprintln!(
            "stream-cluster: retained {} of {} rows (peak {}), probe k {}",
            streamed.reservoir_len,
            streamed.selection.labels.len(),
            streamed.peak_rows_retained,
            streamed.live_k
        );
        streamed.selection
    } else {
        let (_, matrix) = characterize_trace(&path, &gpu, &config)?;
        select_representatives(&matrix, &config)
    };
    println!(
        "{} frames -> {} representatives ({:.1}x reduction)",
        selection.labels.len(),
        selection.k(),
        selection.reduction_factor()
    );
    let mut csv = String::from("cluster,frame,cluster_size\n");
    for (c, r) in selection.representatives.iter().enumerate() {
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{c},{},{}", r.frame_index, r.cluster_size);
        println!(
            "  cluster {c:>3}: frame {:>6} x {:>6}",
            r.frame_index, r.cluster_size
        );
    }
    if let Some(out) = opts.flags.get("out") {
        std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("plan written to {out}");
    }
    Ok(())
}

/// Parses the multi-GPU scenario flags (`--gpus`, `--dispatch`,
/// `--mem`). Returns `None` when none were given, keeping the default
/// `estimate` on the single-GPU path (and its frame cache).
fn multi_gpu_options(opts: &Options) -> Result<Option<MultiGpuConfig>, String> {
    let explicit = ["gpus", "dispatch", "mem"]
        .iter()
        .any(|f| opts.flags.contains_key(*f));
    let gpus: usize = opts.flag("gpus", 1)?;
    if gpus == 0 {
        return Err("--gpus must be at least 1".into());
    }
    let dispatch = match opts.flags.get("dispatch").map(String::as_str) {
        None | Some("afr") => DispatchMode::AlternateFrame,
        Some("sfr") => DispatchMode::SplitFrame,
        Some(other) => return Err(format!("invalid --dispatch: {other} (afr or sfr)")),
    };
    let topology = match opts.flags.get("mem").map(String::as_str) {
        None | Some("private") => Topology::Private,
        Some("shared") => Topology::Shared,
        Some(other) => return Err(format!("invalid --mem: {other} (shared or private)")),
    };
    Ok(explicit.then(|| MultiGpuConfig::new(gpus, dispatch, topology)))
}

fn dispatch_name(dispatch: DispatchMode) -> &'static str {
    match dispatch {
        DispatchMode::AlternateFrame => "afr",
        DispatchMode::SplitFrame => "sfr",
    }
}

fn topology_name(topology: Topology) -> &'static str {
    match topology {
        Topology::Shared => "shared",
        Topology::Private => "private",
    }
}

fn estimate(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let seed: u64 = opts.flag("seed", 42)?;
    let ground_truth = opts.has("ground-truth");
    let multi = multi_gpu_options(opts)?;
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default().with_seed(seed);
    // The fused single-pass path never materializes the feature
    // matrix, so `--ground-truth` errors are then computed from the
    // scaled representative totals instead of `evaluate_megsim`.
    let (shaders, matrix, selection) = if opts.has("stream-cluster") {
        let stream = stream_cluster_config(opts)?;
        let (shaders, streamed) = select_stream(&path, &gpu, &config, &stream)?;
        eprintln!(
            "stream-cluster: retained {} of {} rows (peak {}), probe k {}",
            streamed.reservoir_len,
            streamed.selection.labels.len(),
            streamed.peak_rows_retained,
            streamed.live_k
        );
        (shaders, None, streamed.selection)
    } else {
        let (shaders, matrix) = characterize_trace(&path, &gpu, &config)?;
        let selection = select_representatives(&matrix, &config);
        (shaders, Some(matrix), selection)
    };
    // A second streaming pass picks up just the representative frames;
    // the rest of the trace flows through without being retained.
    let wanted: HashSet<usize> = selection
        .representatives
        .iter()
        .map(|r| r.frame_index)
        .collect();
    let reps = collect_frames_by_index(&path, &wanted)?;
    // Simulate only the representatives, scale by cluster sizes. A
    // multi-GPU scenario dispatches each representative through a fresh
    // N-GPU rig instead of a fresh single GPU.
    let rep_stats = match multi {
        Some(m) => megsim_core::simulate_representatives_multi(
            |i| reps[&i].clone(),
            &selection,
            &shaders,
            &gpu,
            m,
        ),
        None => {
            megsim_core::simulate_representatives(|i| reps[&i].clone(), &selection, &shaders, &gpu)
        }
    };
    let mut estimated = megsim_timing::FrameStats::default();
    for (stats, rep) in rep_stats.iter().zip(&selection.representatives) {
        estimated.merge(&stats.scaled(rep.cluster_size as u64));
    }
    if let Some(m) = multi {
        println!(
            "multi-GPU rig: {} GPUs, {} dispatch, {} memory",
            m.gpus,
            dispatch_name(m.dispatch),
            topology_name(m.topology)
        );
    }
    println!(
        "simulated {} of {} frames ({:.1}x fewer)",
        selection.k(),
        selection.labels.len(),
        selection.reduction_factor()
    );
    println!("estimated totals:");
    println!("  cycles:              {}", estimated.cycles);
    println!("  DRAM accesses:       {}", estimated.dram_accesses());
    println!("  L2 accesses:         {}", estimated.l2_accesses());
    println!("  tile-cache accesses: {}", estimated.tile_cache_accesses());
    println!("  IPC:                 {:.2}", estimated.ipc());
    if ground_truth {
        eprintln!("running full ground-truth simulation...");
        // Third streaming pass: the full simulation also replays off
        // the file handle, overlapping decode with render and timing.
        let mut frames = StreamedFrames::open(&path)?;
        if let Some(m) = multi {
            // Multi-GPU ground truth: the warm N-GPU rig sequence.
            let (per_frame, report) =
                megsim_core::simulate_sequence_multi(&mut frames, &shaders, &gpu, m);
            frames.finish(&path)?;
            let actual = sequence_totals(&per_frame);
            let errors = metric_errors(&estimated, &actual);
            println!(
                "interconnect: {} line transfers, {} bytes, {} busy cycles",
                report.transfers(),
                report.bytes(),
                report.busy_cycles()
            );
            println!("relative errors vs full multi-GPU simulation:");
            println!("  N  dispatch  mem      cycles     DRAM       L2         tile");
            println!(
                "  {:<2} {:<9} {:<8} {:>8.3}% {:>8.3}% {:>8.3}% {:>8.3}%",
                m.gpus,
                dispatch_name(m.dispatch),
                topology_name(m.topology),
                errors.cycles * 100.0,
                errors.dram_accesses * 100.0,
                errors.l2_accesses * 100.0,
                errors.tile_cache_accesses * 100.0
            );
            return Ok(());
        }
        let per_frame = simulate_sequence(&mut frames, &shaders, &gpu);
        frames.finish(&path)?;
        let errors = match &matrix {
            Some(matrix) => {
                let run = evaluate_megsim(matrix, &per_frame, &config);
                println!("relative errors vs full simulation (estimates from full-run frames):");
                run.errors
            }
            None => {
                let actual = sequence_totals(&per_frame);
                println!(
                    "relative errors vs full simulation (estimates from representative runs):"
                );
                metric_errors(&estimated, &actual)
            }
        };
        println!("  cycles:              {:.3}%", errors.cycles * 100.0);
        println!(
            "  DRAM accesses:       {:.3}%",
            errors.dram_accesses * 100.0
        );
        println!("  L2 accesses:         {:.3}%", errors.l2_accesses * 100.0);
        println!(
            "  tile-cache accesses: {:.3}%",
            errors.tile_cache_accesses * 100.0
        );
    }
    Ok(())
}

/// Runs one batch campaign body. Returns the campaign's one-line
/// summary; all detail goes to `out=` files so concurrent campaigns
/// never interleave on stdout.
fn run_campaign(job: &megsim_core::BatchJob) -> Result<String, String> {
    use megsim_core::BatchOp;
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default().with_seed(job.seed);
    match job.op {
        BatchOp::Characterize => {
            let (_, matrix) = characterize_trace(&job.trace, &gpu, &config)?;
            let mut summary = format!("{} x {} features", matrix.frames(), matrix.dim());
            if let Some(out) = &job.out {
                let csv = report::feature_matrix_csv(&matrix);
                std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
                summary.push_str(&format!(" -> {out}"));
            }
            Ok(summary)
        }
        BatchOp::Estimate => {
            let (shaders, matrix) = characterize_trace(&job.trace, &gpu, &config)?;
            let selection = select_representatives(&matrix, &config);
            let wanted: HashSet<usize> = selection
                .representatives
                .iter()
                .map(|r| r.frame_index)
                .collect();
            let reps = collect_frames_by_index(&job.trace, &wanted)?;
            let rep_stats = megsim_core::simulate_representatives(
                |i| reps[&i].clone(),
                &selection,
                &shaders,
                &gpu,
            );
            let mut estimated = megsim_timing::FrameStats::default();
            for (stats, rep) in rep_stats.iter().zip(&selection.representatives) {
                estimated.merge(&stats.scaled(rep.cluster_size as u64));
            }
            let mut summary = format!(
                "{}/{} frames, {} cycles",
                selection.k(),
                matrix.frames(),
                estimated.cycles
            );
            if job.ground_truth {
                let mut frames = StreamedFrames::open(&job.trace)?;
                let per_frame = simulate_sequence(&mut frames, &shaders, &gpu);
                frames.finish(&job.trace)?;
                let run = evaluate_megsim(&matrix, &per_frame, &config);
                summary.push_str(&format!(", cycles err {:.3}%", run.errors.cycles * 100.0));
            }
            if let Some(out) = &job.out {
                let mut csv = String::from("metric,value\n");
                use std::fmt::Write as _;
                let _ = writeln!(csv, "frames,{}", matrix.frames());
                let _ = writeln!(csv, "representatives,{}", selection.k());
                let _ = writeln!(csv, "cycles,{}", estimated.cycles);
                let _ = writeln!(csv, "dram_accesses,{}", estimated.dram_accesses());
                let _ = writeln!(csv, "l2_accesses,{}", estimated.l2_accesses());
                let _ = writeln!(
                    csv,
                    "tile_cache_accesses,{}",
                    estimated.tile_cache_accesses()
                );
                std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
                summary.push_str(&format!(" -> {out}"));
            }
            Ok(summary)
        }
    }
}

fn batch(opts: &mut Options) -> Result<(), String> {
    let manifest_path = opts.trace_path()?;
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {manifest_path}: {e}"))?;
    let jobs = megsim_core::parse_manifest(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
    if jobs.is_empty() {
        return Err(format!("{manifest_path}: no campaigns in manifest"));
    }
    eprintln!(
        "batch: {} campaigns on {} worker threads",
        jobs.len(),
        megsim_exec::thread_count()
    );
    let report = megsim_core::run_batch(&jobs, run_campaign);
    print!("{}", report.table());
    if report.failures() > 0 {
        Err(format!(
            "{} of {} campaigns failed",
            report.failures(),
            report.campaigns.len()
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        std::iter::once("megsim")
            .chain(parts.iter().copied())
            .map(str::to_string)
            .collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("megsim_cli_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_str().expect("utf-8").to_string()
    }

    #[test]
    fn help_runs() {
        run(&argv(&["help"])).expect("help works");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn record_requires_benchmark() {
        assert!(run(&argv(&["record", "--out", "/tmp/x.mglt"])).is_err());
        assert!(run(&argv(&[
            "record",
            "--benchmark",
            "nope",
            "--out",
            "/tmp/x.mglt"
        ]))
        .is_err());
    }

    #[test]
    fn record_info_select_estimate_pipeline() {
        let trace = tmp("pipeline.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "hcr",
            "--scale",
            "0.01",
            "--seed",
            "5",
            "--out",
            &trace,
        ]))
        .expect("record");
        run(&argv(&["info", &trace])).expect("info");
        let features = tmp("features.csv");
        run(&argv(&["characterize", &trace, "--out", &features])).expect("characterize");
        let csv = std::fs::read_to_string(&features).expect("features written");
        assert!(csv.starts_with("frame,vscv_0"));
        let plan = tmp("plan.csv");
        run(&argv(&["select", &trace, "--out", &plan])).expect("select");
        let plan_csv = std::fs::read_to_string(&plan).expect("plan written");
        assert!(plan_csv.starts_with("cluster,frame,cluster_size"));
        assert!(plan_csv.lines().count() > 1);
    }

    #[test]
    fn stream_cluster_exact_mode_matches_the_two_pass_plan() {
        let trace = tmp("stream_exact.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "jjo",
            "--scale",
            "0.02",
            "--seed",
            "7",
            "--out",
            &trace,
        ]))
        .expect("record");
        let batch_plan = tmp("stream_exact_batch.csv");
        run(&argv(&["select", &trace, "--out", &batch_plan])).expect("two-pass select");
        let stream_plan = tmp("stream_exact_stream.csv");
        run(&argv(&[
            "select",
            &trace,
            "--stream-cluster",
            "--reservoir",
            "0",
            "--out",
            &stream_plan,
        ]))
        .expect("single-pass select");
        let batch_csv = std::fs::read_to_string(&batch_plan).expect("batch plan");
        let stream_csv = std::fs::read_to_string(&stream_plan).expect("stream plan");
        assert_eq!(
            batch_csv, stream_csv,
            "exact streaming mode must reproduce the two-pass plan"
        );
    }

    #[test]
    fn stream_cluster_bounded_estimate_runs_with_ground_truth() {
        let trace = tmp("stream_bounded.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "jjo",
            "--scale",
            "0.02",
            "--seed",
            "11",
            "--out",
            &trace,
        ]))
        .expect("record");
        run(&argv(&[
            "estimate",
            &trace,
            "--stream-cluster",
            "--reservoir",
            "24",
            "--stream-batch",
            "8",
            "--ground-truth",
        ]))
        .expect("bounded streaming estimate");
    }

    #[test]
    fn stream_cluster_rejects_a_zero_mini_batch() {
        let err = run(&argv(&[
            "select",
            "/nonexistent/x.mglt",
            "--stream-cluster",
            "--stream-batch",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("stream-batch"), "{err}");
    }

    #[test]
    fn estimate_runs_a_multi_gpu_scenario_end_to_end() {
        let trace = tmp("multi_gpu.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "jjo",
            "--scale",
            "0.01",
            "--seed",
            "6",
            "--out",
            &trace,
        ]))
        .expect("record");
        for (dispatch, mem) in [("afr", "shared"), ("sfr", "private")] {
            run(&argv(&[
                "estimate",
                &trace,
                "--gpus",
                "2",
                "--dispatch",
                dispatch,
                "--mem",
                mem,
                "--ground-truth",
            ]))
            .unwrap_or_else(|e| panic!("estimate --dispatch {dispatch} --mem {mem}: {e}"));
        }
    }

    #[test]
    fn estimate_rejects_bad_multi_gpu_flags() {
        let err = run(&argv(&["estimate", "/nonexistent/x.mglt", "--gpus", "0"])).unwrap_err();
        assert!(err.contains("gpus"), "{err}");
        let err = run(&argv(&[
            "estimate",
            "/nonexistent/x.mglt",
            "--dispatch",
            "checkerboard",
        ]))
        .unwrap_err();
        assert!(err.contains("dispatch"), "{err}");
        let err = run(&argv(&["estimate", "/nonexistent/x.mglt", "--mem", "numa"])).unwrap_err();
        assert!(err.contains("mem"), "{err}");
    }

    #[test]
    fn v2_traces_replay_identically_to_v1() {
        let v1 = tmp("codec_v1.mglt");
        let v2 = tmp("codec_v2.mglt");
        for (path, version) in [(&v1, "1"), (&v2, "2")] {
            run(&argv(&[
                "record",
                "--benchmark",
                "jjo",
                "--scale",
                "0.01",
                "--seed",
                "9",
                "--codec-version",
                version,
                "--out",
                path,
            ]))
            .expect("record");
        }
        let v1_size = std::fs::metadata(&v1).expect("v1 written").len();
        let v2_size = std::fs::metadata(&v2).expect("v2 written").len();
        assert!(v2_size < v1_size, "v2 ({v2_size}) not smaller ({v1_size})");
        run(&argv(&["info", &v2])).expect("info decodes v2");
        let f1 = tmp("codec_v1.csv");
        let f2 = tmp("codec_v2.csv");
        run(&argv(&["characterize", &v1, "--out", &f1])).expect("characterize v1");
        run(&argv(&["characterize", &v2, "--out", &f2])).expect("characterize v2");
        let csv1 = std::fs::read_to_string(&f1).expect("v1 features");
        let csv2 = std::fs::read_to_string(&f2).expect("v2 features");
        assert_eq!(csv1, csv2, "wire version changed replay semantics");
    }

    #[test]
    fn record_rejects_unknown_codec_version() {
        let out = tmp("codec_v3.mglt");
        let err = run(&argv(&[
            "record",
            "--benchmark",
            "jjo",
            "--scale",
            "0.01",
            "--codec-version",
            "3",
            "--out",
            &out,
        ]))
        .unwrap_err();
        assert!(err.contains("codec-version"), "{err}");
    }

    #[test]
    fn batch_runs_manifest_campaigns() {
        let trace = tmp("batch.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "jjo",
            "--scale",
            "0.01",
            "--seed",
            "3",
            "--out",
            &trace,
        ]))
        .expect("record");
        let feat = tmp("batch_features.csv");
        let est = tmp("batch_estimate.csv");
        let manifest = tmp("batch.manifest");
        std::fs::write(
            &manifest,
            format!(
                "# two campaigns over one trace\n\
                 feats characterize {trace} out={feat}\n\
                 totals estimate {trace} seed=5 out={est}\n"
            ),
        )
        .expect("write manifest");
        run(&argv(&["batch", &manifest])).expect("batch");
        let csv = std::fs::read_to_string(&feat).expect("features written");
        assert!(csv.starts_with("frame,vscv_0"));
        let csv = std::fs::read_to_string(&est).expect("estimate written");
        assert!(csv.starts_with("metric,value"));
        assert!(csv.contains("cycles,"));
    }

    #[test]
    fn batch_surfaces_campaign_failures() {
        let manifest = tmp("bad_batch.manifest");
        std::fs::write(&manifest, "ghost estimate /nonexistent/x.mglt\n").expect("write");
        let err = run(&argv(&["batch", &manifest])).unwrap_err();
        assert!(err.contains("1 of 1"), "{err}");
    }

    #[test]
    fn bad_cache_dir_warns_but_does_not_fail() {
        let trace = tmp("cachedir.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "jjo",
            "--scale",
            "0.01",
            "--seed",
            "8",
            "--out",
            &trace,
        ]))
        .expect("record");
        // A cache dir that cannot be created (parent is a file): the
        // run must degrade to cold, not fail.
        let blocker = tmp("not_a_dir");
        std::fs::write(&blocker, b"file").expect("write");
        let inside = format!("{blocker}/cache");
        run(&argv(&["characterize", &trace, "--cache-dir", &inside])).expect("runs cold");
    }

    #[test]
    fn info_rejects_garbage_files() {
        let bad = tmp("bad.mglt");
        std::fs::write(&bad, b"not a trace").expect("write");
        let err = run(&argv(&["info", &bad])).unwrap_err();
        assert!(err.contains("MGLT"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(run(&argv(&["info", "/nonexistent/x.mglt"])).is_err());
    }
}
