//! Lloyd's k-means with k-means++ or uniform random initialization,
//! accelerated by Hamerly-style distance bounds.
//!
//! This is the clustering engine of paper §III-E: it partitions the
//! per-frame vectors of characteristics into `k` clusters minimizing the
//! within-cluster sum of squares (WCSS, Eq. 4).
//!
//! ## The bound-pruning invariant
//!
//! The assignment step keeps, per point, an upper bound `u(i)` on the
//! distance to its assigned centroid and a lower bound `l(i)` on the
//! distance to every *other* centroid, maintained across iterations from
//! the per-centroid movements. When `u(i) + margin ≤ l(i)` the full
//! centroid scan provably returns the stored label, so it is skipped —
//! and whenever a distance *is* computed it uses the exact per-pair
//! [`squared_distance`] op sequence of the original implementation (the
//! vectorized scan and seeding kernels only run independent
//! accumulators side by side, never reordering any pair's sum), the
//! centroid update accumulates in fixed sequential point order, and the
//! `margin` (a 10⁻⁹-of-the-data-diameter safety band, orders of
//! magnitude above any rounding the bound maintenance can accumulate)
//! makes the prune test conservative under floating point. Labels,
//! centroids, WCSS and iteration counts are therefore bit-identical to
//! the retained seed implementation
//! ([`crate::kmeans_reference::ReferenceKMeans`]), which the proptest
//! oracles in that module enforce.
//!
//! Observations live in a contiguous [`PointMatrix`]; on large problems
//! the assignment step fans out in fixed-size chunks on the
//! `megsim-exec` pool (chunk boundaries never depend on the thread
//! count), so results are bit-identical at any thread count.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix::PointMatrix;

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors (paper §III-D).
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// D²-weighted seeding (Arthur & Vassilvitskii). Default; this is
    /// what a modern SimPoint-style toolchain uses.
    #[default]
    KMeansPlusPlus,
    /// Uniform random distinct points — the ablation baseline.
    Random,
}

/// Configuration of one k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on total centroid movement (squared).
    pub tolerance: f64,
    /// Initialization strategy.
    pub init: InitMethod,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iterations: 100,
            tolerance: 1e-9,
            init: InitMethod::KMeansPlusPlus,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization method (builder style).
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }
}

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Final centroids (`k` vectors of dimension `d`).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster label of each input point.
    pub labels: Vec<usize>,
    /// Within-cluster sum of squares (Eq. 4's objective).
    pub wcss: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Population of each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Index of the point closest to each centroid — the paper's cluster
    /// *representatives* (§III-E): "the selected frame for a cluster is
    /// the one with the lowest distance" to the centroid.
    pub fn representatives(&self, data: &PointMatrix) -> Vec<usize> {
        let mut best: Vec<(usize, f64)> = vec![(usize::MAX, f64::INFINITY); self.k()];
        for (i, point) in data.iter_rows().enumerate() {
            let c = self.labels[i];
            let d = squared_distance(point, &self.centroids[c]);
            if d < best[c].1 {
                best[c] = (i, d);
            }
        }
        best.into_iter().map(|(i, _)| i).collect()
    }
}

/// Derives the seed of restart `r` from a base configuration seed —
/// `seed ⊕ r · 0xD1B5_4A32_D192_ED03` (a pinned odd multiplier, so
/// every restart gets an independent stream and restart 0 reproduces
/// the base seed). [`kmeans_best_of`] and the §III-F search both go
/// through this function; a unit test pins its exact output so future
/// edits cannot silently change which restart wins.
#[inline]
pub fn restart_seed(seed: u64, restart: usize) -> u64 {
    seed ^ (restart as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Hard cap on memoized D²-seeding rows (each row is `n` f64s); beyond
/// it new rows are computed into a scratch buffer instead of cached.
const SEED_CACHE_MAX_ROWS: usize = 1024;

/// Work threshold (`n·k·d`) below which the chunked parallel assignment
/// costs more in fan-out than it saves.
const PAR_WORK: usize = 1 << 20;

/// Fixed chunk size of the parallel assignment step. Chunk boundaries
/// depend only on `n`, never on the thread count.
const ASSIGN_CHUNK: usize = 256;

/// Reusable buffers of the k-means engine: assignment labels, Hamerly
/// bounds, per-cluster accumulators and the memoized D²-seeding rows.
///
/// Sharing one scratch across runs over the *same* data (restarts, the
/// per-`k` loop of the §III-F search) keeps the hot path allocation-free
/// in steady state and lets k-means++ reuse point-to-point distance
/// rows across restarts. The seeding cache is only valid for one
/// dataset; [`KMeansScratch::reset_for_new_data`] must be called when
/// the data changes (the public entry points create a fresh scratch per
/// call, so only scratch-reusing callers need to care).
#[derive(Debug, Default)]
pub(crate) struct KMeansScratch {
    labels: Vec<usize>,
    upper: Vec<f64>,
    lower: Vec<f64>,
    sums: Vec<f64>,
    counts: Vec<usize>,
    moves: Vec<f64>,
    d2: Vec<f64>,
    seed_rows: HashMap<usize, Box<[f64]>>,
    row_scratch: Vec<f64>,
    /// Column-major (dim-major) copy of the dataset, built once per
    /// dataset for the vectorized D²-seeding rows.
    soa: Vec<f64>,
    /// Dim-major copy of the current centroids, rebuilt per assignment
    /// step for the vectorized full scan.
    ct: Vec<f64>,
}

impl KMeansScratch {
    /// Drops state that is only valid for one dataset (the D²-seeding
    /// distance cache and the column-major data copy). Buffer
    /// capacities are retained.
    pub(crate) fn reset_for_new_data(&mut self) {
        self.seed_rows.clear();
        self.soa.clear();
    }
}

/// Runs k-means on `data` (rows are observations).
///
/// # Panics
///
/// Panics if `data` is empty or `config.k` is zero or exceeds the
/// number of points.
pub fn kmeans(data: &PointMatrix, config: &KMeansConfig) -> KMeansResult {
    let mut scratch = KMeansScratch::default();
    kmeans_with_scratch(data, config, &mut scratch)
}

/// Scratch-reusing k-means (the engine behind [`kmeans`]). The scratch
/// must either be fresh or have last been used with the same `data`.
pub(crate) fn kmeans_with_scratch(
    data: &PointMatrix,
    config: &KMeansConfig,
    scratch: &mut KMeansScratch,
) -> KMeansResult {
    assert!(!data.is_empty(), "k-means requires at least one point");
    let n = data.len();
    let dim = data.dim();
    assert!(config.k >= 1 && config.k <= n, "k must be in [1, n]");
    let k = config.k;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    // Centroids as one flat k×dim buffer, matching the data layout.
    let mut centroids: Vec<f64> = match config.init {
        InitMethod::KMeansPlusPlus => init_plus_plus_cached(data, k, &mut rng, scratch),
        InitMethod::Random => init_random(data, k, &mut rng),
    };
    // Conservative pruning margin: 1e-9 of an upper bound on the data
    // diameter. Accumulated bound-maintenance rounding is ≤ ~1e-13 of
    // that diameter (≤ max_iterations few-ulp updates on O(diameter)
    // magnitudes), so any pair of distances the margin cannot separate
    // is re-computed exactly instead of pruned.
    let max_abs = data.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let margin = 2.0 * max_abs * (dim as f64).sqrt() * 1e-9 + f64::MIN_POSITIVE;

    scratch.labels.clear();
    scratch.labels.resize(n, 0);
    scratch.upper.clear();
    scratch.upper.resize(n, 0.0);
    scratch.lower.clear();
    scratch.lower.resize(n, 0.0);
    scratch.moves.clear();
    scratch.moves.resize(k, 0.0);

    let mut iterations = 0;
    let mut bounds_valid = false;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step — integer outputs only, safe to parallelize;
        // bounds prune the scan wherever the label provably cannot move.
        assign_pruned(
            data,
            &centroids,
            dim,
            k,
            margin,
            bounds_valid,
            &mut scratch.labels,
            &mut scratch.upper,
            &mut scratch.lower,
            &mut scratch.ct,
        );
        bounds_valid = true;
        // Update step: sequential so float accumulation order is fixed.
        let movement = update_centroids(
            data,
            &mut centroids,
            &scratch.labels,
            &mut scratch.sums,
            &mut scratch.counts,
            &mut scratch.moves,
            dim,
            k,
            n,
        );
        // Bound maintenance from the recorded centroid movements: the
        // assigned centroid moved by at most moves[label] (inflate the
        // upper bound), any other centroid by at most the largest — or,
        // for points assigned to the largest mover, the second-largest —
        // movement (deflate the lower bound).
        let (move1, mover1, move2) = top_two_moves(&scratch.moves);
        for i in 0..n {
            let label = scratch.labels[i];
            scratch.upper[i] += scratch.moves[label];
            scratch.lower[i] -= if label == mover1 { move2 } else { move1 };
        }
        if movement <= config.tolerance {
            break;
        }
    }
    // Final assignment with converged centroids.
    assign_pruned(
        data,
        &centroids,
        dim,
        k,
        margin,
        bounds_valid,
        &mut scratch.labels,
        &mut scratch.upper,
        &mut scratch.lower,
        &mut scratch.ct,
    );
    let mut wcss = 0.0;
    for (point, &label) in data.iter_rows().zip(&scratch.labels) {
        wcss += squared_distance(point, &centroids[label * dim..(label + 1) * dim]);
    }
    KMeansResult {
        centroids: centroids
            .chunks_exact(dim.max(1))
            .map(<[f64]>::to_vec)
            .collect(),
        labels: scratch.labels.clone(),
        wcss,
        iterations,
    }
}

/// Runs `restarts` independently seeded k-means and keeps the lowest
/// WCSS — the paper's multi-seeding robustness protocol. Restart `r`
/// uses [`restart_seed`]`(config.seed, r)`; ties keep the lowest
/// restart index, so the result is thread-count independent.
///
/// Restarts share one scratch (bounds, accumulators and the memoized
/// D²-seeding rows) and run in sequence; the parallelism moved *inside*
/// each run's assignment step, which fans out in deterministic
/// fixed-size chunks on the worker pool.
///
/// # Panics
///
/// Panics if `restarts` is zero or `data`/`config.k` are invalid.
pub fn kmeans_best_of(data: &PointMatrix, config: &KMeansConfig, restarts: usize) -> KMeansResult {
    let mut scratch = KMeansScratch::default();
    kmeans_best_of_with(data, config, restarts, &mut scratch)
}

/// Scratch-reusing variant of [`kmeans_best_of`] (the engine behind the
/// §III-F search). Same winner-selection rule; the scratch must be
/// fresh or last used with the same `data`.
pub(crate) fn kmeans_best_of_with(
    data: &PointMatrix,
    config: &KMeansConfig,
    restarts: usize,
    scratch: &mut KMeansScratch,
) -> KMeansResult {
    assert!(restarts >= 1, "need at least one restart");
    let mut best: Option<KMeansResult> = None;
    for r in 0..restarts {
        let seed = restart_seed(config.seed, r);
        let run = kmeans_with_scratch(data, &KMeansConfig { seed, ..*config }, scratch);
        #[allow(clippy::unnecessary_map_or)]
        let better = best.as_ref().map_or(true, |b| run.wcss < b.wcss);
        if better {
            best = Some(run);
        }
    }
    best.expect("restarts >= 1")
}

fn point_centroid_d2(
    data: &PointMatrix,
    i: usize,
    centroids: &[f64],
    label: usize,
    dim: usize,
) -> f64 {
    squared_distance(data.row(i), &centroids[label * dim..(label + 1) * dim])
}

/// Labels every point with its nearest centroid, maintaining the
/// Hamerly bounds. On large problems the point range splits into
/// [`ASSIGN_CHUNK`]-sized tasks that fan out on the pool; every task
/// owns disjoint slices of the label/bound buffers, so scheduling
/// cannot affect the result.
#[allow(clippy::too_many_arguments)]
fn assign_pruned(
    data: &PointMatrix,
    centroids: &[f64],
    dim: usize,
    k: usize,
    margin: f64,
    bounds_valid: bool,
    labels: &mut [usize],
    upper: &mut [f64],
    lower: &mut [f64],
    ct: &mut Vec<f64>,
) {
    // Dim-major centroid copy: the full scan accumulates one distance
    // per centroid simultaneously, reading the `k` coordinates of each
    // dimension as one contiguous row.
    ct.clear();
    ct.resize(k * dim, 0.0);
    for c in 0..k {
        for d in 0..dim {
            ct[d * k + c] = centroids[c * dim + d];
        }
    }
    // One assignment task: chunk start index plus that chunk's disjoint
    // label/upper/lower slices.
    type AssignTask<'a> = (usize, &'a mut [usize], &'a mut [f64], &'a mut [f64]);
    let n = labels.len();
    if n * k * dim.max(1) >= PAR_WORK && megsim_exec::thread_count() > 1 && !megsim_exec::in_pool()
    {
        let tasks: Vec<AssignTask> = labels
            .chunks_mut(ASSIGN_CHUNK)
            .zip(upper.chunks_mut(ASSIGN_CHUNK))
            .zip(lower.chunks_mut(ASSIGN_CHUNK))
            .enumerate()
            .map(|(c, ((lab, up), lo))| (c * ASSIGN_CHUNK, lab, up, lo))
            .collect();
        megsim_exec::par_for_each_task(tasks, |(start, lab, up, lo)| {
            assign_chunk(
                data,
                centroids,
                ct,
                dim,
                k,
                margin,
                bounds_valid,
                start,
                lab,
                up,
                lo,
            );
        });
    } else {
        assign_chunk(
            data,
            centroids,
            ct,
            dim,
            k,
            margin,
            bounds_valid,
            0,
            labels,
            upper,
            lower,
        );
    }
}

/// The per-chunk assignment kernel. `start` is the index of the first
/// point of this chunk in the full dataset; `ct` is the dim-major
/// centroid copy built by [`assign_pruned`].
#[allow(clippy::too_many_arguments)]
fn assign_chunk(
    data: &PointMatrix,
    centroids: &[f64],
    ct: &[f64],
    dim: usize,
    k: usize,
    margin: f64,
    bounds_valid: bool,
    start: usize,
    labels: &mut [usize],
    upper: &mut [f64],
    lower: &mut [f64],
) {
    debug_assert_eq!(k * dim, centroids.len());
    let mut dists = vec![0.0f64; k];
    for off in 0..labels.len() {
        let point = data.row(start + off);
        if bounds_valid {
            // Stale-bound prune: the label cannot have changed.
            if upper[off] + margin <= lower[off] {
                continue;
            }
            // Tighten the upper bound with one exact distance and retry.
            let label = labels[off];
            let tight = squared_distance(point, &centroids[label * dim..(label + 1) * dim]).sqrt();
            upper[off] = tight;
            if tight + margin <= lower[off] {
                continue;
            }
        }
        // Full scan: the distances to all k centroids accumulate
        // dimension by dimension with one independent accumulator per
        // centroid — per pair that is bitwise the `squared_distance`
        // fold, but the inner loop vectorizes across centroids instead
        // of serializing on one running sum.
        dists.fill(0.0);
        for (d, &x) in point.iter().enumerate() {
            let crow = &ct[d * k..(d + 1) * k];
            for (acc, &c) in dists.iter_mut().zip(crow) {
                let diff = x - c;
                *acc += diff * diff;
            }
        }
        // Then the exact compare sequence of the seed implementation
        // (strict `<`, first minimum wins) over the finished distances,
        // additionally tracking the runner-up to seed the lower bound.
        let mut best = (0usize, f64::INFINITY);
        let mut second = f64::INFINITY;
        for (c, &d) in dists.iter().enumerate() {
            if d < best.1 {
                second = best.1;
                best = (c, d);
            } else if d < second {
                second = d;
            }
        }
        labels[off] = best.0;
        upper[off] = best.1.sqrt();
        lower[off] = second.sqrt();
    }
}

/// The sequential centroid update of the seed implementation (fixed
/// accumulation order, the standard farthest-point repair for empty
/// clusters), additionally recording each centroid's Euclidean movement
/// for the bound maintenance. Returns the total squared movement.
#[allow(clippy::too_many_arguments)]
fn update_centroids(
    data: &PointMatrix,
    centroids: &mut [f64],
    labels: &[usize],
    sums: &mut Vec<f64>,
    counts: &mut Vec<usize>,
    moves: &mut [f64],
    dim: usize,
    k: usize,
    n: usize,
) -> f64 {
    sums.clear();
    sums.resize(k * dim, 0.0);
    counts.clear();
    counts.resize(k, 0);
    for (point, &label) in data.iter_rows().zip(labels) {
        counts[label] += 1;
        for (s, v) in sums[label * dim..(label + 1) * dim].iter_mut().zip(point) {
            *s += v;
        }
    }
    let mut movement = 0.0;
    for c in 0..k {
        let slot = c * dim..(c + 1) * dim;
        if counts[c] == 0 {
            // Empty cluster: reseed to the point farthest from its
            // centroid, the standard k-means repair.
            let far = (0..n)
                .max_by(|&i, &j| {
                    let di = point_centroid_d2(data, i, centroids, labels[i], dim);
                    let dj = point_centroid_d2(data, j, centroids, labels[j], dim);
                    di.partial_cmp(&dj).expect("NaN distance")
                })
                .expect("non-empty data");
            let moved2 = squared_distance(&centroids[slot.clone()], data.row(far));
            movement += moved2;
            moves[c] = moved2.sqrt();
            centroids[slot].copy_from_slice(data.row(far));
            continue;
        }
        let inv = 1.0 / counts[c] as f64;
        let mut delta = 0.0;
        for (s, cur) in sums[slot.clone()].iter().zip(&centroids[slot.clone()]) {
            let d = s * inv - cur;
            delta += d * d;
        }
        movement += delta;
        moves[c] = delta.sqrt();
        for (cur, s) in centroids[slot]
            .iter_mut()
            .zip(&sums[c * dim..(c + 1) * dim])
        {
            *cur = s * inv;
        }
    }
    movement
}

/// Largest and second-largest centroid movement, plus the index of the
/// largest mover (whose assigned points only need the second-largest
/// deflation on their lower bound).
fn top_two_moves(moves: &[f64]) -> (f64, usize, f64) {
    let mut move1 = 0.0f64;
    let mut mover1 = usize::MAX;
    let mut move2 = 0.0f64;
    for (c, &m) in moves.iter().enumerate() {
        if m > move1 {
            move2 = move1;
            move1 = m;
            mover1 = c;
        } else if m > move2 {
            move2 = m;
        }
    }
    (move1, mover1, move2)
}

fn init_random(data: &PointMatrix, k: usize, rng: &mut SmallRng) -> Vec<f64> {
    // Sample k distinct indices (Floyd's algorithm would be fancier; a
    // retry loop is fine at these sizes).
    let mut chosen = Vec::with_capacity(k * data.dim());
    let mut used = std::collections::HashSet::new();
    while used.len() < k {
        let i = rng.gen_range(0..data.len());
        if used.insert(i) {
            chosen.extend_from_slice(data.row(i));
        }
    }
    chosen
}

/// D²-weighted seeding with memoized distance rows: every chosen center
/// is a data point, so the row of squared distances from it to all
/// points is cached in the scratch and reused across restarts and
/// across the search's per-`k` loop. Cached rows are bitwise the values
/// the seed implementation computes inline, and the RNG consumption is
/// unchanged, so initialization is bit-identical.
fn init_plus_plus_cached(
    data: &PointMatrix,
    k: usize,
    rng: &mut SmallRng,
    scratch: &mut KMeansScratch,
) -> Vec<f64> {
    let KMeansScratch {
        d2,
        seed_rows,
        row_scratch,
        soa,
        ..
    } = scratch;
    ensure_soa(data, soa);
    let first = rng.gen_range(0..data.len());
    let mut centroids = Vec::with_capacity(k * data.dim());
    centroids.extend_from_slice(data.row(first));
    let row = seed_row(data, soa, first, seed_rows, row_scratch);
    d2.clear();
    d2.extend_from_slice(row);
    let mut count = 1;
    while count < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; any point works.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
                idx = i;
            }
            idx
        };
        centroids.extend_from_slice(data.row(next));
        count += 1;
        let row = seed_row(data, soa, next, seed_rows, row_scratch);
        for (slot, &d) in d2.iter_mut().zip(row) {
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

/// Builds (or reuses) the column-major dataset copy the seeding rows
/// vectorize over. The scratch contract — fresh, or last used with the
/// same data — makes a length match sufficient.
fn ensure_soa(data: &PointMatrix, soa: &mut Vec<f64>) {
    let (n, dim) = (data.len(), data.dim());
    if soa.len() == n * dim && !soa.is_empty() {
        return;
    }
    soa.clear();
    soa.resize(n * dim, 0.0);
    for (i, row) in data.iter_rows().enumerate() {
        for (d, &v) in row.iter().enumerate() {
            soa[d * n + i] = v;
        }
    }
}

/// The squared distances from data point `idx` to every point, served
/// from the memoized cache when possible (bounded by
/// [`SEED_CACHE_MAX_ROWS`]; overflow rows go through `row_scratch`).
fn seed_row<'a>(
    data: &PointMatrix,
    soa: &[f64],
    idx: usize,
    seed_rows: &'a mut HashMap<usize, Box<[f64]>>,
    row_scratch: &'a mut Vec<f64>,
) -> &'a [f64] {
    if seed_rows.contains_key(&idx) {
        return &seed_rows[&idx];
    }
    let n = data.len();
    if seed_rows.len() < SEED_CACHE_MAX_ROWS {
        let mut row = vec![0.0f64; n];
        fill_d2_row(soa, n, data.dim(), idx, &mut row);
        return seed_rows.entry(idx).or_insert(row.into_boxed_slice());
    }
    row_scratch.clear();
    row_scratch.resize(n, 0.0);
    fill_d2_row(soa, n, data.dim(), idx, row_scratch);
    row_scratch
}

/// `row[i] = ‖x_i − x_idx‖²`, accumulated dimension by dimension — per
/// point bitwise the [`squared_distance`] fold, with the inner loop
/// streaming one contiguous column so it vectorizes across points.
fn fill_d2_row(soa: &[f64], n: usize, dim: usize, idx: usize, row: &mut [f64]) {
    debug_assert_eq!(row.len(), n);
    for d in 0..dim {
        let col = &soa[d * n..(d + 1) * n];
        let c = col[idx];
        for (acc, &x) in row.iter_mut().zip(col) {
            let diff = x - c;
            *acc += diff * diff;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> PointMatrix {
        // Two well-separated 2-D blobs of 5 points each.
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + 0.1 * i as f64, 0.0]);
            pts.push(vec![10.0 + 0.1 * i as f64, 10.0]);
        }
        PointMatrix::from_rows(pts)
    }

    #[test]
    fn distances_match_hand_computation() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn k1_centroid_is_global_mean() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![2.0], vec![4.0]]);
        let r = kmeans(&data, &KMeansConfig::new(1));
        assert!((r.centroids[0][0] - 2.0).abs() < 1e-12);
        assert_eq!(r.labels, vec![0, 0, 0]);
        assert!((r.wcss - 8.0).abs() < 1e-12);
    }

    #[test]
    fn separates_two_blobs() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(7));
        // Points alternate blob membership by construction.
        let l0 = r.labels[0];
        for (i, &l) in r.labels.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(l, l0);
            } else {
                assert_ne!(l, l0);
            }
        }
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let a = kmeans(&data, &KMeansConfig::new(3).with_seed(42));
        let b = kmeans(&data, &KMeansConfig::new(3).with_seed(42));
        assert_eq!(a, b);
    }

    #[test]
    fn random_init_also_converges() {
        let data = blobs();
        let r = kmeans(
            &data,
            &KMeansConfig::new(2)
                .with_seed(3)
                .with_init(InitMethod::Random),
        );
        assert!(r.wcss < 1.0);
    }

    #[test]
    fn k_equals_n_gives_zero_wcss() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![5.0], vec![9.0]]);
        let r = kmeans(&data, &KMeansConfig::new(3).with_seed(1));
        assert!(r.wcss < 1e-12);
        let mut sizes = r.cluster_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn representatives_are_closest_to_centroids() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(0));
        let reps = r.representatives(&data);
        assert_eq!(reps.len(), 2);
        for (c, &rep) in reps.iter().enumerate() {
            let d_rep = squared_distance(data.row(rep), &r.centroids[c]);
            for (i, p) in data.iter_rows().enumerate() {
                if r.labels[i] == c {
                    assert!(d_rep <= squared_distance(p, &r.centroids[c]) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn duplicate_points_do_not_panic() {
        let data = PointMatrix::from_rows(vec![vec![1.0, 1.0]; 6]);
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(9));
        assert_eq!(r.labels.len(), 6);
        assert!(r.wcss < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn rejects_k_larger_than_n() {
        let _ = kmeans(
            &PointMatrix::from_rows(vec![vec![1.0]]),
            &KMeansConfig::new(2),
        );
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(4).with_seed(5));
        assert_eq!(r.cluster_sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    fn best_of_never_beats_its_own_runs_and_is_deterministic() {
        let data = blobs();
        let config = KMeansConfig::new(3).with_seed(17);
        let best = kmeans_best_of(&data, &config, 8);
        let again = kmeans_best_of(&data, &config, 8);
        assert_eq!(best, again);
        // The selected run is at least as good as the single-seed run.
        let single = kmeans_best_of(&data, &config, 1);
        assert!(best.wcss <= single.wcss + 1e-12);
    }

    #[test]
    fn restart_seed_is_pinned() {
        // The exact derivation every restart-dependent result hangs off:
        // seed ⊕ r · 0xD1B5_4A32_D192_ED03. Changing it would change
        // which restart wins and therefore every downstream
        // representative — these literals must never drift.
        assert_eq!(restart_seed(0, 0), 0);
        assert_eq!(restart_seed(0, 1), 0xD1B5_4A32_D192_ED03);
        assert_eq!(restart_seed(0, 2), 0xA36A_9465_A325_DA06);
        assert_eq!(restart_seed(0, 3), 0x751F_DE98_74B8_C709);
        assert_eq!(restart_seed(7, 1), 0xD1B5_4A32_D192_ED04);
        assert_eq!(
            restart_seed(0xFFFF_FFFF_FFFF_FFFF, 1),
            !0xD1B5_4A32_D192_ED03u64
        );
    }

    #[test]
    fn shared_scratch_matches_fresh_scratch() {
        // Reusing one scratch across runs (the search's steady state)
        // must not change any result, including after the seeding cache
        // warmed up on earlier runs.
        let data = blobs();
        let mut scratch = KMeansScratch::default();
        for k in 1..=5 {
            for seed in [0u64, 9, 1234] {
                let config = KMeansConfig::new(k).with_seed(seed);
                let warm = kmeans_with_scratch(&data, &config, &mut scratch);
                let cold = kmeans(&data, &config);
                assert_eq!(warm, cold, "k = {k}, seed = {seed}");
            }
        }
    }

    #[test]
    fn pruned_assignment_engages_on_larger_inputs() {
        // A shape big enough that several Lloyd iterations run with
        // bounds active; cross-checked against a fresh run for
        // self-consistency and against hand-verified cluster structure.
        let data = PointMatrix::from_rows(
            (0..400)
                .map(|i| {
                    let c = (i % 4) as f64 * 50.0;
                    vec![
                        c + ((i * 13) % 17) as f64 * 0.1,
                        c - ((i * 7) % 11) as f64 * 0.1,
                    ]
                })
                .collect(),
        );
        let r = kmeans(&data, &KMeansConfig::new(4).with_seed(21));
        assert!(r.iterations >= 2);
        let sizes = r.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 400);
        // Each residue class i % 4 is one tight blob 50 apart.
        for c in 0..4 {
            let members: Vec<usize> = (0..400).filter(|&i| r.labels[i] == c).collect();
            assert!(members.iter().all(|m| m % 4 == members[0] % 4));
        }
    }
}
