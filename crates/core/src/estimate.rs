//! Statistic estimation and accuracy evaluation (paper §III-E, §V-B).
//!
//! MEGsim simulates only the representative frames and scales each one's
//! output statistics by its cluster population; accuracy is the relative
//! error against the full-sequence simulation, reported for the four
//! Fig. 7 metrics.

use serde::{Deserialize, Serialize};

use megsim_stats::relative_error;
use megsim_timing::FrameStats;

use crate::pipeline::Representative;

/// Relative errors of the four metrics the paper evaluates (fractions,
/// e.g. `0.0084` = 0.84 %).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricErrors {
    /// Total cycles.
    pub cycles: f64,
    /// Main-memory accesses.
    pub dram_accesses: f64,
    /// L2-cache accesses.
    pub l2_accesses: f64,
    /// Tile-cache accesses.
    pub tile_cache_accesses: f64,
}

impl MetricErrors {
    /// The worst of the four errors.
    pub fn max(&self) -> f64 {
        self.cycles
            .max(self.dram_accesses)
            .max(self.l2_accesses)
            .max(self.tile_cache_accesses)
    }

    /// Mean of the four errors.
    pub fn mean(&self) -> f64 {
        (self.cycles + self.dram_accesses + self.l2_accesses + self.tile_cache_accesses) / 4.0
    }
}

/// Scales each representative's statistics by its cluster size and sums
/// them — MEGsim's estimate of the full-sequence totals.
///
/// `stats_of` maps a frame index to that frame's simulated statistics
/// (either from the full run or from a representatives-only run).
///
/// # Panics
///
/// Panics if `representatives` is empty.
pub fn estimate_totals<'a>(
    representatives: &[Representative],
    mut stats_of: impl FnMut(usize) -> &'a FrameStats,
) -> FrameStats {
    assert!(
        !representatives.is_empty(),
        "no representatives to estimate from"
    );
    let mut total = FrameStats::default();
    for rep in representatives {
        total.merge(&stats_of(rep.frame_index).scaled(rep.cluster_size as u64));
    }
    total
}

/// Relative errors of an estimate against the ground truth.
pub fn metric_errors(estimated: &FrameStats, actual: &FrameStats) -> MetricErrors {
    MetricErrors {
        cycles: relative_error(estimated.cycles as f64, actual.cycles as f64),
        dram_accesses: relative_error(
            estimated.dram_accesses() as f64,
            actual.dram_accesses() as f64,
        ),
        l2_accesses: relative_error(estimated.l2_accesses() as f64, actual.l2_accesses() as f64),
        tile_cache_accesses: relative_error(
            estimated.tile_cache_accesses() as f64,
            actual.tile_cache_accesses() as f64,
        ),
    }
}

/// Sums a full sequence of per-frame statistics (the ground truth).
pub fn sequence_totals<'a>(per_frame: impl IntoIterator<Item = &'a FrameStats>) -> FrameStats {
    let mut total = FrameStats::default();
    for f in per_frame {
        total.merge(f);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64) -> FrameStats {
        let mut s = FrameStats {
            cycles,
            ..FrameStats::default()
        };
        s.memory.dram.reads = cycles / 10;
        s.memory.l2.reads = cycles / 5;
        s.tile_cache.reads = cycles / 2;
        s
    }

    #[test]
    fn perfect_clustering_gives_zero_error() {
        // Frames alternate between two exact behaviours.
        let frames: Vec<FrameStats> = (0..10)
            .map(|i| stats(if i % 2 == 0 { 100 } else { 300 }))
            .collect();
        let reps = vec![
            Representative {
                frame_index: 0,
                cluster_size: 5,
            },
            Representative {
                frame_index: 1,
                cluster_size: 5,
            },
        ];
        let est = estimate_totals(&reps, |i| &frames[i]);
        let actual = sequence_totals(&frames);
        let err = metric_errors(&est, &actual);
        assert_eq!(err.max(), 0.0);
        assert_eq!(est.cycles, 2000);
    }

    #[test]
    fn imperfect_representative_yields_proportional_error() {
        let frames = vec![stats(100), stats(110), stats(90)];
        let reps = vec![Representative {
            frame_index: 0,
            cluster_size: 3,
        }];
        let est = estimate_totals(&reps, |i| &frames[i]);
        let actual = sequence_totals(&frames);
        let err = metric_errors(&est, &actual);
        assert!((err.cycles - 0.0).abs() < 1e-9, "300 vs 300");
        assert_eq!(est.cycles, 300);
    }

    #[test]
    fn metric_errors_cover_all_four_metrics() {
        let est = stats(110);
        let act = stats(100);
        let err = metric_errors(&est, &act);
        assert!((err.cycles - 0.1).abs() < 1e-9);
        assert!(err.dram_accesses > 0.0);
        assert!(err.l2_accesses > 0.0);
        assert!(err.tile_cache_accesses > 0.0);
        assert!(err.max() >= err.mean());
    }

    #[test]
    #[should_panic(expected = "no representatives")]
    fn empty_representatives_panic() {
        let frames = [stats(1)];
        let _ = estimate_totals(&[], |i| &frames[i]);
    }
}
