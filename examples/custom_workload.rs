//! Building a custom workload from scratch and running it through the
//! whole stack — the extension path for users who want to study their
//! own applications instead of the bundled Table II suite.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The workload is a small tower-defense-like game with three scripted
//! phases (build, wave, boss); the example shows that MEGsim recovers
//! exactly that phase structure.

use megsim_core::evaluate::{characterize_sequence, evaluate_megsim, simulate_sequence};
use megsim_core::pipeline::MegsimConfig;
use megsim_gfx::draw::BlendMode;
use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::TextureDesc;
use megsim_mem::AddressSpace;
use megsim_timing::GpuConfig;
use megsim_workloads::{meshes, GameType, ObjectClass, SegmentTemplate, Workload, WorkloadSpec};

fn main() {
    // --- 1. Shader library -------------------------------------------
    let mut shaders = ShaderTable::new();
    shaders.add(ShaderProgram::vertex(0, "sprite_vs", 12));
    shaders.add(ShaderProgram::vertex(1, "tower_vs", 24));
    shaders.add(ShaderProgram::fragment(
        0,
        "sprite_fs",
        8,
        vec![TextureFilter::Bilinear],
    ));
    shaders.add(ShaderProgram::fragment(
        1,
        "lit_fs",
        18,
        vec![TextureFilter::Bilinear, TextureFilter::Trilinear],
    ));
    shaders.add(ShaderProgram::fragment(2, "particle_fs", 5, vec![]));

    // --- 2. Object classes per phase ---------------------------------
    let class = |mesh: usize, vs: u32, fs: u32, count: f64, size: f32| ObjectClass {
        mesh,
        vertex_shader: ShaderId(vs),
        fragment_shader: ShaderId(fs),
        texture: Some(0),
        blend: BlendMode::Opaque,
        depth_test: false,
        base_count: count,
        count_amplitude: 0.5,
        wobble_freq: 0.4,
        size,
        tilt: 0.0,
        distance: 8.0,
    };
    let templates = vec![
        SegmentTemplate {
            label: "build".into(),
            classes: vec![class(0, 0, 0, 6.0, 0.06), class(3, 0, 2, 2.0, 0.04)],
        },
        SegmentTemplate {
            label: "wave".into(),
            classes: vec![
                class(0, 0, 0, 6.0, 0.06),
                class(0, 1, 1, 14.0, 0.05),
                class(3, 0, 2, 6.0, 0.03),
            ],
        },
        SegmentTemplate {
            label: "boss".into(),
            classes: vec![
                class(0, 0, 0, 6.0, 0.06),
                class(4, 1, 1, 3.0, 0.12),
                class(3, 0, 2, 12.0, 0.03),
            ],
        },
    ];

    // --- 3. Timeline: build → wave → build → wave → boss, twice ------
    let mut timeline = Vec::new();
    for _ in 0..2 {
        timeline.extend([(0usize, 40usize), (1, 60), (0, 30), (1, 60), (2, 50)]);
    }

    let workload = Workload::new(WorkloadSpec {
        name: "My Tower Defense".into(),
        alias: "mtd".into(),
        game_type: GameType::TwoD,
        shaders,
        textures: vec![TextureDesc::new(0, 128, 128, 4, AddressSpace::TEXTURE_BASE)],
        meshes: vec![
            meshes::unit_quad(AddressSpace::VERTEX_BASE),
            meshes::unit_cube(AddressSpace::VERTEX_BASE + 0x10C0),
            meshes::grid(4, 4, AddressSpace::VERTEX_BASE + 0x2180),
            meshes::disc(8, AddressSpace::VERTEX_BASE + 0x3240),
            meshes::gem(6, AddressSpace::VERTEX_BASE + 0x4300),
        ],
        templates,
        timeline,
        seed: 2024,
        noise: 0.04,
        spike_probability: 0.01,
        transition_boost: 2.0,
    });

    // --- 4. Run the full MEGsim flow ----------------------------------
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();
    println!(
        "custom workload '{}': {} frames, 3 scripted phases",
        workload.name,
        workload.frames()
    );
    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
    let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);
    let run = evaluate_megsim(&matrix, &per_frame, &config);

    println!(
        "MEGsim found {} clusters (phases + intensity variants), {:.1}x reduction",
        run.frames_simulated(),
        run.reduction_factor()
    );
    println!(
        "cycles error {:.3}%, worst metric error {:.3}%",
        run.errors.cycles * 100.0,
        run.errors.max() * 100.0
    );

    // Show which scripted segment each representative fell into.
    println!("\nrepresentatives vs script:");
    for rep in &run.selection.representatives {
        let segment = workload.segment_at(rep.frame_index);
        println!(
            "  frame {:>4} ({}) represents {:>4} frames",
            rep.frame_index,
            workload.templates()[segment.template].label,
            rep.cluster_size
        );
    }
}
