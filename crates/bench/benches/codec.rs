//! Trace codec benchmark: the varint v2 wire format (PR 7) against the
//! frozen v1 bytes, and streamed replay (decode → render → timing
//! overlapped through the frame pipeline) against the materialized
//! decode-everything-first path.
//!
//! Three readings merge into `BENCH_7.json` at the repo root:
//!
//! * encoded size of the 8-alias golden-corpus workloads under each
//!   wire version (the acceptance bar is v2 ≥ 25% smaller),
//! * decode throughput in MB/s for each version,
//! * warm-replay frames/s streamed vs. materialized at 1/2/max worker
//!   threads, recorded next to `codec_available_parallelism` — on a
//!   1-core runner decode/render/timing overlap is impossible and
//!   ~1.0× is the expected reading.

use std::io::Cursor;
use std::time::Instant;

use megsim_bench::report::{available_cores, core_note, merge_bench_json};
use megsim_gl::{decode, encode, encode_v2, play, record_sequence, FrameIter};
use megsim_timing::GpuConfig;
use megsim_workloads::{build, by_alias, BENCHMARKS};

/// Best-of-three wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The 1/2/max thread sweep (clamped to 2 points minimum so a 1-core
/// box still records an oversubscribed reading).
fn sweep_points(cores: usize) -> Vec<usize> {
    let mut points = vec![1, 2, cores.max(2)];
    points.dedup();
    points
}

fn main() {
    let cores = available_cores();
    let mut entries: Vec<(String, f64)> =
        vec![("codec_available_parallelism".to_string(), cores as f64)];

    // Wire-format size: the golden-corpus workloads (same scale/seed/
    // frame-count as crates/gl/tests/data) encoded under each version.
    let mut v1_total = 0usize;
    let mut v2_total = 0usize;
    for b in BENCHMARKS {
        let w = build(&b, 0.002, 42);
        let frames: Vec<_> = w.iter_frames().take(4).collect();
        let stream = record_sequence(w.shaders(), &frames);
        v1_total += encode(&stream).len();
        v2_total += encode_v2(&stream).len();
    }
    let shrink = 100.0 * (1.0 - v2_total as f64 / v1_total as f64);
    entries.push(("codec_v1_corpus_bytes".to_string(), v1_total as f64));
    entries.push(("codec_v2_corpus_bytes".to_string(), v2_total as f64));
    entries.push(("codec_v2_shrink_pct".to_string(), shrink));
    println!("codec size: v1 {v1_total} B, v2 {v2_total} B ({shrink:.1}% smaller)");

    // Decode throughput on a longer single-workload trace.
    let workload = by_alias("pvz", 0.02, 42).expect("known alias");
    let frames: Vec<_> = workload.iter_frames().collect();
    let stream = record_sequence(workload.shaders(), &frames);
    for (name, bytes) in [("v1", encode(&stream)), ("v2", encode_v2(&stream))] {
        let t = secs(|| {
            std::hint::black_box(decode(&bytes).expect("valid trace"));
        });
        let mb_per_sec = bytes.len() as f64 / t / 1e6;
        entries.push((format!("codec_{name}_decode_mb_per_sec"), mb_per_sec));
        println!(
            "codec decode {name}: {mb_per_sec:.1} MB/s over {} B",
            bytes.len()
        );
    }

    // Streamed vs. materialized warm replay. Materialized decodes and
    // plays the whole trace, then simulates; streamed pulls frames off
    // the byte stream through the decode/render/timing pipeline.
    let bytes = encode_v2(&stream);
    let n = frames.len() as f64;
    let cfg = GpuConfig::mali450_like();
    for &threads in &sweep_points(cores) {
        megsim_exec::set_threads(threads);
        let materialized = secs(|| {
            let replay = play(&decode(&bytes).expect("valid trace")).expect("valid stream");
            std::hint::black_box(megsim_core::simulate_sequence_warm(
                replay.frames.iter().cloned(),
                &replay.shaders,
                &cfg,
            ));
        });
        let streamed = secs(|| {
            let iter = FrameIter::new(Cursor::new(&bytes[..])).expect("valid header");
            let shaders = iter.shaders().clone();
            std::hint::black_box(megsim_core::simulate_sequence_warm(
                iter.map(|f| f.expect("valid frame")),
                &shaders,
                &cfg,
            ));
        });
        entries.push((
            format!("codec_replay_materialized_t{threads}_frames_per_sec"),
            n / materialized,
        ));
        entries.push((
            format!("codec_replay_streamed_t{threads}_frames_per_sec"),
            n / streamed,
        ));
        entries.push((
            format!("codec_streamed_speedup_t{threads}"),
            materialized / streamed,
        ));
        println!(
            "codec replay: streamed t{threads} {:.1} frames/s vs materialized {:.1} ({:.2}x on {cores} core(s)){}",
            n / streamed,
            n / materialized,
            materialized / streamed,
            if threads > 1 { core_note(cores) } else { "" }
        );
    }
    megsim_exec::set_threads(0);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_7.json");
    if let Err(e) = merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
