//! Minimal argument parsing shared by the experiment binaries.
//!
//! Supported flags: `--scale <f64>` (workload frame-count multiplier,
//! default 0.25), `--seed <u64>`, `--benchmarks a,b,c` (alias filter),
//! `--seeds <usize>` (MEGsim seeds for Table IV), `--trials <usize>`
//! (random sub-sampling trials), `--out <dir>` (artifact directory),
//! `--threads <usize>` (worker threads; 0 = `MEGSIM_THREADS` env or
//! all cores — results are identical at any thread count).

/// Parsed experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentArgs {
    /// Frame-count multiplier vs the paper's Table II (1.0 = full).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Benchmark alias filter (empty = all eight).
    pub benchmarks: Vec<String>,
    /// Number of k-means seedings for the Table IV confidence study
    /// (the paper uses 100).
    pub seeds: usize,
    /// Random sub-sampling trials per `k` (the paper uses 1000).
    pub trials: usize,
    /// Output directory for artifacts (PGM images, CSV dumps).
    pub out_dir: String,
    /// Worker threads for the parallel stages (0 = `MEGSIM_THREADS`
    /// env or available parallelism). Purely a wall-clock knob: every
    /// result is bit-identical at any thread count.
    pub threads: usize,
}

impl Default for ExperimentArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            seed: 42,
            benchmarks: Vec::new(),
            seeds: 12,
            trials: 1000,
            out_dir: "target/experiments".to_string(),
            threads: 0,
        }
    }
}

impl ExperimentArgs {
    /// Parses `std::env::args`-style strings (the first element is the
    /// program name and is skipped).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown flags or malformed
    /// values.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.into_iter().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--scale" => {
                    out.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                    if out.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--benchmarks" => {
                    out.benchmarks = value("--benchmarks")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "--seeds" => {
                    out.seeds = value("--seeds")?
                        .parse()
                        .map_err(|e| format!("bad --seeds: {e}"))?;
                }
                "--trials" => {
                    out.trials = value("--trials")?
                        .parse()
                        .map_err(|e| format!("bad --trials: {e}"))?;
                }
                "--out" => out.out_dir = value("--out")?,
                "--threads" => {
                    out.threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err(concat!(
                        "usage: <bin> [--scale F] [--seed N] [--benchmarks a,b]",
                        " [--seeds N] [--trials N] [--out DIR] [--threads N]"
                    )
                    .into())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments, exiting with a message on
    /// error (binary entry-point convenience).
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// True when `alias` passes the benchmark filter.
    pub fn selects(&self, alias: &str) -> bool {
        self.benchmarks.is_empty() || self.benchmarks.iter().any(|b| b == alias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<ExperimentArgs, String> {
        ExperimentArgs::parse(
            std::iter::once("bin".to_string()).chain(s.iter().map(|s| s.to_string())),
        )
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, ExperimentArgs::default());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--benchmarks",
            "asp,jjo",
            "--seeds",
            "3",
            "--trials",
            "50",
            "--out",
            "/tmp/x",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        assert_eq!(a.benchmarks, vec!["asp", "jjo"]);
        assert_eq!(a.seeds, 3);
        assert_eq!(a.trials, 50);
        assert_eq!(a.out_dir, "/tmp/x");
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn filter_logic() {
        let a = parse(&["--benchmarks", "asp"]).unwrap();
        assert!(a.selects("asp"));
        assert!(!a.selects("jjo"));
        assert!(parse(&[]).unwrap().selects("anything"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "zero"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
    }
}
