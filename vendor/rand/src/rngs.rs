//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The 64-bit `SmallRng` of rand 0.8: Xoshiro256++.
///
/// Fast, small-state, non-cryptographic; exactly the generator the
/// upstream crate selects on 64-bit platforms, so seeded behaviour is
/// portable across this vendored copy and the real crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // Upstream derives 32-bit output from the high half of the
        // 64-bit word.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state would be a fixed point; upstream avoids it
        // the same way SplitMix64 seeding does (never produces zeros),
        // but guard against a pathological from_seed call.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        SmallRng { s }
    }
}
