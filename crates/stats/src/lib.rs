//! # megsim-stats
//!
//! Statistics substrate of the MEGsim reproduction: descriptive
//! statistics, Pearson correlation, the coefficient of multiple
//! correlation (paper Eq. 1–3, used by the Fig. 3 input-parameter
//! study) and the small dense-matrix algebra it needs.
//!
//! ```
//! use megsim_stats::{pearson, multiple_correlation};
//!
//! let prim = vec![10.0, 20.0, 30.0, 40.0];
//! let cycles = vec![105.0, 198.0, 310.0, 395.0];
//! assert!(pearson(&prim, &cycles) > 0.99);
//! assert!(multiple_correlation(&[prim], &cycles) > 0.99);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod correlation;
pub mod descriptive;
pub mod matrix;
pub mod rank;

pub use correlation::{multiple_correlation, pearson};
pub use descriptive::{
    covariance, mean, median, quantile, relative_error, sample_variance, std_dev, variance,
};
pub use matrix::{Matrix, MatrixError};
pub use rank::{ranks, spearman};
