//! "Shape" tests: scaled-down versions of the paper's headline claims.
//! Absolute numbers differ from the paper (our substrate is a synthetic
//! simulator, not TEAPOT + commercial games), but the qualitative
//! results must hold even at reduced frame counts.

use megsim_bench::experiments::{correlation_row, power_study, run_all_megsim};
use megsim_bench::{compute_suite, Context, ExperimentArgs};
use megsim_core::random_sampling;
use megsim_workloads::GameType;

fn context(scale: f64, aliases: &str) -> Context {
    Context::new(ExperimentArgs {
        scale,
        seed: 42,
        benchmarks: aliases.split(',').map(str::to_string).collect(),
        ..ExperimentArgs::default()
    })
}

#[test]
fn megsim_reduces_frames_by_an_order_of_magnitude_with_small_error() {
    // Fig. 7 / Table III shape on three benchmarks at 1/10 scale.
    let ctx = context(0.1, "hcr,jjo,bbr1");
    let data = compute_suite(&ctx);
    let runs = run_all_megsim(&data, &ctx.megsim);
    for (d, r) in data.iter().zip(&runs) {
        assert!(
            r.reduction_factor() > 3.0,
            "{}: reduction {:.1}",
            d.info.alias,
            r.reduction_factor()
        );
        // Thresholds are looser than the full-scale run's ~2 % averages:
        // at 1/10 scale the segment-transition spikes are a larger
        // fraction of each cluster and estimation noise grows.
        assert!(
            r.errors.cycles < 0.07,
            "{}: cycles error {:.4}",
            d.info.alias,
            r.errors.cycles
        );
        assert!(
            r.errors.max() < 0.12,
            "{}: worst error {:.4}",
            d.info.alias,
            r.errors.max()
        );
    }
}

#[test]
fn shader_counts_correlate_strongly_with_cycles() {
    // Fig. 3 shape: shader-count vectors are highly predictive of the
    // total cycles; PRIM correlates but less.
    let ctx = context(0.05, "bbr1,pvz");
    let data = compute_suite(&ctx);
    for d in &data {
        let r = correlation_row(d);
        assert!(
            r.shaders > 0.8,
            "{}: shaders R = {:.3}",
            d.info.alias,
            r.shaders
        );
        assert!(r.fscv > 0.7, "{}: FSCV R = {:.3}", d.info.alias, r.fscv);
        // The paper finds PRIM's correlation "more limited"; require it
        // to be meaningful for geometry-heavy 3-D games only.
        if d.info.game_type == GameType::ThreeD {
            assert!(r.prim > 0.1, "{}: PRIM rho = {:.3}", d.info.alias, r.prim);
        }
        assert!((0.0..=1.0).contains(&r.prim));
    }
}

#[test]
fn raster_phase_dominates_power() {
    // Fig. 4 shape: Raster >> Tiling, Geometry smallest or comparable.
    let ctx = context(0.03, "asp,jjo,hwh");
    let data = compute_suite(&ctx);
    let (breakdowns, weights) = power_study(&data);
    for (d, b) in data.iter().zip(&breakdowns) {
        let f = b.fractions();
        assert!(
            f.raster > 0.5,
            "{}: raster fraction {:.3}",
            d.info.alias,
            f.raster
        );
    }
    assert!(weights.raster > weights.geometry);
    assert!(weights.raster > weights.tiling);
    assert!((weights.geometry + weights.raster + weights.tiling - 1.0).abs() < 1e-9);
}

#[test]
fn three_d_games_cost_more_cycles_per_frame_than_two_d() {
    let ctx = context(0.02, "asp,bbr1,hcr,jjo");
    let data = compute_suite(&ctx);
    let mean_cycles = |ty: GameType| {
        let sel: Vec<f64> = data
            .iter()
            .filter(|d| d.info.game_type == ty)
            .map(|d| d.totals.cycles as f64 / d.workload.frames() as f64)
            .collect();
        sel.iter().sum::<f64>() / sel.len() as f64
    };
    assert!(mean_cycles(GameType::ThreeD) > 2.0 * mean_cycles(GameType::TwoD));
}

#[test]
fn random_subsampling_needs_more_frames_than_megsim() {
    // Table IV shape on one benchmark: to reach MEGsim's accuracy the
    // random baseline needs more frames.
    let ctx = context(0.1, "pvz");
    let data = compute_suite(&ctx);
    let run = &run_all_megsim(&data, &ctx.megsim)[0];
    let cycles = data[0].cycles_series();
    let target = run.errors.cycles.max(1e-4);
    let random_frames = random_sampling::frames_needed_for_target(&cycles, target, 300, 0.95, 7);
    assert!(
        random_frames > run.frames_simulated(),
        "random {} vs megsim {}",
        random_frames,
        run.frames_simulated()
    );
}
