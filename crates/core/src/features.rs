//! The vector of characteristics (paper §III-B, Fig. 2).
//!
//! Each frame is described by `[VSCV₁..p | FSCV₁..q | PRIM]`: per-shader
//! invocation counts weighted by the shader's instruction count (texture
//! instructions weighted by their filter's memory accesses), plus the
//! number of primitives reaching the Tiling Engine.

use serde::{Deserialize, Serialize};

use megsim_cluster::PointMatrix;
use megsim_funcsim::FrameActivity;
use megsim_gfx::shader::ShaderTable;

/// Options of the characterization step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Weight texture instructions by the memory accesses of their
    /// filter mode (paper §III-B: linear = 2, bilinear = 4,
    /// trilinear = 8). Disabled for the ablation study.
    pub weight_texture_filters: bool,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        Self {
            weight_texture_filters: true,
        }
    }
}

/// The `N × D` dataset of paper §III-B: one row per frame.
///
/// Rows are stored contiguously (row-major) in a [`PointMatrix`] so the
/// normalization and distance kernels downstream stream cache lines
/// instead of chasing one heap allocation per frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    /// Raw (un-normalized) rows, one per frame, in contiguous storage.
    pub rows: PointMatrix,
    /// Number of vertex-shader columns (`p` in Fig. 2).
    pub vscv_len: usize,
    /// Number of fragment-shader columns (`q` in Fig. 2).
    pub fscv_len: usize,
}

impl FeatureMatrix {
    /// Packs nested per-frame rows into a contiguous matrix.
    ///
    /// # Panics
    ///
    /// Panics if a row's length is not `vscv_len + fscv_len + 1`.
    pub fn from_rows(rows: Vec<Vec<f64>>, vscv_len: usize, fscv_len: usize) -> Self {
        let mut data = PointMatrix::with_capacity(rows.len(), vscv_len + fscv_len + 1);
        for row in &rows {
            data.push_row(row);
        }
        Self {
            rows: data,
            vscv_len,
            fscv_len,
        }
    }

    /// Number of frames `N`.
    pub fn frames(&self) -> usize {
        self.rows.len()
    }

    /// Vector dimensionality `D = p + q + 1`.
    pub fn dim(&self) -> usize {
        self.vscv_len + self.fscv_len + 1
    }

    /// The full row of a frame.
    pub fn row(&self, frame: usize) -> &[f64] {
        self.rows.row(frame)
    }

    /// The VSCV slice of a row.
    pub fn vscv(&self, frame: usize) -> &[f64] {
        &self.rows.row(frame)[..self.vscv_len]
    }

    /// The FSCV slice of a row.
    pub fn fscv(&self, frame: usize) -> &[f64] {
        &self.rows.row(frame)[self.vscv_len..self.vscv_len + self.fscv_len]
    }

    /// The PRIM element of a row.
    pub fn prim(&self, frame: usize) -> f64 {
        self.rows.row(frame)[self.vscv_len + self.fscv_len]
    }

    /// Column `c` as a vector (used by the Fig. 3 correlation study).
    pub fn column(&self, c: usize) -> Vec<f64> {
        self.rows.iter_rows().map(|r| r[c]).collect()
    }
}

/// Builds one frame's vector of characteristics from its functional
/// activity.
///
/// # Panics
///
/// Panics if the activity's shader-count vectors disagree with the
/// shader table.
pub fn characterize_frame(
    activity: &FrameActivity,
    shaders: &ShaderTable,
    config: &CharacterizationConfig,
) -> Vec<f64> {
    let mut row = Vec::with_capacity(shaders.vertex_count() + shaders.fragment_count() + 1);
    characterize_frame_into(activity, shaders, config, &mut row);
    row
}

/// Buffer-reusing variant of [`characterize_frame`]: clears `row` and
/// fills it with the frame's vector of characteristics. The streaming
/// pipeline characterizes unboundedly many frames through one buffer,
/// so its steady state allocates nothing per frame.
///
/// # Panics
///
/// Panics if the activity's shader-count vectors disagree with the
/// shader table.
pub fn characterize_frame_into(
    activity: &FrameActivity,
    shaders: &ShaderTable,
    config: &CharacterizationConfig,
    row: &mut Vec<f64>,
) {
    assert_eq!(
        activity.vertex_shader_invocations.len(),
        shaders.vertex_count(),
        "activity/shader-table mismatch (vertex)"
    );
    assert_eq!(
        activity.fragment_shader_invocations.len(),
        shaders.fragment_count(),
        "activity/shader-table mismatch (fragment)"
    );
    row.clear();
    for (shader, &count) in shaders
        .vertex_shaders()
        .zip(&activity.vertex_shader_invocations)
    {
        let weight = if config.weight_texture_filters {
            shader.weighted_instruction_count()
        } else {
            u64::from(shader.instruction_count())
        };
        row.push(count as f64 * weight as f64);
    }
    for (shader, &count) in shaders
        .fragment_shaders()
        .zip(&activity.fragment_shader_invocations)
    {
        let weight = if config.weight_texture_filters {
            shader.weighted_instruction_count()
        } else {
            u64::from(shader.instruction_count())
        };
        row.push(count as f64 * weight as f64);
    }
    row.push(activity.primitives_emitted as f64);
}

/// Builds the `N × D` feature matrix from a sequence of per-frame
/// activities.
pub fn feature_matrix<'a>(
    activities: impl IntoIterator<Item = &'a FrameActivity>,
    shaders: &ShaderTable,
    config: &CharacterizationConfig,
) -> FeatureMatrix {
    let rows = activities
        .into_iter()
        .map(|a| characterize_frame(a, shaders, config))
        .collect();
    FeatureMatrix::from_rows(rows, shaders.vertex_count(), shaders.fragment_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::shader::{ShaderProgram, TextureFilter};

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "v0", 10));
        t.add(ShaderProgram::vertex(1, "v1", 20));
        t.add(ShaderProgram::fragment(
            0,
            "f0",
            5,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn activity() -> FrameActivity {
        let mut a = FrameActivity::new(2, 1);
        a.vertex_shader_invocations = vec![3, 1];
        a.fragment_shader_invocations = vec![100];
        a.primitives_emitted = 42;
        a
    }

    #[test]
    fn layout_matches_fig2() {
        let m = feature_matrix([&activity()], &shaders(), &Default::default());
        assert_eq!(m.frames(), 1);
        assert_eq!(m.dim(), 4);
        assert_eq!(m.vscv(0), &[30.0, 20.0]); // count × instructions
        assert_eq!(m.fscv(0), &[100.0 * 9.0]); // 5 ALU + bilinear(4)
        assert_eq!(m.prim(0), 42.0);
    }

    #[test]
    fn texture_weighting_can_be_disabled() {
        let cfg = CharacterizationConfig {
            weight_texture_filters: false,
        };
        let row = characterize_frame(&activity(), &shaders(), &cfg);
        assert_eq!(row[2], 100.0 * 6.0); // 5 ALU + 1 texture instruction
    }

    #[test]
    fn into_variant_reuses_the_buffer_and_matches() {
        let expected = characterize_frame(&activity(), &shaders(), &Default::default());
        let mut row = vec![99.0; 17]; // stale content must be cleared
        characterize_frame_into(&activity(), &shaders(), &Default::default(), &mut row);
        assert_eq!(row, expected);
        characterize_frame_into(&activity(), &shaders(), &Default::default(), &mut row);
        assert_eq!(row, expected);
    }

    #[test]
    fn column_extraction() {
        let m = feature_matrix([&activity(), &activity()], &shaders(), &Default::default());
        assert_eq!(m.column(3), vec![42.0, 42.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shader_table_mismatch_is_loud() {
        let a = FrameActivity::new(1, 1);
        let _ = characterize_frame(&a, &shaders(), &Default::default());
    }
}
