//! Golden cycle-count regression tests: exact cycles and memory
//! counters for a small fixed scene in all three rendering modes.
//!
//! The timing model is deterministic, so any change to these numbers
//! is a semantic change to the model — intentional changes must
//! re-pin the constants; accidental ones (e.g. a fast-path edit that
//! breaks run-coalescing bit-identity) fail here even if the
//! property-based oracle tests are not run.

use std::sync::Arc;

use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Mat4, Vec3};
use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::TextureDesc;
use megsim_timing::{FrameStats, Gpu, GpuConfig};

fn shaders() -> ShaderTable {
    let mut t = ShaderTable::new();
    t.add(ShaderProgram::vertex(0, "vs", 10));
    t.add(ShaderProgram::fragment(
        0,
        "fs_tex",
        7,
        vec![TextureFilter::Bilinear],
    ));
    t.add(ShaderProgram::fragment(1, "fs_flat", 3, vec![]));
    t
}

fn corner(x: f32, y: f32, u: f32, v: f32) -> Vertex {
    Vertex {
        uv: megsim_gfx::math::Vec2::new(u, v),
        ..Vertex::at(Vec3::new(x, y, 0.0))
    }
}

fn quad(scale: f32, base_address: u64) -> Arc<Mesh> {
    Arc::new(Mesh::new(
        vec![
            corner(-scale, -scale, 0.0, 0.0),
            corner(scale, -scale, 1.0, 0.0),
            corner(scale, scale, 1.0, 1.0),
            corner(-scale, scale, 0.0, 1.0),
        ],
        vec![0, 1, 2, 0, 2, 3],
        base_address,
    ))
}

/// Two frames: a textured quad under a smaller opaque overlay (the
/// overdraw exercises Early-Z and HSR — deferred shading culls the
/// occluded textured fragments) plus a translucent sprite, then the
/// same scene again so the second frame runs against warm caches.
fn scene() -> Vec<Frame> {
    let mut frame = Frame::new();
    frame.draws.push(DrawCall {
        mesh: quad(0.7, 0x4000),
        transform: Mat4::translation(Vec3::new(0.0, 0.0, 0.3)),
        vertex_shader: ShaderId(0),
        fragment_shader: ShaderId(0),
        texture: Some(TextureDesc::new(0, 64, 64, 4, 0x8000)),
        blend: BlendMode::Opaque,
        depth_test: true,
    });
    frame.draws.push(DrawCall {
        mesh: quad(0.35, 0x6000),
        transform: Mat4::translation(Vec3::new(0.1, -0.1, -0.2)),
        vertex_shader: ShaderId(0),
        fragment_shader: ShaderId(1),
        texture: None,
        blend: BlendMode::Opaque,
        depth_test: true,
    });
    frame.draws.push(DrawCall {
        mesh: quad(0.2, 0x7000),
        transform: Mat4::translation(Vec3::new(-0.4, 0.4, -0.4)),
        vertex_shader: ShaderId(0),
        fragment_shader: ShaderId(1),
        texture: None,
        blend: BlendMode::AlphaBlend,
        depth_test: false,
    });
    vec![frame.clone(), frame]
}

fn run(mode: RenderMode) -> Vec<FrameStats> {
    let mut cfg = GpuConfig::small(128, 128);
    cfg.render_mode = mode;
    let viewport = cfg.viewport;
    let renderer = Renderer::new(RenderConfig { viewport, mode });
    let shaders = shaders();
    let mut gpu = Gpu::new(cfg);
    scene()
        .iter()
        .map(|f| gpu.simulate_frame(&renderer.render_frame(f, &shaders), &shaders))
        .collect()
}

/// `(cycles, dram, l2, tile, vertex misses, texture accesses)` per frame.
fn fingerprint(stats: &[FrameStats]) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    stats
        .iter()
        .map(|s| {
            (
                s.cycles,
                s.dram_accesses(),
                s.l2_accesses(),
                s.tile_cache_accesses(),
                s.vertex_cache.misses,
                s.texture_cache.accesses(),
            )
        })
        .collect()
}

#[test]
fn golden_cycles_tbr() {
    assert_eq!(
        fingerprint(&run(RenderMode::TileBased)),
        vec![
            (22662, 812, 1783, 68, 6, 32400),
            (31061, 750, 1704, 68, 6, 32400),
        ],
        "pinned TBR counters changed"
    );
}

#[test]
fn golden_cycles_tbdr() {
    // HSR culls the textured fragments under the opaque overlay, so
    // TBDR samples fewer texels than TBR (24300 vs 32400).
    assert_eq!(
        fingerprint(&run(RenderMode::TileBasedDeferred)),
        vec![
            (20579, 756, 1427, 68, 6, 24300),
            (26366, 660, 1206, 68, 6, 24300),
        ],
        "pinned TBDR counters changed"
    );
}

#[test]
fn golden_cycles_imr() {
    // No tiling engine (tile-cache column is zero); color and depth
    // traffic go through memory instead, so DRAM and L2 counts are the
    // highest of the three modes.
    assert_eq!(
        fingerprint(&run(RenderMode::Immediate)),
        vec![
            (53352, 925, 6936, 0, 6, 32400),
            (62270, 904, 6873, 0, 6, 32400),
        ],
        "pinned IMR counters changed"
    );
}
