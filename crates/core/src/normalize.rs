//! Input-parameter normalization (paper §III-C).
//!
//! The three groups of the vector of characteristics represent different
//! amounts of pipeline activity, so they are weighted by the fraction of
//! power each pipeline phase dissipates (Fig. 4): Geometry 0.108 for the
//! VSCV group, Raster 0.745 for the FSCV group, Tiling 0.147 for PRIM.
//! "A per-column normalization is performed by adding all the values
//! within each group of characteristics which are then weighted
//! accordingly" — i.e. every group is rescaled so its total mass equals
//! its weight.

use serde::{Deserialize, Serialize};

use megsim_cluster::PointMatrix;

use crate::features::FeatureMatrix;

/// Per-phase weights of the three feature groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupWeights {
    /// Weight of the VSCV group (Geometry Pipeline power fraction).
    pub geometry: f64,
    /// Weight of the FSCV group (Raster Pipeline power fraction).
    pub raster: f64,
    /// Weight of the PRIM element (Tiling Engine power fraction).
    pub tiling: f64,
}

impl GroupWeights {
    /// The paper's power-derived weights (§III-C).
    pub const fn paper() -> Self {
        Self {
            geometry: 0.108,
            raster: 0.745,
            tiling: 0.147,
        }
    }

    /// Equal weights — ablation baseline.
    pub const fn uniform() -> Self {
        Self {
            geometry: 1.0 / 3.0,
            raster: 1.0 / 3.0,
            tiling: 1.0 / 3.0,
        }
    }

    /// Shader-count-only characterization (no Tiling information) —
    /// the strawman §III-B argues against.
    pub const fn shader_only() -> Self {
        Self {
            geometry: 0.127,
            raster: 0.873,
            tiling: 0.0,
        }
    }
}

impl Default for GroupWeights {
    fn default() -> Self {
        Self::paper()
    }
}

/// Normalizes a feature matrix into the weighted dataset that feeds the
/// clustering step: each group is rescaled so its total mass equals the
/// group weight.
///
/// Groups with zero mass (e.g. a frame range that never emits
/// primitives) contribute zero columns rather than NaNs.
pub fn normalize(matrix: &FeatureMatrix, weights: &GroupWeights) -> PointMatrix {
    let p = matrix.vscv_len;
    let q = matrix.fscv_len;
    let d = matrix.dim();
    // Group masses.
    let mut mass = [0.0f64; 3];
    for row in matrix.rows.iter_rows() {
        for (c, &v) in row.iter().enumerate() {
            let g = group_of(c, p, q);
            mass[g] += v;
        }
    }
    let scale = [
        if mass[0] > 0.0 {
            weights.geometry / mass[0]
        } else {
            0.0
        },
        if mass[1] > 0.0 {
            weights.raster / mass[1]
        } else {
            0.0
        },
        if mass[2] > 0.0 {
            weights.tiling / mass[2]
        } else {
            0.0
        },
    ];
    // One linear pass over the flat buffer; the column index cycles
    // modulo `d`.
    let flat: Vec<f64> = matrix
        .rows
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| v * scale[group_of(i % d, p, q)])
        .collect();
    PointMatrix::from_flat(flat, d)
}

#[inline]
fn group_of(column: usize, p: usize, q: usize) -> usize {
    if column < p {
        0
    } else if column < p + q {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix::from_rows(
            vec![
                vec![1.0, 3.0, 10.0, 30.0, 5.0],
                vec![2.0, 2.0, 20.0, 20.0, 15.0],
            ],
            2,
            2,
        )
    }

    #[test]
    fn group_masses_equal_weights_after_normalization() {
        let norm = normalize(&matrix(), &GroupWeights::paper());
        let vscv_mass: f64 = norm.iter_rows().map(|r| r[0] + r[1]).sum();
        let fscv_mass: f64 = norm.iter_rows().map(|r| r[2] + r[3]).sum();
        let prim_mass: f64 = norm.iter_rows().map(|r| r[4]).sum();
        assert!((vscv_mass - 0.108).abs() < 1e-12);
        assert!((fscv_mass - 0.745).abs() < 1e-12);
        assert!((prim_mass - 0.147).abs() < 1e-12);
    }

    #[test]
    fn relative_structure_within_group_is_preserved() {
        let norm = normalize(&matrix(), &GroupWeights::uniform());
        // Row 1's PRIM is 3× row 0's, before and after.
        assert!((norm.row(1)[4] / norm.row(0)[4] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_removes_a_group() {
        let norm = normalize(&matrix(), &GroupWeights::shader_only());
        assert_eq!(norm.row(0)[4], 0.0);
        assert_eq!(norm.row(1)[4], 0.0);
    }

    #[test]
    fn zero_mass_group_yields_zeros_not_nan() {
        let m = FeatureMatrix::from_rows(vec![vec![0.0, 0.0, 1.0], vec![0.0, 0.0, 2.0]], 1, 1);
        let norm = normalize(&m, &GroupWeights::paper());
        assert!(norm.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(norm.row(0)[0], 0.0);
    }

    #[test]
    fn paper_weights_sum_to_one() {
        let w = GroupWeights::paper();
        assert!((w.geometry + w.raster + w.tiling - 1.0).abs() < 1e-9);
    }
}
