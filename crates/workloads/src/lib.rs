//! # megsim-workloads
//!
//! Synthetic Android-game-like graphics workloads mirroring the paper's
//! Table II benchmark set (asp, bbr1, bbr2, hcr, hwh, jjo, pvz, spd).
//!
//! The paper evaluates on OpenGL traces captured from commercial
//! Android games; those traces are proprietary, so this crate
//! substitutes *scripted synthetic games*: deterministic frame
//! generators whose timelines alternate recurring segment templates
//! (menu, straight, turn, wave, boss, …) with per-frame noise and
//! spikes. What MEGsim consumes — per-frame shader invocation counts
//! and primitive counts with recurring phase structure — is preserved;
//! see DESIGN.md for the substitution argument.
//!
//! ```
//! use megsim_workloads::{by_alias, BENCHMARKS};
//!
//! let bbr = by_alias("bbr1", 0.01, 42).expect("known alias");
//! assert_eq!(bbr.shaders().vertex_count(), 73); // Table II
//! let frame = bbr.frame(0);
//! assert!(!frame.draws.is_empty());
//! assert_eq!(BENCHMARKS.len(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod game;
pub mod meshes;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
pub mod suite;

pub use game::{GameType, ObjectClass, Segment, SegmentTemplate, Workload, WorkloadSpec};
#[cfg(any(test, feature = "reference"))]
pub use reference::ReferenceWorkload;
pub use suite::{build, by_alias, suite, BenchmarkInfo, BENCHMARKS};
