//! The MEGsim selection pipeline: characteristic vectors → normalization
//! → k-means/BIC search → cluster representatives (paper §III).

use serde::{Deserialize, Serialize};

use megsim_cluster::{search_clusters, SearchConfig, StreamClusterer, StreamConfig};

use crate::features::{CharacterizationConfig, FeatureMatrix};
use crate::normalize::{normalize, GroupWeights, RunningGroupMass};

/// Full configuration of the MEGsim methodology.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MegsimConfig {
    /// Characterization options (§III-B).
    pub characterization: CharacterizationConfig,
    /// Group weights (§III-C).
    pub weights: GroupWeights,
    /// Cluster-search options (§III-E/F).
    pub search: SearchConfig,
}

impl MegsimConfig {
    /// The paper's exact configuration: T = 0.85 and the strict
    /// "stop at the first BIC decrease" rule of §III-F.
    pub fn paper() -> Self {
        let mut cfg = Self::default();
        cfg.search = cfg.search.with_patience(1);
        cfg
    }

    /// Sets the k-means/BIC seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.search.seed = seed;
        self
    }
}

/// One selected representative frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Representative {
    /// Frame index within the sequence.
    pub frame_index: usize,
    /// Number of frames in the representative's cluster — the scaling
    /// factor applied to its simulated statistics.
    pub cluster_size: usize,
}

/// Output of the selection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// One representative per cluster, in cluster order.
    pub representatives: Vec<Representative>,
    /// Cluster label of every frame.
    pub labels: Vec<usize>,
    /// BIC score of every evaluated `k` (diagnostics / Fig. 6 dumps).
    pub bic_scores: Vec<f64>,
}

impl Selection {
    /// Number of clusters (= frames MEGsim will simulate).
    pub fn k(&self) -> usize {
        self.representatives.len()
    }

    /// The paper's Table III "reduction factor": total frames divided by
    /// simulated frames.
    pub fn reduction_factor(&self) -> f64 {
        self.labels.len() as f64 / self.k() as f64
    }
}

/// Memory knobs of the streaming selection path (the §III-E/F search
/// itself comes from [`MegsimConfig::search`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamClusterConfig {
    /// Raw feature rows retained in the reservoir; `0` = unbounded
    /// (the exact mode, bitwise [`select_representatives`]).
    pub reservoir_capacity: usize,
    /// Rows per mini-batch micro-centroid update.
    pub batch_size: usize,
    /// Micro-centroids sketching evicted frames.
    pub micro_clusters: usize,
    /// Mini-batches between online BIC probes (`0` disables probing).
    pub probe_interval: usize,
}

impl Default for StreamClusterConfig {
    fn default() -> Self {
        let d = StreamConfig::default();
        Self {
            reservoir_capacity: d.reservoir_capacity,
            batch_size: d.batch_size,
            micro_clusters: d.micro_clusters,
            probe_interval: d.probe_interval,
        }
    }
}

impl StreamClusterConfig {
    /// The exact (unbounded-reservoir) mode — the bit-identity oracle.
    pub fn exact() -> Self {
        Self {
            reservoir_capacity: 0,
            ..Self::default()
        }
    }

    /// Sets the reservoir capacity (builder style; `0` = unbounded).
    pub fn with_reservoir_capacity(mut self, capacity: usize) -> Self {
        self.reservoir_capacity = capacity;
        self
    }

    /// Sets the mini-batch size (builder style).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch_size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// The cluster-crate configuration with the search options filled
    /// in from `search`.
    pub(crate) fn to_stream_config(self, search: &SearchConfig) -> StreamConfig {
        StreamConfig::default()
            .with_reservoir_capacity(self.reservoir_capacity)
            .with_batch_size(self.batch_size)
            .with_micro_clusters(self.micro_clusters)
            .with_probe_interval(self.probe_interval)
            .with_search(*search)
    }
}

/// Output of the streaming selection path: the batch-shaped
/// [`Selection`] plus streaming diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSelection {
    /// The selection, same shape as the batch path's.
    pub selection: Selection,
    /// Rows retained in the reservoir at finish time.
    pub reservoir_len: usize,
    /// High-water mark of raw feature rows retained at any instant —
    /// the bounded-memory fence (reservoir + one mini-batch window).
    pub peak_rows_retained: usize,
    /// The online probe's final candidate `k` (diagnostic).
    pub live_k: usize,
}

/// Streaming counterpart of [`select_representatives`]: one pass over
/// the rows, feeding the running §III-C group masses and the online
/// clusterer together, with peak memory bounded by the reservoir plus
/// one mini-batch (never the full matrix — this entry point takes one
/// only for API symmetry and the oracle tests; the truly single-pass
/// producer is `characterize_stream`).
///
/// With an unbounded reservoir the output selection is **bitwise**
/// [`select_representatives`]: the running masses reproduce the batch
/// normalization fold exactly, the reservoir holds every row in
/// arrival order, and the finishing pass is the same §III-F search.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn select_representatives_stream(
    matrix: &FeatureMatrix,
    config: &MegsimConfig,
    stream: &StreamClusterConfig,
) -> StreamSelection {
    assert!(matrix.frames() > 0, "cannot select from zero frames");
    let mut clusterer = StreamClusterer::new(matrix.dim(), stream.to_stream_config(&config.search));
    let mut mass = RunningGroupMass::new(matrix.vscv_len, matrix.fscv_len);
    let mut scales = Vec::new();
    for row in matrix.rows.iter_rows() {
        mass.add_row(row);
        mass.column_scales_into(&config.weights, &mut scales);
        clusterer.set_scales(&scales);
        clusterer.push(row);
    }
    finish_stream(clusterer)
}

/// Converts a finished [`StreamClusterer`] into a [`StreamSelection`].
pub(crate) fn finish_stream(clusterer: StreamClusterer) -> StreamSelection {
    let outcome = clusterer.finish();
    let representatives = outcome
        .representatives
        .into_iter()
        .map(|(frame_index, cluster_size)| Representative {
            frame_index,
            cluster_size,
        })
        .collect();
    StreamSelection {
        selection: Selection {
            representatives,
            labels: outcome.labels,
            bic_scores: outcome.bic_scores,
        },
        reservoir_len: outcome.reservoir_len,
        peak_rows_retained: outcome.peak_rows_retained,
        live_k: outcome.live_k,
    }
}

/// Runs normalization + clustering + representative selection on a raw
/// feature matrix.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn select_representatives(matrix: &FeatureMatrix, config: &MegsimConfig) -> Selection {
    assert!(matrix.frames() > 0, "cannot select from zero frames");
    let data = normalize(matrix, &config.weights);
    let found = search_clusters(&data, &config.search);
    let reps = found.clustering.representatives(&data);
    let sizes = found.clustering.cluster_sizes();
    let representatives = reps
        .into_iter()
        .zip(sizes)
        .map(|(frame_index, cluster_size)| Representative {
            frame_index,
            cluster_size,
        })
        .collect();
    Selection {
        representatives,
        labels: found.clustering.labels,
        bic_scores: found.bic_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-phase feature matrix: 30 "menu" frames and 30
    /// "gameplay" frames with very different shader activity.
    fn two_phase_matrix() -> FeatureMatrix {
        let mut rows = Vec::new();
        for i in 0..60 {
            let jitter = (i as f64 * 0.7).sin() * 5.0;
            if i % 2 == 0 {
                rows.push(vec![100.0 + jitter, 0.0, 500.0 + jitter, 0.0, 50.0]);
            } else {
                rows.push(vec![0.0, 900.0 + jitter, 0.0, 4000.0 + jitter, 300.0]);
            }
        }
        FeatureMatrix::from_rows(rows, 2, 2)
    }

    #[test]
    fn separates_the_two_phases() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        // T = 0.85 may refine each phase into sub-clusters, but no
        // cluster may mix the two phases (they are far apart).
        assert!(
            sel.k() >= 2 && sel.k() <= 8,
            "k = {} bic = {:?}",
            sel.k(),
            sel.bic_scores
        );
        assert_eq!(sel.labels.len(), 60);
        let sizes: Vec<usize> = sel.representatives.iter().map(|r| r.cluster_size).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        for c in 0..sel.k() {
            let members: Vec<usize> = (0..60).filter(|&i| sel.labels[i] == c).collect();
            assert!(
                members.iter().all(|m| m % 2 == members[0] % 2),
                "cluster {c} mixes phases: {members:?}"
            );
        }
    }

    #[test]
    fn representatives_belong_to_their_clusters() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        for (c, rep) in sel.representatives.iter().enumerate() {
            assert_eq!(sel.labels[rep.frame_index], c);
        }
    }

    #[test]
    fn reduction_factor_is_n_over_k() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        let expected = 60.0 / sel.k() as f64;
        assert!((sel.reduction_factor() - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = two_phase_matrix();
        let a = select_representatives(&m, &MegsimConfig::default().with_seed(5));
        let b = select_representatives(&m, &MegsimConfig::default().with_seed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn golden_selection_on_the_paper_shape_workload() {
        // Pins the exact (k, labels, representatives) the §III-F search
        // chooses on the synthetic two-phase workload under the paper's
        // configuration. The clustering fast path guarantees bit-
        // identity with the seed implementation, so these values may
        // only change when the methodology itself (seeding, stop rule,
        // threshold) deliberately changes — never from an optimization.
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::paper().with_seed(42));
        assert_eq!(sel.k(), 7);
        let expected_period = [5, 2, 4, 2, 5, 6, 0, 1, 0, 3, 4, 2, 4, 3, 0, 1, 0, 6];
        let expected_labels: Vec<usize> = (0..60).map(|i| expected_period[i % 18]).collect();
        assert_eq!(sel.labels, expected_labels);
        let reps: Vec<(usize, usize)> = sel
            .representatives
            .iter()
            .map(|r| (r.frame_index, r.cluster_size))
            .collect();
        assert_eq!(
            reps,
            vec![
                (8, 12),
                (51, 6),
                (39, 11),
                (45, 6),
                (12, 10),
                (54, 8),
                (59, 7)
            ]
        );
        assert_eq!(sel.bic_scores.len(), 22);
        let selected = sel.bic_scores[sel.k() - 1];
        assert!(
            (selected - 3048.1742055005957).abs() < 1e-9,
            "selected BIC drifted: {selected}"
        );
    }

    #[test]
    fn exact_streaming_selection_is_bitwise_the_batch_selection() {
        let m = two_phase_matrix();
        for config in [
            MegsimConfig::default().with_seed(42),
            MegsimConfig::paper().with_seed(42),
        ] {
            let batch = select_representatives(&m, &config);
            let streamed = select_representatives_stream(
                &m,
                &config,
                &StreamClusterConfig::exact().with_batch_size(16),
            );
            assert_eq!(streamed.selection, batch);
            assert_eq!(streamed.reservoir_len, 60);
        }
    }

    #[test]
    fn exact_streaming_matches_batch_across_thread_counts() {
        let m = two_phase_matrix();
        let config = MegsimConfig::default().with_seed(42);
        let batch = select_representatives(&m, &config);
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            let streamed =
                select_representatives_stream(&m, &config, &StreamClusterConfig::exact());
            assert_eq!(streamed.selection, batch, "threads = {threads}");
        }
        megsim_exec::set_threads(0);
    }

    #[test]
    fn bounded_streaming_keeps_the_phases_apart() {
        let m = two_phase_matrix();
        let config = MegsimConfig::default().with_seed(42);
        let streamed = select_representatives_stream(
            &m,
            &config,
            &StreamClusterConfig::default()
                .with_reservoir_capacity(30)
                .with_batch_size(10),
        );
        let sel = &streamed.selection;
        assert!(streamed.peak_rows_retained <= 30 + 10);
        assert_eq!(sel.labels.len(), 60);
        let total: usize = sel.representatives.iter().map(|r| r.cluster_size).sum();
        assert_eq!(total, 60);
        assert!(sel.k() >= 2, "k = {}", sel.k());
        // No cluster may mix the two far-apart phases, even with half
        // the frames labeled through the micro-centroid sketch.
        for c in 0..sel.k() {
            let members: Vec<usize> = (0..60).filter(|&i| sel.labels[i] == c).collect();
            assert!(
                members.iter().all(|m| m % 2 == members[0] % 2),
                "cluster {c} mixes phases: {members:?}"
            );
        }
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        // Full pipeline (normalize → warm search → representatives) at
        // 1/2/8 threads: the bit-identity contract end to end.
        let m = two_phase_matrix();
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            runs.push(select_representatives(
                &m,
                &MegsimConfig::default().with_seed(42),
            ));
        }
        megsim_exec::set_threads(0);
        for pair in runs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }
}
