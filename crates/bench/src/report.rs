//! CSV artifact writers: machine-readable dumps of the experiment data
//! (per-frame statistics, feature matrices, BIC curves) for external
//! plotting of the paper's figures.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use megsim_core::evaluate::MegsimRun;
use megsim_core::FeatureMatrix;
use megsim_timing::FrameStats;

/// Serializes per-frame statistics (one row per frame) — the raw data
/// behind Table II, Fig. 7 and the random-sampling study.
pub fn per_frame_csv(per_frame: &[FrameStats]) -> String {
    let mut out = String::from(
        "frame,cycles,geometry_cycles,raster_cycles,instructions,ipc,\
         dram_accesses,l2_accesses,tile_cache_accesses,fragments_shaded,\
         primitives_emitted\n",
    );
    for (i, f) in per_frame.iter().enumerate() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.4},{},{},{},{},{}",
            i,
            f.cycles,
            f.geometry_cycles,
            f.raster_cycles,
            f.instructions,
            f.ipc(),
            f.dram_accesses(),
            f.l2_accesses(),
            f.tile_cache_accesses(),
            f.activity.fragments_shaded,
            f.activity.primitives_emitted,
        );
    }
    out
}

/// Serializes the `N × D` feature matrix (VSCV | FSCV | PRIM columns).
pub fn feature_matrix_csv(matrix: &FeatureMatrix) -> String {
    let mut out = String::from("frame");
    for i in 0..matrix.vscv_len {
        let _ = write!(out, ",vscv_{i}");
    }
    for i in 0..matrix.fscv_len {
        let _ = write!(out, ",fscv_{i}");
    }
    out.push_str(",prim\n");
    for (i, row) in matrix.rows.iter_rows().enumerate() {
        let _ = write!(out, "{i}");
        for v in row {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Serializes a MEGsim run: the BIC curve, the cluster labels and the
/// representatives (the Fig. 6 data).
pub fn megsim_run_csv(run: &MegsimRun) -> String {
    let mut out = String::from("# bic scores per k\nk,bic\n");
    for (i, b) in run.selection.bic_scores.iter().enumerate() {
        let _ = writeln!(out, "{},{b}", i + 1);
    }
    out.push_str("# frame labels\nframe,cluster\n");
    for (i, l) in run.selection.labels.iter().enumerate() {
        let _ = writeln!(out, "{i},{l}");
    }
    out.push_str("# representatives\ncluster,frame,cluster_size\n");
    for (c, r) in run.selection.representatives.iter().enumerate() {
        let _ = writeln!(out, "{c},{},{}", r.frame_index, r.cluster_size);
    }
    out
}

/// Writes a string artifact into `dir`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(dir: &str, name: &str, contents: &str) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(Path::new(dir).join(name), contents)
}

/// Renders a flat `{"key": number}` JSON object, one entry per line,
/// keys sorted — the `BENCH_N.json` format the benches emit so the
/// perf trajectory stays machine-readable across PRs. Non-finite
/// values are dropped (JSON has no NaN/Inf).
pub fn bench_json(entries: &[(String, f64)]) -> String {
    let mut sorted: Vec<&(String, f64)> = entries.iter().filter(|(_, v)| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (k, v)) in sorted.iter().enumerate() {
        let _ = write!(out, "  \"{k}\": {v}");
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Parses a flat string→number JSON object as written by
/// [`bench_json`] (no nesting, no string values, no escapes in keys).
/// Unparseable pairs are skipped.
fn parse_bench_json(text: &str) -> Vec<(String, f64)> {
    let inner = text.trim().trim_start_matches('{').trim_end_matches('}');
    inner
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            let key = k.trim().trim_matches('"');
            let value: f64 = v.trim().parse().ok()?;
            (!key.is_empty()).then(|| (key.to_string(), value))
        })
        .collect()
}

/// Hardware threads available to the worker pool. Every
/// pipeline/sharding speedup in a `BENCH_N.json` must be recorded next
/// to this number: a ~1.0× ratio measured on a 1-core runner reflects
/// the hardware, not the code, and is unreadable without it.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Qualifier for printed speedup lines. On one hardware thread, overlap
/// is impossible — producers and the consumer time-slice a single core —
/// so ~1.0× is the expected reading, not a regression; the note says so
/// instead of letting the ratio mislead.
pub fn core_note(cores: usize) -> &'static str {
    if cores == 1 {
        " [overlap impossible on 1 core; ~1.0x expected]"
    } else {
        ""
    }
}

/// Context entries every streaming-clustering reading needs written
/// next to it: the problem size and the memory knobs. A streaming
/// speedup is unreadable without the `cluster_n_frames` it was
/// measured at, and a peak-memory reading cannot be compared across
/// PRs without the `stream_reservoir_size` that bounded it.
pub fn stream_context_entries(
    n_frames: usize,
    reservoir_size: usize,
    batch_size: usize,
) -> Vec<(String, f64)> {
    vec![
        ("cluster_n_frames".to_string(), n_frames as f64),
        ("stream_reservoir_size".to_string(), reservoir_size as f64),
        ("stream_batch_size".to_string(), batch_size as f64),
    ]
}

/// Merges `entries` into the flat-JSON benchmark summary at `path`,
/// creating the file if absent. Existing keys are overwritten by new
/// values; keys only present in the file are preserved, so the
/// different benches can each contribute their slice of a summary:
/// the funcsim bench maintains `BENCH_2.json`, the timing bench
/// `BENCH_3.json`.
///
/// # Errors
///
/// Propagates filesystem errors from the final write.
pub fn merge_bench_json(path: &Path, entries: &[(String, f64)]) -> io::Result<()> {
    let mut merged = std::fs::read_to_string(path)
        .map(|text| parse_bench_json(&text))
        .unwrap_or_default();
    for (key, value) in entries {
        match merged.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = *value,
            None => merged.push((key.clone(), *value)),
        }
    }
    std::fs::write(path, bench_json(&merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_frame_csv_has_header_and_rows() {
        let frames = vec![FrameStats::default(), FrameStats::default()];
        let csv = per_frame_csv(&frames);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("frame,cycles"));
        assert!(lines[1].starts_with("0,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "ragged csv"
        );
    }

    #[test]
    fn feature_matrix_csv_layout() {
        let m = FeatureMatrix::from_rows(vec![vec![1.0, 2.0, 3.0, 4.0]], 2, 1);
        let csv = feature_matrix_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "frame,vscv_0,vscv_1,fscv_0,prim");
        assert_eq!(lines[1], "0,1,2,3,4");
    }

    #[test]
    fn bench_json_is_sorted_and_parseable() {
        let entries = vec![
            ("zeta".to_string(), 2.5),
            ("alpha".to_string(), 120.0),
            ("nan".to_string(), f64::NAN),
        ];
        let json = bench_json(&entries);
        assert!(json.starts_with("{\n  \"alpha\": 120"));
        assert!(!json.contains("nan"), "non-finite values must be dropped");
        let back = parse_bench_json(&json);
        assert_eq!(
            back,
            vec![("alpha".to_string(), 120.0), ("zeta".to_string(), 2.5)]
        );
    }

    #[test]
    fn merge_bench_json_overwrites_and_preserves() {
        let path = std::env::temp_dir().join("megsim_bench2_test.json");
        let _ = std::fs::remove_file(&path);
        merge_bench_json(&path, &[("a".to_string(), 1.0), ("b".to_string(), 2.0)]).expect("write");
        merge_bench_json(&path, &[("b".to_string(), 9.0), ("c".to_string(), 3.0)]).expect("merge");
        let back = parse_bench_json(&std::fs::read_to_string(&path).expect("read"));
        assert_eq!(
            back,
            vec![
                ("a".to_string(), 1.0),
                ("b".to_string(), 9.0),
                ("c".to_string(), 3.0)
            ]
        );
    }

    #[test]
    fn stream_context_entries_name_the_knobs() {
        let entries = stream_context_entries(100_000, 1024, 256);
        assert_eq!(
            entries,
            vec![
                ("cluster_n_frames".to_string(), 100_000.0),
                ("stream_reservoir_size".to_string(), 1024.0),
                ("stream_batch_size".to_string(), 256.0),
            ]
        );
        // The keys must survive the round trip through the flat JSON.
        let back = parse_bench_json(&bench_json(&entries));
        assert_eq!(back.len(), 3);
        assert!(back
            .iter()
            .any(|(k, v)| k == "cluster_n_frames" && *v == 100_000.0));
    }

    #[test]
    fn core_note_flags_single_core_only() {
        assert!(core_note(1).contains("overlap impossible"));
        assert_eq!(core_note(2), "");
        assert_eq!(core_note(16), "");
        assert!(available_cores() >= 1);
    }

    #[test]
    fn write_artifact_roundtrip() {
        let dir = std::env::temp_dir().join("megsim_report_test");
        let dir = dir.to_str().expect("utf-8 temp dir");
        write_artifact(dir, "x.csv", "a,b\n1,2\n").expect("write");
        let back = std::fs::read_to_string(format!("{dir}/x.csv")).expect("read");
        assert_eq!(back, "a,b\n1,2\n");
    }
}
