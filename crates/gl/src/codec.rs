//! Binary trace-file codec.
//!
//! TEAPOT stores intercepted GL commands in trace files; the paper's
//! conclusions explicitly count "the cost in time and storage (for the
//! trace files)" among what MEGsim reduces. This module provides a
//! compact little-endian binary format for [`CommandStream`]s with two
//! wire versions behind one header:
//!
//! ```text
//! v1: magic "MGLT" | version=1 u16 | command count u64 | commands...
//! v2: magic "MGLT" | version=2 u16 | command count varint | commands...
//! command = opcode u8 | payload (opcode- and version-specific)
//! ```
//!
//! Version 1 is the frozen seed format (the golden corpus under
//! `tests/data/` pins its bytes). Version 2 decodes to bit-identical
//! commands but packs the count/ID/address-heavy fields as LEB128
//! varints, with zigzag deltas where the payloads are monotone in
//! practice (mesh indices within a mesh, mesh/texture base addresses
//! across uploads) and byte-swapped-varint matrix elements — see
//! `DESIGN.md` §2h for the field tables.
//!
//! Decoding is streaming-first: [`decode`] is a thin collector over
//! [`crate::stream::StreamDecoder`], which reads commands incrementally
//! from any [`std::io::Read`] source with O(command) peak memory and
//! reports the byte offset of any malformed field.

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};

use megsim_gfx::draw::BlendMode;
use megsim_gfx::shader::{ShaderKind, TextureFilter};

use crate::command::{Command, CommandStream};
use crate::stream::StreamDecoder;

/// The frozen v1 format version — the default [`encode`] output and the
/// version the golden corpus pins.
pub const FORMAT_VERSION: u16 = 1;

/// The varint v2 format version produced by [`encode_v2`].
pub const FORMAT_VERSION_V2: u16 = 2;

pub(crate) const MAGIC: &[u8; 4] = b"MGLT";

/// What went wrong while decoding a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The magic bytes are wrong — not a trace file.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u16),
    /// The input ended in the middle of a command.
    Truncated,
    /// An opcode, enum discriminant or field value is invalid.
    BadValue(&'static str),
    /// The underlying reader failed.
    Io(std::io::ErrorKind),
}

/// Error produced while decoding a trace file, with the byte offset at
/// which the malformed field starts — in a multi-gigabyte capture the
/// offset is what makes a corruption report actionable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The failure class.
    pub kind: DecodeErrorKind,
    /// Byte offset (from the start of the trace) of the offending
    /// field; for truncation, the offset at which more bytes were
    /// needed.
    pub offset: u64,
}

impl DecodeError {
    pub(crate) const fn new(kind: DecodeErrorKind, offset: u64) -> Self {
        Self { kind, offset }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DecodeErrorKind::BadMagic => write!(f, "not a MGLT trace file"),
            DecodeErrorKind::BadVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            DecodeErrorKind::Truncated => {
                write!(f, "trace file is truncated at byte {}", self.offset)
            }
            DecodeErrorKind::BadValue(what) => {
                write!(f, "invalid {what} in trace file at byte {}", self.offset)
            }
            DecodeErrorKind::Io(e) => {
                write!(f, "trace read failed at byte {}: {e:?}", self.offset)
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends a LEB128 varint.
pub(crate) fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Zigzag-maps a signed delta onto an unsigned varint payload.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a zigzag-encoded signed varint.
fn put_signed(out: &mut BytesMut, v: i64) {
    put_varint(out, zigzag(v));
}

/// Maps a changed matrix element onto its v2 wire integer: the XOR of
/// its bit pattern against the same element of the previously encoded
/// matrix, byte-swapped. The XOR zeroes shared sign/exponent/mantissa
/// prefixes (identical elements never reach the wire at all — the
/// change mask skips them); swapping moves the surviving low bytes
/// down so the varint drops the zero tail. Lossless for every bit
/// pattern, NaN payloads and -0.0 included.
pub(crate) fn matrix_delta_to_wire(bits: u32, prev: u32) -> u64 {
    u64::from((bits ^ prev).swap_bytes())
}

/// Inverse of [`matrix_delta_to_wire`]: recovers the element bit
/// pattern from its wire delta; `None` when the wire value exceeds u32.
pub(crate) fn matrix_delta_from_wire(v: u64, prev: u32) -> Option<u32> {
    u32::try_from(v).ok().map(|d| d.swap_bytes() ^ prev)
}

/// Serializes a stream in the frozen v1 format (the golden-corpus
/// bytes).
pub fn encode(stream: &CommandStream) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + stream.commands.len() * 16);
    out.put_slice(MAGIC);
    out.put_u16_le(FORMAT_VERSION);
    out.put_u64_le(stream.commands.len() as u64);
    for cmd in &stream.commands {
        out.put_u8(cmd.opcode());
        match cmd {
            Command::BufferData { id, mesh } => {
                out.put_u32_le(id.0);
                out.put_u64_le(mesh.base_address);
                out.put_u32_le(mesh.vertices.len() as u32);
                for v in &mesh.vertices {
                    for f in [
                        v.position.x,
                        v.position.y,
                        v.position.z,
                        v.normal.x,
                        v.normal.y,
                        v.normal.z,
                        v.uv.x,
                        v.uv.y,
                    ] {
                        out.put_f32_le(f);
                    }
                }
                out.put_u32_le(mesh.indices.len() as u32);
                for &i in &mesh.indices {
                    out.put_u32_le(i);
                }
            }
            Command::TexImage(t) => {
                out.put_u32_le(t.id.0);
                out.put_u32_le(t.width);
                out.put_u32_le(t.height);
                out.put_u32_le(t.bytes_per_texel);
                out.put_u64_le(t.base_address);
            }
            Command::ProgramData(p) => {
                out.put_u32_le(p.id.0);
                out.put_u8(shader_kind_tag(p.kind));
                let name = p.name.as_bytes();
                out.put_u16_le(name.len() as u16);
                out.put_slice(name);
                out.put_u32_le(p.alu_instructions);
                out.put_u16_le(p.texture_samples.len() as u16);
                for f in &p.texture_samples {
                    out.put_u8(filter_tag(*f));
                }
            }
            Command::UseProgram { vertex, fragment } => {
                out.put_u32_le(vertex.0);
                out.put_u32_le(fragment.0);
            }
            Command::BindTexture(t) => match t {
                Some(id) => {
                    out.put_u8(1);
                    out.put_u32_le(id.0);
                }
                None => out.put_u8(0),
            },
            Command::UniformMatrix(m) => {
                for col in &m.cols {
                    for f in [col.x, col.y, col.z, col.w] {
                        out.put_f32_le(f);
                    }
                }
            }
            Command::Blend(b) => out.put_u8(blend_tag(*b)),
            Command::DepthTest(d) => out.put_u8(u8::from(*d)),
            Command::Draw(id) => out.put_u32_le(id.0),
            Command::SwapBuffers => {}
        }
    }
    out.freeze()
}

/// Serializes a stream in the varint v2 format.
///
/// Opcode bytes and vertex f32 payloads are identical to v1; counts,
/// IDs and addresses become LEB128 varints; mesh indices and
/// mesh/texture base addresses are zigzag deltas against the previous
/// value of the same kind, which keeps the common small-ascending
/// patterns at one byte per field; each matrix carries a 16-bit change
/// mask against the previously encoded matrix, and only the changed
/// elements follow as varints of their byte-swapped XOR deltas
/// ([`matrix_delta_to_wire`] — lossless, with the structural zeros and
/// repeated entries that dominate transforms costing nothing).
pub fn encode_v2(stream: &CommandStream) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + stream.commands.len() * 8);
    out.put_slice(MAGIC);
    out.put_u16_le(FORMAT_VERSION_V2);
    put_varint(&mut out, stream.commands.len() as u64);
    // Delta state: base addresses of consecutive uploads of the same
    // resource kind are monotone in practice (the workloads lay
    // resources out in one address space), so deltas stay small.
    let mut last_mesh_addr: u64 = 0;
    let mut last_tex_addr: u64 = 0;
    // Consecutive transforms share most of their entries (structural
    // zeros, a common scale/projection), so XOR deltas against the
    // previous matrix are sparse; the change mask drops the identical
    // elements entirely.
    let mut last_matrix = [0u32; 16];
    for cmd in &stream.commands {
        out.put_u8(cmd.opcode());
        match cmd {
            Command::BufferData { id, mesh } => {
                put_varint(&mut out, u64::from(id.0));
                put_signed(
                    &mut out,
                    mesh.base_address.wrapping_sub(last_mesh_addr) as i64,
                );
                last_mesh_addr = mesh.base_address;
                put_varint(&mut out, mesh.vertices.len() as u64);
                for v in &mesh.vertices {
                    for f in [
                        v.position.x,
                        v.position.y,
                        v.position.z,
                        v.normal.x,
                        v.normal.y,
                        v.normal.z,
                        v.uv.x,
                        v.uv.y,
                    ] {
                        out.put_f32_le(f);
                    }
                }
                put_varint(&mut out, mesh.indices.len() as u64);
                let mut prev: u32 = 0;
                for &i in &mesh.indices {
                    put_signed(&mut out, i64::from(i) - i64::from(prev));
                    prev = i;
                }
            }
            Command::TexImage(t) => {
                put_varint(&mut out, u64::from(t.id.0));
                put_varint(&mut out, u64::from(t.width));
                put_varint(&mut out, u64::from(t.height));
                put_varint(&mut out, u64::from(t.bytes_per_texel));
                put_signed(&mut out, t.base_address.wrapping_sub(last_tex_addr) as i64);
                last_tex_addr = t.base_address;
            }
            Command::ProgramData(p) => {
                put_varint(&mut out, u64::from(p.id.0));
                out.put_u8(shader_kind_tag(p.kind));
                let name = p.name.as_bytes();
                put_varint(&mut out, name.len() as u64);
                out.put_slice(name);
                put_varint(&mut out, u64::from(p.alu_instructions));
                put_varint(&mut out, p.texture_samples.len() as u64);
                for f in &p.texture_samples {
                    out.put_u8(filter_tag(*f));
                }
            }
            Command::UseProgram { vertex, fragment } => {
                put_varint(&mut out, u64::from(vertex.0));
                put_varint(&mut out, u64::from(fragment.0));
            }
            Command::BindTexture(t) => match t {
                Some(id) => {
                    out.put_u8(1);
                    put_varint(&mut out, u64::from(id.0));
                }
                None => out.put_u8(0),
            },
            Command::UniformMatrix(m) => {
                let mut bits = [0u32; 16];
                for (c, col) in m.cols.iter().enumerate() {
                    for (r, f) in [col.x, col.y, col.z, col.w].into_iter().enumerate() {
                        bits[c * 4 + r] = f.to_bits();
                    }
                }
                let mut mask = 0u16;
                for (i, &b) in bits.iter().enumerate() {
                    if b != last_matrix[i] {
                        mask |= 1 << i;
                    }
                }
                out.put_u16_le(mask);
                for (i, &b) in bits.iter().enumerate() {
                    if b != last_matrix[i] {
                        put_varint(&mut out, matrix_delta_to_wire(b, last_matrix[i]));
                        last_matrix[i] = b;
                    }
                }
            }
            Command::Blend(b) => out.put_u8(blend_tag(*b)),
            Command::DepthTest(d) => out.put_u8(u8::from(*d)),
            Command::Draw(id) => put_varint(&mut out, u64::from(id.0)),
            Command::SwapBuffers => {}
        }
    }
    out.freeze()
}

/// Serializes a stream in the given wire version (1 or 2); returns
/// `None` for unknown versions.
pub fn encode_with_version(stream: &CommandStream, version: u16) -> Option<Bytes> {
    match version {
        FORMAT_VERSION => Some(encode(stream)),
        FORMAT_VERSION_V2 => Some(encode_v2(stream)),
        _ => None,
    }
}

pub(crate) const fn shader_kind_tag(kind: ShaderKind) -> u8 {
    match kind {
        ShaderKind::Vertex => 0,
        ShaderKind::Fragment => 1,
    }
}

pub(crate) const fn filter_tag(filter: TextureFilter) -> u8 {
    match filter {
        TextureFilter::Nearest => 0,
        TextureFilter::Linear => 1,
        TextureFilter::Bilinear => 2,
        TextureFilter::Trilinear => 3,
    }
}

pub(crate) const fn blend_tag(blend: BlendMode) -> u8 {
    match blend {
        BlendMode::Opaque => 0,
        BlendMode::AlphaBlend => 1,
        BlendMode::Additive => 2,
    }
}

/// Deserializes a stream from bytes, accepting both wire versions.
///
/// This is the materializing entry point; for O(frame) memory over
/// arbitrarily long traces use [`StreamDecoder`] /
/// [`crate::stream::FrameIter`] directly.
///
/// # Errors
///
/// Returns a [`DecodeError`] (with the byte offset of the offending
/// field) on malformed input; never panics on arbitrary bytes.
pub fn decode(data: &[u8]) -> Result<CommandStream, DecodeError> {
    let mut decoder = StreamDecoder::new(data)?;
    let mut commands = Vec::with_capacity((decoder.remaining() as usize).min(1 << 20));
    for cmd in &mut decoder {
        commands.push(cmd?);
    }
    Ok(CommandStream { commands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::record_sequence;
    use megsim_gfx::draw::{DrawCall, Frame};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn sample_stream() -> CommandStream {
        let mut shaders = megsim_gfx::shader::ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "vs", 9));
        shaders.add(ShaderProgram::fragment(
            0,
            "fs",
            4,
            vec![TextureFilter::Trilinear],
        ));
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.3, -0.3, 0.0)),
                Vertex::at(Vec3::new(0.3, -0.3, 0.0)),
                Vertex::at(Vec3::new(0.0, 0.3, 0.0)),
            ],
            vec![0, 1, 2],
            0x77,
        ));
        let mut frame = Frame::new();
        frame.draws.push(DrawCall {
            mesh,
            transform: Mat4::rotation_y(0.3),
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: Some(TextureDesc::new(2, 128, 64, 4, 0xFEED)),
            blend: BlendMode::Additive,
            depth_test: true,
        });
        record_sequence(&shaders, &[frame])
    }

    #[test]
    fn encode_decode_roundtrip() {
        let stream = sample_stream();
        let bytes = encode(&stream);
        let back = decode(&bytes).expect("roundtrip");
        assert_eq!(stream, back);
    }

    #[test]
    fn encode_v2_decode_roundtrip() {
        let stream = sample_stream();
        let bytes = encode_v2(&stream);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), FORMAT_VERSION_V2);
        let back = decode(&bytes).expect("v2 roundtrip");
        assert_eq!(stream, back);
    }

    #[test]
    fn v2_is_smaller_than_v1() {
        let stream = sample_stream();
        assert!(encode_v2(&stream).len() < encode(&stream).len());
    }

    #[test]
    fn encode_with_version_dispatches() {
        let stream = sample_stream();
        assert_eq!(
            encode_with_version(&stream, 1).expect("v1").as_ref(),
            encode(&stream).as_ref()
        );
        assert_eq!(
            encode_with_version(&stream, 2).expect("v2").as_ref(),
            encode_v2(&stream).as_ref()
        );
        assert!(encode_with_version(&stream, 3).is_none());
    }

    #[test]
    fn varint_zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut out = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            put_varint(&mut out, v);
        }
        assert_eq!(out.len(), 1 + 1 + 1 + 2 + 2 + 3 + 10);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = decode(b"NOPE\x01\x00").unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMagic);
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&sample_stream()).to_vec();
        bytes[4] = 0xFF;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::BadVersion(_)));
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        for bytes in [encode(&sample_stream()), encode_v2(&sample_stream())] {
            // Every strict prefix must fail cleanly, never panic, and
            // the reported offset must lie within the prefix.
            for len in 0..bytes.len() {
                let err = decode(&bytes[..len]).expect_err("prefix decoded");
                assert!(
                    err.offset <= len as u64,
                    "offset {} beyond prefix {len}",
                    err.offset
                );
            }
        }
    }

    #[test]
    fn rejects_corrupt_opcode() {
        let mut bytes = encode(&sample_stream()).to_vec();
        // First opcode byte follows the 14-byte header.
        bytes[14] = 0xEE;
        let err = decode(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadValue("opcode"));
        assert_eq!(err.offset, 14);
    }

    #[test]
    fn truncation_reports_the_cut_offset() {
        let bytes = encode(&sample_stream());
        let cut = bytes.len() - 3;
        let err = decode(&bytes[..cut]).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::Truncated);
        // The failing field starts at or before the cut.
        assert!(err.offset <= cut as u64);
    }

    #[test]
    fn trace_is_compact_relative_to_frame_dump() {
        // 50 frames sharing one mesh: the trace stores the mesh once.
        let mut shaders = megsim_gfx::shader::ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "v", 3));
        shaders.add(ShaderProgram::fragment(0, "f", 3, vec![]));
        let mesh = Arc::new(Mesh::new(
            vec![Vertex::at(Vec3::ZERO); 300],
            (0..300u32).collect(),
            0,
        ));
        let frames: Vec<Frame> = (0..50)
            .map(|i| {
                let mut f = Frame::new();
                f.draws.push(DrawCall {
                    mesh: Arc::clone(&mesh),
                    transform: Mat4::rotation_y(i as f32 * 0.1),
                    vertex_shader: ShaderId(0),
                    fragment_shader: ShaderId(0),
                    texture: None,
                    blend: BlendMode::Opaque,
                    depth_test: true,
                });
                f
            })
            .collect();
        let stream = record_sequence(&shaders, &frames);
        let encoded = encode(&stream);
        let mesh_bytes = 300 * 32 + 300 * 4;
        // One mesh upload (~10.9 KB) + 50 × (matrix + draw + swap).
        assert!(encoded.len() < mesh_bytes + 50 * 80 + 256);
        // v2 shrinks the index section (4 bytes -> 1-byte deltas).
        let v2 = encode_v2(&stream);
        assert!(v2.len() + 600 < encoded.len());
    }
}
