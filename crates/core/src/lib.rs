//! # megsim-core
//!
//! The MEGsim methodology (ISPASS 2022): characterize every frame of a
//! graphics workload by per-shader execution counts and primitive
//! counts, cluster similar frames with k-means scored by BIC, and
//! simulate only one representative frame per cluster — cutting
//! cycle-accurate simulation time by two orders of magnitude at ~1 %
//! error.
//!
//! The crate maps one-to-one onto paper §III:
//!
//! * [`features`] — the vector of characteristics (§III-B, Fig. 2)
//! * [`normalize`] — power-derived group weights (§III-C, Fig. 4)
//! * [`similarity`] — the frame Similarity Matrix (§III-D, Fig. 5)
//! * [`pipeline`] — clustering and representative selection (§III-E/F)
//! * [`estimate`] — statistic scaling and accuracy metrics (§V-B)
//! * [`random_sampling`] — the §V-C baseline
//! * [`evaluate`] — end-to-end drivers over `megsim-funcsim` +
//!   `megsim-timing`
//!
//! ```no_run
//! use megsim_core::evaluate::{characterize_sequence, evaluate_megsim, simulate_sequence};
//! use megsim_core::pipeline::MegsimConfig;
//! use megsim_timing::GpuConfig;
//! use megsim_workloads::by_alias;
//!
//! let workload = by_alias("jjo", 0.1, 42).expect("known benchmark");
//! let gpu = GpuConfig::mali450_like();
//! let config = MegsimConfig::default();
//! let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
//! let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);
//! let run = evaluate_megsim(&matrix, &per_frame, &config);
//! println!(
//!     "simulate {} of {} frames ({}x), cycles error {:.2}%",
//!     run.frames_simulated(),
//!     workload.frames(),
//!     run.reduction_factor(),
//!     run.errors.cycles * 100.0
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod estimate;
pub mod evaluate;
pub mod features;
pub mod frame_cache;
pub mod normalize;
pub mod pipeline;
pub mod random_sampling;
pub mod similarity;

pub use batch::{parse_manifest, run_batch, BatchJob, BatchOp, BatchReport, CampaignReport};
pub use estimate::{estimate_totals, metric_errors, sequence_totals, MetricErrors};
pub use evaluate::{
    characterize_sequence, characterize_stream, evaluate_megsim, simulate_representatives,
    simulate_representatives_multi, simulate_sequence, simulate_sequence_multi,
    simulate_sequence_warm, simulate_sequence_warm_sequential, MegsimRun,
};
pub use features::{
    characterize_frame, characterize_frame_into, feature_matrix, CharacterizationConfig,
    FeatureMatrix,
};
pub use normalize::{normalize, GroupWeights, RunningGroupMass};
pub use pipeline::{
    select_representatives, select_representatives_stream, MegsimConfig, Representative, Selection,
    StreamClusterConfig, StreamSelection,
};
pub use similarity::SimilarityMatrix;
