//! Subcommand implementations of the `megsim` tool.

use std::collections::HashMap;

use megsim_bench::report;
use megsim_core::evaluate::{evaluate_megsim, simulate_sequence};
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_core::{feature_matrix, FeatureMatrix};
use megsim_funcsim::{RenderConfig, Renderer};
use megsim_gfx::draw::Frame;
use megsim_gfx::shader::ShaderTable;
use megsim_gl::{decode, encode, play, record_sequence};
use megsim_timing::GpuConfig;

const USAGE: &str = "\
usage: megsim <command> [options]

commands:
  record       --benchmark <alias> [--scale F] [--seed N] --out <trace.mglt>
               generate a synthetic benchmark and record its GL trace
  info         <trace.mglt>
               print trace statistics
  characterize <trace.mglt> [--out features.csv]
               replay the trace functionally and emit the N x D
               feature matrix (paper §III-B)
  select       <trace.mglt> [--out plan.csv] [--seed N]
               cluster the frames and print the representative plan
               (paper §III-E/F)
  estimate     <trace.mglt> [--seed N] [--ground-truth]
               run MEGsim end-to-end on the trace: simulate only the
               representatives and report estimated totals; with
               --ground-truth also run the full simulation and report
               the Fig. 7 relative errors
  help         print this message

global options:
  --threads N  worker threads for the parallel stages (0 = MEGSIM_THREADS
               env or all cores); results are identical at any count
  --no-frame-cache
               disable the content-addressed frame-result cache (results
               are identical either way; only wall-clock time changes)";

/// Dispatches a full argv (including program name).
pub fn run(argv: &[String]) -> Result<(), String> {
    let mut opts = Options::parse(argv)?;
    let threads: usize = opts.flag("threads", 0)?;
    megsim_exec::set_threads(threads);
    megsim_core::frame_cache::set_enabled(!opts.has("no-frame-cache"));
    match opts.command.as_str() {
        "record" => record(&mut opts),
        "info" => info(&mut opts),
        "characterize" => characterize(&mut opts),
        "select" => select(&mut opts),
        "estimate" => estimate(&mut opts),
        "help" | "--help" | "-h" | "" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}

/// Parsed command line: a subcommand, positional arguments and flags.
struct Options {
    command: String,
    positional: Vec<String>,
    flags: HashMap<String, String>,
    bools: Vec<String>,
}

impl Options {
    fn parse(argv: &[String]) -> Result<Self, String> {
        // Global flags may appear before or after the subcommand: the
        // first non-flag token is the command, everything else keeps
        // its relative meaning.
        let mut command = String::new();
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut bools = Vec::new();
        let rest: Vec<&String> = argv.iter().skip(1).collect();
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i];
            if let Some(name) = a.strip_prefix("--") {
                if name == "ground-truth" || name == "no-frame-cache" {
                    bools.push(name.to_string());
                    i += 1;
                } else {
                    let value = rest
                        .get(i + 1)
                        .ok_or_else(|| format!("missing value for --{name}"))?;
                    flags.insert(name.to_string(), (*value).clone());
                    i += 2;
                }
            } else if command.is_empty() {
                command = a.clone();
                i += 1;
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Self {
            command,
            positional,
            flags,
            bools,
        })
    }

    fn flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            Some(v) => v.parse().map_err(|_| format!("invalid --{name}: {v}")),
            None => Ok(default),
        }
    }

    fn required_flag(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn trace_path(&mut self) -> Result<String, String> {
        if self.positional.is_empty() {
            return Err("expected a trace file argument".into());
        }
        Ok(self.positional.remove(0))
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

fn load_trace(path: &str) -> Result<(ShaderTable, Vec<Frame>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let stream = decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let replay = play(&stream).map_err(|e| format!("{path}: {e}"))?;
    Ok((replay.shaders, replay.frames))
}

fn characterize_frames(shaders: &ShaderTable, frames: &[Frame], gpu: &GpuConfig) -> FeatureMatrix {
    let render_config = RenderConfig {
        viewport: gpu.viewport,
        mode: gpu.render_mode,
    };
    let renderer = Renderer::new(render_config);
    let config_fp = megsim_core::frame_cache::activity_config_fingerprint(&render_config, shaders);
    let activities = megsim_exec::par_map_indexed(frames, |_, f| {
        megsim_core::frame_cache::activity_or_else(config_fp, f, || {
            renderer.frame_activity(f, shaders)
        })
    });
    feature_matrix(activities.iter(), shaders, &Default::default())
}

fn record(opts: &mut Options) -> Result<(), String> {
    let alias = opts.required_flag("benchmark")?.to_string();
    let scale: f64 = opts.flag("scale", 0.1)?;
    let seed: u64 = opts.flag("seed", 42)?;
    let out = opts.required_flag("out")?.to_string();
    let workload = megsim_workloads::by_alias(&alias, scale, seed).ok_or_else(|| {
        format!("unknown benchmark '{alias}' (try asp, bbr1, bbr2, hcr, hwh, jjo, pvz, spd)")
    })?;
    let frames: Vec<Frame> = workload.generate_frames();
    let stream = record_sequence(workload.shaders(), &frames);
    let bytes = encode(&stream);
    std::fs::write(&out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "recorded {} ({} frames, {} draws) -> {} ({} bytes)",
        workload.name,
        stream.frame_count(),
        stream.draw_count(),
        out,
        bytes.len()
    );
    Ok(())
}

fn info(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let stream = decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let replay = play(&stream).map_err(|e| format!("{path}: {e}"))?;
    println!("trace:             {path}");
    println!("size:              {} bytes", bytes.len());
    println!("commands:          {}", stream.commands.len());
    println!("frames:            {}", stream.frame_count());
    println!("draw calls:        {}", stream.draw_count());
    println!("vertex shaders:    {}", replay.shaders.vertex_count());
    println!("fragment shaders:  {}", replay.shaders.fragment_count());
    let draws_per_frame = stream.draw_count() as f64 / stream.frame_count().max(1) as f64;
    println!("draws per frame:   {draws_per_frame:.1}");
    Ok(())
}

fn characterize(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let (shaders, frames) = load_trace(&path)?;
    let gpu = GpuConfig::mali450_like();
    let matrix = characterize_frames(&shaders, &frames, &gpu);
    let csv = report::feature_matrix_csv(&matrix);
    match opts.flags.get("out") {
        Some(out) => {
            std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "wrote {} x {} feature matrix to {out}",
                matrix.frames(),
                matrix.dim()
            );
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn select(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let seed: u64 = opts.flag("seed", 42)?;
    let (shaders, frames) = load_trace(&path)?;
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default().with_seed(seed);
    let matrix = characterize_frames(&shaders, &frames, &gpu);
    let selection = select_representatives(&matrix, &config);
    println!(
        "{} frames -> {} representatives ({:.1}x reduction)",
        frames.len(),
        selection.k(),
        selection.reduction_factor()
    );
    let mut csv = String::from("cluster,frame,cluster_size\n");
    for (c, r) in selection.representatives.iter().enumerate() {
        use std::fmt::Write as _;
        let _ = writeln!(csv, "{c},{},{}", r.frame_index, r.cluster_size);
        println!(
            "  cluster {c:>3}: frame {:>6} x {:>6}",
            r.frame_index, r.cluster_size
        );
    }
    if let Some(out) = opts.flags.get("out") {
        std::fs::write(out, csv).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("plan written to {out}");
    }
    Ok(())
}

fn estimate(opts: &mut Options) -> Result<(), String> {
    let path = opts.trace_path()?;
    let seed: u64 = opts.flag("seed", 42)?;
    let ground_truth = opts.has("ground-truth");
    let (shaders, frames) = load_trace(&path)?;
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default().with_seed(seed);
    let matrix = characterize_frames(&shaders, &frames, &gpu);
    let selection = select_representatives(&matrix, &config);
    // Simulate only the representatives, scale by cluster sizes.
    let rep_stats =
        megsim_core::simulate_representatives(|i| frames[i].clone(), &selection, &shaders, &gpu);
    let mut estimated = megsim_timing::FrameStats::default();
    for (stats, rep) in rep_stats.iter().zip(&selection.representatives) {
        estimated.merge(&stats.scaled(rep.cluster_size as u64));
    }
    println!(
        "simulated {} of {} frames ({:.1}x fewer)",
        selection.k(),
        frames.len(),
        selection.reduction_factor()
    );
    println!("estimated totals:");
    println!("  cycles:              {}", estimated.cycles);
    println!("  DRAM accesses:       {}", estimated.dram_accesses());
    println!("  L2 accesses:         {}", estimated.l2_accesses());
    println!("  tile-cache accesses: {}", estimated.tile_cache_accesses());
    println!("  IPC:                 {:.2}", estimated.ipc());
    if ground_truth {
        eprintln!("running full ground-truth simulation...");
        let per_frame = simulate_sequence(frames.iter().cloned(), &shaders, &gpu);
        let run = evaluate_megsim(&matrix, &per_frame, &config);
        println!("relative errors vs full simulation (estimates from full-run frames):");
        println!("  cycles:              {:.3}%", run.errors.cycles * 100.0);
        println!(
            "  DRAM accesses:       {:.3}%",
            run.errors.dram_accesses * 100.0
        );
        println!(
            "  L2 accesses:         {:.3}%",
            run.errors.l2_accesses * 100.0
        );
        println!(
            "  tile-cache accesses: {:.3}%",
            run.errors.tile_cache_accesses * 100.0
        );
    }
    if megsim_core::frame_cache::is_enabled() {
        eprintln!("{}", megsim_core::frame_cache::report().summary());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        std::iter::once("megsim")
            .chain(parts.iter().copied())
            .map(str::to_string)
            .collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("megsim_cli_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_str().expect("utf-8").to_string()
    }

    #[test]
    fn help_runs() {
        run(&argv(&["help"])).expect("help works");
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn record_requires_benchmark() {
        assert!(run(&argv(&["record", "--out", "/tmp/x.mglt"])).is_err());
        assert!(run(&argv(&[
            "record",
            "--benchmark",
            "nope",
            "--out",
            "/tmp/x.mglt"
        ]))
        .is_err());
    }

    #[test]
    fn record_info_select_estimate_pipeline() {
        let trace = tmp("pipeline.mglt");
        run(&argv(&[
            "record",
            "--benchmark",
            "hcr",
            "--scale",
            "0.01",
            "--seed",
            "5",
            "--out",
            &trace,
        ]))
        .expect("record");
        run(&argv(&["info", &trace])).expect("info");
        let features = tmp("features.csv");
        run(&argv(&["characterize", &trace, "--out", &features])).expect("characterize");
        let csv = std::fs::read_to_string(&features).expect("features written");
        assert!(csv.starts_with("frame,vscv_0"));
        let plan = tmp("plan.csv");
        run(&argv(&["select", &trace, "--out", &plan])).expect("select");
        let plan_csv = std::fs::read_to_string(&plan).expect("plan written");
        assert!(plan_csv.starts_with("cluster,frame,cluster_size"));
        assert!(plan_csv.lines().count() > 1);
    }

    #[test]
    fn info_rejects_garbage_files() {
        let bad = tmp("bad.mglt");
        std::fs::write(&bad, b"not a trace").expect("write");
        let err = run(&argv(&["info", &bad])).unwrap_err();
        assert!(err.contains("MGLT"), "{err}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(run(&argv(&["info", "/nonexistent/x.mglt"])).is_err());
    }
}
