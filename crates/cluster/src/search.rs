//! The paper's BIC-driven search for the number of clusters (§III-F).
//!
//! MEGsim "starts with a single cluster … and iteratively increases this
//! value. For every cluster, the BIC score is calculated and the
//! algorithm stops when a BIC score lower than the previous one is
//! obtained. Finally, the algorithm chooses the clustering that achieves
//! a BIC score that is at least [T = 85 %] of the spread between the
//! largest and the smallest BIC score."
//!
//! Each candidate `k` is fit with the paper's multi-seeding robustness
//! protocol: `restarts` independently seeded k-means runs, lowest WCSS
//! wins. Seeds derive from `(seed, k, restart index)` only — candidate
//! `k` uses [`candidate_seed`], restart `r` within it
//! [`crate::kmeans::restart_seed`], both pinned by unit tests — so the
//! search is bit-identical at any thread count.
//!
//! The whole search shares one [`SearchScratch`]: assignment labels,
//! Hamerly bounds, per-cluster accumulators and the memoized D²-seeding
//! distance rows persist across every restart of every candidate `k`
//! (the data never changes mid-search), so steady-state iterations
//! allocate nothing and k-means++ reuses seeding rows it computed for
//! earlier candidates. The parallelism lives *inside* each fit's
//! assignment step, which fans out in deterministic fixed-size chunks
//! on the `megsim-exec` pool.

use crate::bic::bic_score;
use crate::kmeans::{kmeans_best_of_with, InitMethod, KMeansConfig, KMeansResult, KMeansScratch};
use crate::matrix::PointMatrix;

/// Configuration of the cluster search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// BIC threshold `T` of §III-F (paper default 0.85).
    pub threshold: f64,
    /// Hard upper bound on `k` (safety net; the BIC stop normally fires
    /// first).
    pub max_k: usize,
    /// Consecutive BIC decreases tolerated before stopping. The paper's
    /// rule is `1` (stop at the first decrease); the default of `2`
    /// tolerates the occasional local BIC dip that k-means init noise
    /// produces even under multi-seeding, and degrades gracefully to the
    /// paper's rule via [`SearchConfig::with_patience`]. (Before
    /// [`SearchConfig::restarts`] multi-seeding existed, the default was
    /// `3`; the smoother multi-seeded BIC curve lets the search stop
    /// earlier without mistaking init noise for the true BIC peak.)
    pub patience: usize,
    /// Base RNG seed. Candidate `k` uses [`candidate_seed`]`(seed, k)`
    /// (`seed ⊕ k · 0x9E37_79B9_7F4A_7C15`) so every `k` gets an
    /// independent stream; restart `r` within a candidate then derives
    /// via [`crate::kmeans::restart_seed`]. Both functions are pinned
    /// by unit tests — changing either would change which restart wins
    /// and therefore every downstream representative.
    pub seed: u64,
    /// Centroid initialization passed through to k-means.
    pub init: InitMethod,
    /// Independently seeded k-means runs per candidate `k`, best WCSS
    /// wins. They are independent, so they run concurrently on the
    /// worker pool. `1` reproduces the old single-run search; the
    /// default of `4` smooths the BIC curve enough that the threshold
    /// rule stops picking init-noise artifacts.
    pub restarts: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            threshold: 0.85,
            max_k: 128,
            patience: 2,
            seed: 0,
            init: InitMethod::KMeansPlusPlus,
            restarts: 4,
        }
    }
}

impl SearchConfig {
    /// Sets the threshold `T` (builder style).
    pub fn with_threshold(mut self, t: f64) -> Self {
        assert!((0.0..=1.0).contains(&t), "threshold must be in [0, 1]");
        self.threshold = t;
        self
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum `k` (builder style).
    pub fn with_max_k(mut self, max_k: usize) -> Self {
        assert!(max_k >= 1, "max_k must be at least 1");
        self.max_k = max_k;
        self
    }

    /// Sets the patience (builder style).
    pub fn with_patience(mut self, patience: usize) -> Self {
        assert!(patience >= 1, "patience must be at least 1");
        self.patience = patience;
        self
    }

    /// Sets the k-means restarts per candidate `k` (builder style).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        assert!(restarts >= 1, "restarts must be at least 1");
        self.restarts = restarts;
        self
    }
}

/// Outcome of the cluster search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The selected clustering.
    pub clustering: KMeansResult,
    /// The selected number of clusters.
    pub k: usize,
    /// BIC score of every evaluated `k`, starting at `k = 1`.
    pub bic_scores: Vec<f64>,
}

impl SearchResult {
    /// The BIC score of the selected clustering.
    pub fn selected_bic(&self) -> f64 {
        self.bic_scores[self.k - 1]
    }
}

/// Derives the k-means seed of candidate `k` from the search's base
/// seed — `seed ⊕ k · 0x9E37_79B9_7F4A_7C15` (the 64-bit golden-ratio
/// multiplier, pinned). Every search path goes through this function; a
/// unit test pins its exact output so future edits cannot silently
/// change which restart wins (which would change every downstream
/// representative).
#[inline]
pub fn candidate_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Reusable buffers of the §III-F search: the shared k-means scratch
/// (labels, bounds, accumulators, memoized D²-seeding rows) plus the
/// per-candidate result/score accumulators. One scratch serves any
/// number of searches; every [`search_clusters_with`] call re-keys the
/// data-dependent state itself.
#[derive(Debug, Default)]
pub struct SearchScratch {
    kmeans: KMeansScratch,
}

impl SearchScratch {
    /// A fresh scratch (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs the §III-F search over `data`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn search_clusters(data: &PointMatrix, config: &SearchConfig) -> SearchResult {
    search_clusters_with(data, config, &mut SearchScratch::new())
}

/// Scratch-reusing variant of [`search_clusters`] for callers that run
/// many searches (the experiment sweeps): buffer capacities carry over
/// between calls, while data-dependent state (the D²-seeding cache) is
/// reset on entry. Results are bitwise those of [`search_clusters`].
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn search_clusters_with(
    data: &PointMatrix,
    config: &SearchConfig,
    scratch: &mut SearchScratch,
) -> SearchResult {
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    scratch.kmeans.reset_for_new_data();
    let hard_max = config.max_k.min(data.len());
    let mut results: Vec<KMeansResult> = Vec::new();
    let mut scores: Vec<f64> = Vec::new();
    let mut decreases = 0usize;
    for k in 1..=hard_max {
        let km_config = KMeansConfig::new(k)
            .with_seed(candidate_seed(config.seed, k))
            .with_init(config.init);
        let result = kmeans_best_of_with(data, &km_config, config.restarts, &mut scratch.kmeans);
        let score = bic_score(data, &result);
        let stop = match scores.last() {
            Some(&prev) if score < prev => {
                decreases += 1;
                decreases >= config.patience
            }
            Some(_) => {
                decreases = 0;
                false
            }
            None => false,
        };
        results.push(result);
        scores.push(score);
        if stop {
            break;
        }
    }
    // Threshold selection over the *finite* scores (k = n fits can be
    // -inf and must not poison the spread).
    let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    let chosen_k = if finite.is_empty() {
        1
    } else {
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        // Clamp so T = 1.0 still matches the maximum despite rounding.
        let cutoff = (min + config.threshold * (max - min)).min(max);
        scores
            .iter()
            .position(|&s| s.is_finite() && s >= cutoff)
            .map(|i| i + 1)
            .unwrap_or(1)
    };
    SearchResult {
        clustering: results.swap_remove(chosen_k - 1),
        k: chosen_k,
        bic_scores: scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[(f64, f64)]) -> PointMatrix {
        let mut pts = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..n_per {
                let a = (i as f64 + ci as f64 * 3.0) * 0.9;
                pts.push(vec![cx + a.sin() * 0.4, cy + a.cos() * 0.4]);
            }
        }
        PointMatrix::from_rows(pts)
    }

    #[test]
    fn finds_the_obvious_cluster_count() {
        let data = blobs(30, &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)]);
        let r = search_clusters(&data, &SearchConfig::default().with_seed(11));
        assert_eq!(r.k, 4, "bic_scores = {:?}", r.bic_scores);
    }

    #[test]
    fn single_blob_yields_few_clusters() {
        // A single box-shaped cloud: far fewer clusters than points.
        let data = PointMatrix::from_rows(
            (0..40)
                .map(|i| {
                    let u = ((i * 13) % 40) as f64 / 40.0;
                    let v = ((i * 29) % 40) as f64 / 40.0;
                    vec![5.0 + u * 0.8, 5.0 + v * 0.8]
                })
                .collect(),
        );
        let r = search_clusters(&data, &SearchConfig::default().with_seed(2));
        assert!(r.k <= 6, "k = {}", r.k);
    }

    #[test]
    fn lower_threshold_never_increases_k() {
        let data = blobs(25, &[(0.0, 0.0), (8.0, 0.0), (16.0, 0.0)]);
        let strict = search_clusters(&data, &SearchConfig::default().with_threshold(1.0));
        let loose = search_clusters(&data, &SearchConfig::default().with_threshold(0.2));
        assert!(loose.k <= strict.k);
    }

    #[test]
    fn respects_max_k() {
        let data = blobs(10, &[(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)]);
        let r = search_clusters(&data, &SearchConfig::default().with_max_k(2));
        assert!(r.k <= 2);
    }

    #[test]
    fn selected_bic_is_consistent() {
        let data = blobs(20, &[(0.0, 0.0), (30.0, 30.0)]);
        let r = search_clusters(&data, &SearchConfig::default());
        assert_eq!(r.selected_bic(), r.bic_scores[r.k - 1]);
        assert_eq!(r.clustering.k(), r.k);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(15, &[(0.0, 0.0), (10.0, 10.0)]);
        let a = search_clusters(&data, &SearchConfig::default().with_seed(99));
        let b = search_clusters(&data, &SearchConfig::default().with_seed(99));
        assert_eq!(a.k, b.k);
        assert_eq!(a.bic_scores, b.bic_scores);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let data = blobs(20, &[(0.0, 0.0), (12.0, 0.0), (0.0, 12.0)]);
        let config = SearchConfig::default().with_seed(5).with_restarts(8);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            runs.push(search_clusters(&data, &config));
        }
        megsim_exec::set_threads(0);
        for pair in runs.windows(2) {
            assert_eq!(pair[0].k, pair[1].k);
            assert_eq!(pair[0].bic_scores, pair[1].bic_scores);
            assert_eq!(pair[0].clustering, pair[1].clustering);
        }
    }

    #[test]
    fn single_restart_matches_plain_kmeans_search() {
        let data = blobs(15, &[(0.0, 0.0), (9.0, 9.0)]);
        let multi = search_clusters(&data, &SearchConfig::default().with_seed(3));
        let single = search_clusters(
            &data,
            &SearchConfig::default().with_seed(3).with_restarts(1),
        );
        // Restarts only ever improve (or tie) the per-k fit, so the
        // multi-restart search never selects a worse clustering at the
        // same k.
        assert!(multi.k >= 1 && single.k >= 1);
    }

    #[test]
    fn tiny_dataset_does_not_panic() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]);
        let r = search_clusters(&data, &SearchConfig::default());
        assert!(r.k >= 1);
    }

    #[test]
    fn candidate_seed_is_pinned() {
        // The exact derivation behind every per-k k-means stream:
        // seed ⊕ k · 0x9E37_79B9_7F4A_7C15. These literals must never
        // drift — a different derivation changes which restart wins for
        // every candidate and therefore every selected representative.
        assert_eq!(candidate_seed(0, 1), 0x9E37_79B9_7F4A_7C15);
        assert_eq!(candidate_seed(0, 2), 0x3C6E_F372_FE94_F82A);
        assert_eq!(candidate_seed(0, 3), 0xDAA6_6D2C_7DDF_743F);
        assert_eq!(candidate_seed(0, 4), 0x78DD_E6E5_FD29_F054);
        assert_eq!(candidate_seed(7, 1), 0x9E37_79B9_7F4A_7C12);
        assert_eq!(
            candidate_seed(0xFFFF_FFFF_FFFF_FFFF, 1),
            !0x9E37_79B9_7F4A_7C15u64
        );
    }

    #[test]
    fn scratch_reuse_across_searches_is_bitwise_neutral() {
        // One scratch serving searches over *different* datasets must
        // produce exactly what fresh-scratch searches produce — the
        // data-dependent seeding cache is re-keyed per call.
        let data_a = blobs(20, &[(0.0, 0.0), (15.0, 0.0)]);
        let data_b = blobs(15, &[(0.0, 0.0), (7.0, 7.0), (0.0, 14.0)]);
        let config = SearchConfig::default().with_seed(31);
        let mut scratch = SearchScratch::new();
        for data in [&data_a, &data_b, &data_a] {
            let warm = search_clusters_with(data, &config, &mut scratch);
            let cold = search_clusters(data, &config);
            assert_eq!(warm.k, cold.k);
            assert_eq!(warm.bic_scores, cold.bic_scores);
            assert_eq!(warm.clustering, cold.clustering);
        }
    }
}
