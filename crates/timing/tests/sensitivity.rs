//! Design-space sensitivity tests: the timing model must respond to
//! architectural parameters in the directions a real machine would —
//! the property that makes the design-space-exploration use case of the
//! paper's introduction meaningful.

use std::sync::Arc;

use megsim_funcsim::{FrameTrace, RenderConfig, Renderer};
use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Mat4, Vec2, Vec3};
use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::TextureDesc;
use megsim_mem::CacheConfig;
use megsim_timing::{FrameStats, Gpu, GpuConfig};

fn shaders() -> ShaderTable {
    let mut t = ShaderTable::new();
    t.add(ShaderProgram::vertex(0, "vs", 20));
    t.add(ShaderProgram::fragment(
        0,
        "fs",
        24,
        vec![TextureFilter::Bilinear],
    ));
    t
}

/// A busy frame: a grid of textured quads across the screen.
fn busy_frame() -> Frame {
    let v = |x: f32, y: f32, u: f32, w: f32| Vertex {
        position: Vec3::new(x, y, 0.0),
        normal: Vec3::new(0.0, 0.0, 1.0),
        uv: Vec2::new(u, w),
    };
    let mesh = Arc::new(Mesh::new(
        vec![
            v(-0.5, -0.5, 0.0, 0.0),
            v(0.5, -0.5, 1.0, 0.0),
            v(0.5, 0.5, 1.0, 1.0),
            v(-0.5, 0.5, 0.0, 1.0),
        ],
        vec![0, 1, 2, 0, 2, 3],
        0x40,
    ));
    let mut f = Frame::new();
    for gy in 0..6 {
        for gx in 0..6 {
            f.draws.push(DrawCall {
                mesh: Arc::clone(&mesh),
                transform: Mat4::translation(Vec3::new(
                    -0.8 + gx as f32 * 0.3,
                    -0.8 + gy as f32 * 0.3,
                    (gx + gy) as f32 * 0.02,
                )) * Mat4::scale(Vec3::splat(0.22)),
                vertex_shader: ShaderId(0),
                fragment_shader: ShaderId(0),
                texture: Some(TextureDesc::new(0, 256, 256, 4, 0x1000_0000)),
                blend: BlendMode::Opaque,
                depth_test: true,
            });
        }
    }
    f
}

fn simulate(config: GpuConfig) -> FrameStats {
    let renderer = Renderer::new(RenderConfig {
        viewport: config.viewport,
        mode: config.render_mode,
    });
    let trace: FrameTrace = renderer.render_frame(&busy_frame(), &shaders());
    let mut gpu = Gpu::new(config);
    // Warm-up frame + measured frame (steady-state caches).
    gpu.simulate_frame(&trace, &shaders());
    gpu.simulate_frame(&trace, &shaders())
}

fn base() -> GpuConfig {
    GpuConfig::small(512, 512)
}

#[test]
fn more_fragment_processors_reduce_cycles() {
    let mut narrow = base();
    narrow.fragment_processors = 1;
    let mut wide = base();
    wide.fragment_processors = 8;
    let n = simulate(narrow);
    let w = simulate(wide);
    assert!(
        w.cycles < n.cycles,
        "8 FPs {} vs 1 FP {}",
        w.cycles,
        n.cycles
    );
}

#[test]
fn wider_issue_reduces_cycles_when_alu_bound() {
    let mut scalar = base();
    scalar.fragment_issue_width = 1;
    scalar.vertex_issue_width = 1;
    let mut vliw = base();
    vliw.fragment_issue_width = 4;
    vliw.vertex_issue_width = 4;
    let s = simulate(scalar);
    let v = simulate(vliw);
    assert!(
        v.cycles <= s.cycles,
        "vliw {} vs scalar {}",
        v.cycles,
        s.cycles
    );
}

#[test]
fn bigger_texture_caches_cut_memory_traffic() {
    let mut small = base();
    small.texture_cache = CacheConfig::new("TextureCache", 1024, 64, 2, 1, 2);
    let mut large = base();
    large.texture_cache = CacheConfig::new("TextureCache", 64 * 1024, 64, 2, 1, 2);
    let s = simulate(small);
    let l = simulate(large);
    assert!(
        l.texture_cache.miss_ratio() < s.texture_cache.miss_ratio(),
        "large {} vs small {}",
        l.texture_cache.miss_ratio(),
        s.texture_cache.miss_ratio()
    );
    assert!(l.l2_accesses() <= s.l2_accesses());
}

#[test]
fn slower_dram_increases_cycles() {
    let fast = base();
    let mut slow = base();
    slow.dram.row_hit_latency = 200;
    slow.dram.row_miss_latency = 400;
    slow.dram.bytes_per_cycle = 1;
    let f = simulate(fast);
    let s = simulate(slow);
    assert!(
        s.cycles > f.cycles,
        "slow {} vs fast {}",
        s.cycles,
        f.cycles
    );
    // Access *counts* are timing-independent.
    assert_eq!(s.l2_accesses(), f.l2_accesses());
}

#[test]
fn heavier_shaders_execute_more_instructions_and_cycles() {
    let mut heavy_shaders = ShaderTable::new();
    heavy_shaders.add(ShaderProgram::vertex(0, "vs", 80));
    heavy_shaders.add(ShaderProgram::fragment(
        0,
        "fs",
        120,
        vec![TextureFilter::Bilinear],
    ));
    let config = base();
    let renderer = Renderer::new(RenderConfig {
        viewport: config.viewport,
        mode: config.render_mode,
    });
    let frame = busy_frame();
    let light_trace = renderer.render_frame(&frame, &shaders());
    let heavy_trace = renderer.render_frame(&frame, &heavy_shaders);
    let mut gpu_l = Gpu::new(config.clone());
    let mut gpu_h = Gpu::new(config);
    let light = gpu_l.simulate_frame(&light_trace, &shaders());
    let heavy = gpu_h.simulate_frame(&heavy_trace, &heavy_shaders);
    assert!(heavy.instructions > light.instructions);
    assert!(heavy.cycles > light.cycles);
}

#[test]
fn larger_tiles_mean_fewer_bin_entries() {
    let mut small_tiles = base();
    small_tiles.viewport = megsim_gfx::draw::Viewport::new(512, 512, 16);
    let big_tiles = base(); // 32x32
    let renderer_small = Renderer::new(RenderConfig {
        viewport: small_tiles.viewport,
        mode: small_tiles.render_mode,
    });
    let renderer_big = Renderer::new(RenderConfig {
        viewport: big_tiles.viewport,
        mode: big_tiles.render_mode,
    });
    let frame = busy_frame();
    let ts = renderer_small.render_frame(&frame, &shaders());
    let tb = renderer_big.render_frame(&frame, &shaders());
    assert!(
        ts.activity.tile_bin_entries > tb.activity.tile_bin_entries,
        "16px tiles {} vs 32px tiles {}",
        ts.activity.tile_bin_entries,
        tb.activity.tile_bin_entries
    );
}
