//! Golden pins for the workload generators: 128-bit content
//! fingerprints (via `megsim_core::frame_cache`) of selected frames of
//! every Table II benchmark at a fixed (scale, seed). Any change to the
//! generators' arithmetic, RNG draw order, mesh library, or draw-list
//! layout shows up here as a changed fingerprint — the workload
//! equivalent of the timing model's golden counter test.

use megsim_core::frame_cache::frame_fingerprint;
use megsim_workloads::suite;

const SCALE: f64 = 0.01;
const SEED: u64 = 42;

/// (alias, frame 0, mid frame, last frame) fingerprints at
/// `suite(0.01, 42)`. Regenerate by running this test with
/// `PRINT_GOLDEN=1 cargo test -q workload_fingerprints -- --nocapture`.
const GOLDEN: [(&str, u128, u128, u128); 8] = [
    (
        "asp",
        0xe6bd2ee31c7edb5124870a3146db05f1,
        0x7a1e32513ef10c38eaf0d9b08b2d9e09,
        0xf17d942f3f2f02b535584117bcd0f52b,
    ),
    (
        "bbr1",
        0x972e2174fe996ac55557eabda56a100d,
        0x9cd8f5e5dc55a90b8a6f42ace07fd9d4,
        0xd553cb08bc845a5e005eee64b80d1209,
    ),
    (
        "bbr2",
        0xc70c913ff91736c5b7f7642c0ea87677,
        0x110b5218a73d936e3847c5b9545c21a3,
        0x090bc79eb5a01dddc4bfe599ca08c522,
    ),
    (
        "hcr",
        0x9132a2a24d1c9d198d0f6338e523daca,
        0x420bdf62857efc4328082273da671b1f,
        0x0f2a2de2c1f130d2c8a39fadb4fcfc2a,
    ),
    (
        "hwh",
        0x21efeef5ac13d4e80f5b4afb32536260,
        0x5dcb57c954e0ec90321f5b59c076c316,
        0x6cbc51a166bbb6df54d8fb7d8b3e59e4,
    ),
    (
        "jjo",
        0x1e730b8e4b241ba491d0eab7fb826fbf,
        0x6894d79d7d0a8eae565135260e5177f7,
        0x83b721b599edb38b4c00705c215efcfd,
    ),
    (
        "pvz",
        0x58e97a7fd916f96244d1c564f0c10ba0,
        0xe15619370d5ff3b9df6604a38e9ab8d2,
        0xe29a4ee1477d07c9d26c9ced60d7b8dd,
    ),
    (
        "spd",
        0x6470cf95574837ebb8c939e59f2b51c6,
        0xb909b4577ed6bdc1eee7c298bd1de777,
        0xedc156754464373059bfab801678f818,
    ),
];

#[test]
fn workload_fingerprints_match_golden() {
    let workloads = suite(SCALE, SEED);
    let print = std::env::var_os("PRINT_GOLDEN").is_some();
    for (w, (alias, first, mid, last)) in workloads.iter().zip(GOLDEN) {
        assert_eq!(w.alias, alias, "suite order changed");
        let n = w.frames();
        let got = (
            frame_fingerprint(&w.frame(0)),
            frame_fingerprint(&w.frame(n / 2)),
            frame_fingerprint(&w.frame(n - 1)),
        );
        if print {
            println!(
                "    (\"{alias}\", {:#034x}, {:#034x}, {:#034x}),",
                got.0, got.1, got.2
            );
            continue;
        }
        assert_eq!(got.0, first, "{alias} frame 0 fingerprint drifted");
        assert_eq!(got.1, mid, "{alias} frame {} fingerprint drifted", n / 2);
        assert_eq!(got.2, last, "{alias} frame {} fingerprint drifted", n - 1);
    }
}

/// Batch generation fingerprints equal per-frame generation — the
/// parallel fan-out changes scheduling, never content.
#[test]
fn batch_generation_matches_per_frame_fingerprints() {
    for w in suite(SCALE, SEED) {
        let batch = w.generate_frames();
        assert_eq!(batch.len(), w.frames());
        for (i, f) in batch.iter().enumerate() {
            assert_eq!(
                frame_fingerprint(f),
                frame_fingerprint(&w.frame(i)),
                "{} frame {i}",
                w.alias
            );
        }
    }
}
