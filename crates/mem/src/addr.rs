//! Simulated physical address-space layout.
//!
//! The 1 GiB main memory of Table I is partitioned into fixed regions so
//! the different producers (vertex buffers, textures, the Tiling Engine's
//! polygon lists, the frame buffer) generate disjoint, realistic address
//! streams without a full allocator.

/// Region layout of the simulated 1 GiB memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSpace;

impl AddressSpace {
    /// Vertex buffers live here.
    pub const VERTEX_BASE: u64 = 0x0000_0000;
    /// Texture data lives here.
    pub const TEXTURE_BASE: u64 = 0x1000_0000;
    /// Scene buffer (polygon lists written by the Tiling Engine).
    pub const SCENE_BUFFER_BASE: u64 = 0x2000_0000;
    /// Frame buffer (final colors flushed per tile).
    pub const FRAMEBUFFER_BASE: u64 = 0x3000_0000;
    /// Depth buffer in memory (used by immediate-mode rendering; TBR
    /// keeps depth on-chip).
    pub const DEPTH_BASE: u64 = 0x3900_0000;
    /// Total simulated memory size (Table I: 1 GiB).
    pub const SIZE: u64 = 1 << 30;

    /// Bytes of one polygon-list entry in the scene buffer.
    ///
    /// Matches the Triangle & Tile queue entry size of Table I (388 B
    /// holds a triangle's post-transform attributes; a list entry stores
    /// a compact reference plus state, modeled as 16 B).
    pub const POLYGON_LIST_ENTRY_BYTES: u64 = 16;

    /// Address of the `n`-th polygon-list entry of tile `tile_index`.
    ///
    /// Each tile owns a fixed-size bin region; `ENTRIES_PER_TILE_BIN`
    /// entries wrap around (real hardware chains additional blocks — the
    /// wrap keeps addresses bounded while preserving locality). The
    /// per-tile stride is skewed by one cache line so bins of different
    /// tiles spread across cache sets instead of aliasing onto one (the
    /// same trick drivers use when laying out tile lists).
    pub fn polygon_list_entry(tile_index: u32, n: u64) -> u64 {
        const ENTRIES_PER_TILE_BIN: u64 = 1024;
        const BIN_STRIDE: u64 = ENTRIES_PER_TILE_BIN * AddressSpace::POLYGON_LIST_ENTRY_BYTES + 64;
        let slot = n % ENTRIES_PER_TILE_BIN;
        Self::SCENE_BUFFER_BASE
            + u64::from(tile_index) * BIN_STRIDE
            + slot * Self::POLYGON_LIST_ENTRY_BYTES
    }

    /// Frame-buffer address of pixel `(x, y)` for a `width`-pixel target
    /// (4 bytes per pixel, double-buffer parity selected by `frame_parity`).
    pub fn framebuffer_pixel(x: u32, y: u32, width: u32, frame_parity: u64) -> u64 {
        let buf = (frame_parity % 2) * 0x0080_0000;
        Self::FRAMEBUFFER_BASE + buf + (u64::from(y) * u64::from(width) + u64::from(x)) * 4
    }

    /// Depth-buffer address of pixel `(x, y)` (4-byte depth, single
    /// buffer — depth is not scanned out).
    pub fn depth_pixel(x: u32, y: u32, width: u32) -> u64 {
        Self::DEPTH_BASE + (u64::from(y) * u64::from(width) + u64::from(x)) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the layout invariant
    fn regions_are_disjoint_and_ordered() {
        assert!(AddressSpace::VERTEX_BASE < AddressSpace::TEXTURE_BASE);
        assert!(AddressSpace::TEXTURE_BASE < AddressSpace::SCENE_BUFFER_BASE);
        assert!(AddressSpace::SCENE_BUFFER_BASE < AddressSpace::FRAMEBUFFER_BASE);
        assert!(AddressSpace::FRAMEBUFFER_BASE < AddressSpace::SIZE);
    }

    #[test]
    fn polygon_list_entries_are_contiguous_within_a_tile() {
        let a = AddressSpace::polygon_list_entry(3, 0);
        let b = AddressSpace::polygon_list_entry(3, 1);
        assert_eq!(b - a, AddressSpace::POLYGON_LIST_ENTRY_BYTES);
    }

    #[test]
    fn polygon_list_bins_do_not_collide_across_tiles() {
        let end_of_t0 = AddressSpace::polygon_list_entry(0, 1023);
        let start_of_t1 = AddressSpace::polygon_list_entry(1, 0);
        assert!(start_of_t1 > end_of_t0);
    }

    #[test]
    fn polygon_list_wraps_within_bin() {
        assert_eq!(
            AddressSpace::polygon_list_entry(0, 0),
            AddressSpace::polygon_list_entry(0, 1024)
        );
    }

    #[test]
    fn polygon_list_bins_spread_across_cache_sets() {
        // With 256-set caches (32 KiB, 64 B lines, 2-way), consecutive
        // tiles must land in different sets — the skewed stride
        // guarantees it.
        let set_of = |addr: u64| (addr / 64) % 256;
        let distinct: std::collections::HashSet<u64> = (0..256u32)
            .map(|t| set_of(AddressSpace::polygon_list_entry(t, 0)))
            .collect();
        assert!(distinct.len() >= 128, "sets used: {}", distinct.len());
    }

    #[test]
    fn framebuffer_double_buffering_alternates() {
        let a = AddressSpace::framebuffer_pixel(0, 0, 1440, 0);
        let b = AddressSpace::framebuffer_pixel(0, 0, 1440, 1);
        let c = AddressSpace::framebuffer_pixel(0, 0, 1440, 2);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn depth_region_is_disjoint_from_framebuffer() {
        let fb_top = AddressSpace::framebuffer_pixel(1439, 719, 1440, 1);
        assert!(AddressSpace::DEPTH_BASE > fb_top);
        assert_eq!(
            AddressSpace::depth_pixel(1, 0, 100) - AddressSpace::depth_pixel(0, 0, 100),
            4
        );
    }

    #[test]
    fn framebuffer_rows_are_pitch_apart() {
        let a = AddressSpace::framebuffer_pixel(0, 0, 100, 0);
        let b = AddressSpace::framebuffer_pixel(0, 1, 100, 0);
        assert_eq!(b - a, 400);
    }
}
