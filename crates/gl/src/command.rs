//! The OpenGL-style command vocabulary.
//!
//! TEAPOT's first component is an *OpenGL trace generator* that
//! intercepts the GL commands an application issues and stores them in
//! a trace file; the functional simulator then replays that trace. This
//! module defines the equivalent command vocabulary for this
//! reproduction: resource creation, state binding and draw commands,
//! with explicit frame boundaries.

use serde::{Deserialize, Serialize};

use megsim_gfx::draw::BlendMode;
use megsim_gfx::geometry::Mesh;
use megsim_gfx::math::Mat4;
use megsim_gfx::shader::{ShaderId, ShaderProgram};
use megsim_gfx::texture::TextureDesc;

/// Identifies a buffer object (mesh) within a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferId(pub u32);

/// One recorded command.
///
/// The vocabulary follows the GL state-machine style: resources are
/// created once, state is bound, and draws consume the current state —
/// exactly the structure a real intercepted trace has (and what makes
/// traces much smaller than per-frame scene dumps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Uploads an indexed mesh (glBufferData of vertices + indices).
    BufferData {
        /// Stream-local buffer name.
        id: BufferId,
        /// The mesh payload.
        mesh: Mesh,
    },
    /// Registers a texture (glTexImage2D metadata).
    TexImage(TextureDesc),
    /// Registers a shader program (glLinkProgram result).
    ProgramData(ShaderProgram),
    /// Selects the active vertex/fragment shader pair (glUseProgram).
    UseProgram {
        /// Vertex shader of the pair.
        vertex: ShaderId,
        /// Fragment shader of the pair.
        fragment: ShaderId,
    },
    /// Binds a texture, or unbinds with `None` (glBindTexture).
    BindTexture(Option<megsim_gfx::texture::TextureId>),
    /// Sets the model-view-projection matrix (glUniformMatrix4fv).
    UniformMatrix(Mat4),
    /// Sets the blend mode (glBlendFunc / glDisable(GL_BLEND)).
    Blend(BlendMode),
    /// Enables or disables depth testing (glEnable(GL_DEPTH_TEST)).
    DepthTest(bool),
    /// Draws the bound buffer with the current state (glDrawElements).
    Draw(BufferId),
    /// Ends the current frame (eglSwapBuffers).
    SwapBuffers,
}

impl Command {
    /// A compact opcode used by the binary codec.
    pub const fn opcode(&self) -> u8 {
        match self {
            Command::BufferData { .. } => 0,
            Command::TexImage(_) => 1,
            Command::ProgramData(_) => 2,
            Command::UseProgram { .. } => 3,
            Command::BindTexture(_) => 4,
            Command::UniformMatrix(_) => 5,
            Command::Blend(_) => 6,
            Command::DepthTest(_) => 7,
            Command::Draw(_) => 8,
            Command::SwapBuffers => 9,
        }
    }
}

/// A recorded command stream: a prelude of resource uploads followed by
/// per-frame state/draw commands separated by [`Command::SwapBuffers`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommandStream {
    /// Commands in issue order.
    pub commands: Vec<Command>,
}

impl CommandStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames (SwapBuffers commands).
    pub fn frame_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::SwapBuffers))
            .count()
    }

    /// Number of draw commands.
    pub fn draw_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Draw(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_draw_counting() {
        let mut s = CommandStream::new();
        s.commands.push(Command::DepthTest(true));
        s.commands.push(Command::Draw(BufferId(0)));
        s.commands.push(Command::Draw(BufferId(0)));
        s.commands.push(Command::SwapBuffers);
        s.commands.push(Command::Draw(BufferId(0)));
        s.commands.push(Command::SwapBuffers);
        assert_eq!(s.frame_count(), 2);
        assert_eq!(s.draw_count(), 3);
    }

    #[test]
    fn opcodes_are_distinct() {
        use std::collections::HashSet;
        let cmds = [
            Command::SwapBuffers,
            Command::DepthTest(true),
            Command::Blend(BlendMode::Opaque),
            Command::Draw(BufferId(0)),
            Command::BindTexture(None),
            Command::UniformMatrix(Mat4::IDENTITY),
            Command::UseProgram {
                vertex: ShaderId(0),
                fragment: ShaderId(0),
            },
        ];
        let ops: HashSet<u8> = cmds.iter().map(Command::opcode).collect();
        assert_eq!(ops.len(), cmds.len());
    }
}
