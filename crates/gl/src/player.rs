//! Replays a command stream into frames — the role of the GL state
//! machine inside the functional simulator that consumes TEAPOT traces.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::Mesh;
use megsim_gfx::math::Mat4;
use megsim_gfx::shader::{ShaderId, ShaderTable};
use megsim_gfx::texture::{TextureDesc, TextureId};

use crate::command::{BufferId, Command, CommandStream};

/// Error produced while replaying a malformed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlayError {
    /// A draw referenced a buffer that was never uploaded.
    UnknownBuffer(BufferId),
    /// A bind referenced a texture that was never uploaded.
    UnknownTexture(TextureId),
    /// A draw was issued before any UseProgram.
    NoProgramBound,
    /// Program IDs were not uploaded contiguously per kind.
    BadProgramUpload,
}

impl fmt::Display for PlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlayError::UnknownBuffer(id) => write!(f, "draw references unknown buffer {}", id.0),
            PlayError::UnknownTexture(id) => write!(f, "bind references unknown texture {}", id.0),
            PlayError::NoProgramBound => write!(f, "draw issued with no program bound"),
            PlayError::BadProgramUpload => write!(f, "program upload order is invalid"),
        }
    }
}

impl std::error::Error for PlayError {}

/// Result of a replay: the reconstructed shader library and frames.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Shader programs uploaded in the stream's prelude.
    pub shaders: ShaderTable,
    /// Reconstructed frames in order.
    pub frames: Vec<Frame>,
}

/// Incremental GL state machine: commands are fed one at a time and
/// whole frames come out on each [`Command::SwapBuffers`].
///
/// This is the replay engine behind both the materialized [`play`] and
/// the streaming [`crate::stream::FrameIter`] — one implementation, so
/// streamed and materialized replay are identical by construction. The
/// player retains only the resource tables (meshes, textures, shaders —
/// state any GL replay must keep, shared via [`Arc`] with the frames it
/// emits) plus the frame under construction, never the command history.
#[derive(Debug)]
pub struct StreamPlayer {
    shaders: ShaderTable,
    buffers: HashMap<BufferId, Arc<Mesh>>,
    textures: HashMap<TextureId, TextureDesc>,
    current: Frame,
    // GL default state.
    program: Option<(ShaderId, ShaderId)>,
    texture: Option<TextureId>,
    matrix: Mat4,
    blend: BlendMode,
    depth: bool,
}

impl Default for StreamPlayer {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamPlayer {
    /// A player in the GL default state with empty resource tables.
    pub fn new() -> Self {
        Self {
            shaders: ShaderTable::new(),
            buffers: HashMap::new(),
            textures: HashMap::new(),
            current: Frame::new(),
            program: None,
            texture: None,
            matrix: Mat4::IDENTITY,
            blend: BlendMode::Opaque,
            depth: false,
        }
    }

    /// The shader programs uploaded so far.
    pub fn shaders(&self) -> &ShaderTable {
        &self.shaders
    }

    /// Consumes the player, returning its shader library.
    pub fn into_shaders(self) -> ShaderTable {
        self.shaders
    }

    /// Processes one command; returns the completed frame when the
    /// command is a [`Command::SwapBuffers`].
    ///
    /// # Errors
    ///
    /// Returns a [`PlayError`] when the command references resources
    /// that were never uploaded or draws without a bound program.
    pub fn feed(&mut self, cmd: Command) -> Result<Option<Frame>, PlayError> {
        match cmd {
            Command::BufferData { id, mesh } => {
                self.buffers.insert(id, Arc::new(mesh));
            }
            Command::TexImage(desc) => {
                self.textures.insert(desc.id, desc);
            }
            Command::ProgramData(p) => {
                let expected = match p.kind {
                    megsim_gfx::shader::ShaderKind::Vertex => self.shaders.vertex_count(),
                    megsim_gfx::shader::ShaderKind::Fragment => self.shaders.fragment_count(),
                };
                if p.id.0 as usize != expected {
                    return Err(PlayError::BadProgramUpload);
                }
                self.shaders.add(p);
            }
            Command::UseProgram { vertex, fragment } => self.program = Some((vertex, fragment)),
            Command::BindTexture(t) => {
                if let Some(id) = t {
                    if !self.textures.contains_key(&id) {
                        return Err(PlayError::UnknownTexture(id));
                    }
                }
                self.texture = t;
            }
            Command::UniformMatrix(m) => self.matrix = m,
            Command::Blend(b) => self.blend = b,
            Command::DepthTest(d) => self.depth = d,
            Command::Draw(buffer) => {
                let mesh = self
                    .buffers
                    .get(&buffer)
                    .ok_or(PlayError::UnknownBuffer(buffer))?;
                let (vertex_shader, fragment_shader) =
                    self.program.ok_or(PlayError::NoProgramBound)?;
                self.current.draws.push(DrawCall {
                    mesh: Arc::clone(mesh),
                    transform: self.matrix,
                    vertex_shader,
                    fragment_shader,
                    texture: self.texture.map(|id| self.textures[&id]),
                    blend: self.blend,
                    depth_test: self.depth,
                });
            }
            Command::SwapBuffers => {
                return Ok(Some(std::mem::take(&mut self.current)));
            }
        }
        Ok(None)
    }
}

/// Replays a materialized stream.
///
/// # Errors
///
/// Returns a [`PlayError`] when the stream references resources it never
/// uploaded or draws without a bound program.
pub fn play(stream: &CommandStream) -> Result<Replay, PlayError> {
    let mut player = StreamPlayer::new();
    let mut frames = Vec::new();
    for cmd in &stream.commands {
        if let Some(frame) = player.feed(cmd.clone())? {
            frames.push(frame);
        }
    }
    Ok(Replay {
        shaders: player.into_shaders(),
        frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::record_sequence;
    use megsim_gfx::geometry::Vertex;
    use megsim_gfx::math::Vec3;
    use megsim_gfx::shader::{ShaderProgram, TextureFilter};

    fn shader_table() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "v0", 8));
        t.add(ShaderProgram::vertex(1, "v1", 16));
        t.add(ShaderProgram::fragment(
            0,
            "f0",
            6,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn sample_frames() -> Vec<Frame> {
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.4, -0.4, 0.0)),
                Vertex::at(Vec3::new(0.4, -0.4, 0.0)),
                Vertex::at(Vec3::new(0.0, 0.4, 0.0)),
            ],
            vec![0, 1, 2],
            0x80,
        ));
        (0..3)
            .map(|i| {
                let mut f = Frame::new();
                for j in 0..=i {
                    f.draws.push(DrawCall {
                        mesh: Arc::clone(&mesh),
                        transform: Mat4::translation(Vec3::new(j as f32 * 0.1, 0.0, 0.0)),
                        vertex_shader: ShaderId(j as u32 % 2),
                        fragment_shader: ShaderId(0),
                        texture: (j % 2 == 0).then(|| TextureDesc::new(0, 64, 64, 4, 0x1000)),
                        blend: if j % 2 == 0 {
                            BlendMode::Opaque
                        } else {
                            BlendMode::AlphaBlend
                        },
                        depth_test: true,
                    });
                }
                f
            })
            .collect()
    }

    fn assert_frames_equal(a: &[Frame], b: &[Frame]) {
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(b) {
            assert_eq!(fa.draws.len(), fb.draws.len());
            for (da, db) in fa.draws.iter().zip(&fb.draws) {
                assert_eq!(*da.mesh, *db.mesh);
                assert_eq!(da.transform, db.transform);
                assert_eq!(da.vertex_shader, db.vertex_shader);
                assert_eq!(da.fragment_shader, db.fragment_shader);
                assert_eq!(da.texture, db.texture);
                assert_eq!(da.blend, db.blend);
                assert_eq!(da.depth_test, db.depth_test);
            }
        }
    }

    #[test]
    fn record_play_roundtrip_preserves_frames() {
        let frames = sample_frames();
        let shaders = shader_table();
        let stream = record_sequence(&shaders, &frames);
        let replay = play(&stream).expect("valid stream");
        assert_eq!(replay.shaders.vertex_count(), 2);
        assert_eq!(replay.shaders.fragment_count(), 1);
        assert_frames_equal(&frames, &replay.frames);
    }

    #[test]
    fn draw_without_program_is_rejected() {
        let mut s = CommandStream::new();
        s.commands.push(Command::BufferData {
            id: BufferId(0),
            mesh: Mesh::new(vec![Vertex::at(Vec3::ZERO); 3], vec![0, 1, 2], 0),
        });
        s.commands.push(Command::Draw(BufferId(0)));
        assert_eq!(play(&s).unwrap_err(), PlayError::NoProgramBound);
    }

    #[test]
    fn unknown_buffer_is_rejected() {
        let mut s = CommandStream::new();
        s.commands
            .push(Command::ProgramData(ShaderProgram::vertex(0, "v", 1)));
        s.commands
            .push(Command::ProgramData(ShaderProgram::fragment(
                0,
                "f",
                1,
                vec![],
            )));
        s.commands.push(Command::UseProgram {
            vertex: ShaderId(0),
            fragment: ShaderId(0),
        });
        s.commands.push(Command::Draw(BufferId(7)));
        let err = play(&s).unwrap_err();
        assert_eq!(err, PlayError::UnknownBuffer(BufferId(7)));
    }

    #[test]
    fn unknown_texture_is_rejected() {
        let mut s = CommandStream::new();
        s.commands.push(Command::BindTexture(Some(TextureId(3))));
        let err = play(&s).unwrap_err();
        assert_eq!(err, PlayError::UnknownTexture(TextureId(3)));
    }

    #[test]
    fn non_contiguous_program_upload_is_rejected() {
        let mut s = CommandStream::new();
        s.commands
            .push(Command::ProgramData(ShaderProgram::vertex(1, "v", 1)));
        assert_eq!(play(&s).unwrap_err(), PlayError::BadProgramUpload);
    }
}
