//! Golden round-trip tests over a checked-in `MGLT` corpus.
//!
//! One small trace per Table II benchmark lives under `tests/data/`.
//! The corpus pins the on-disk format: decoding it, re-encoding it, and
//! re-recording the same workload must all agree byte for byte. Any
//! codec change that alters the wire format fails here and forces a
//! [`FORMAT_VERSION`] bump plus corpus regeneration (run the `#[ignore]`
//! `regenerate_corpus` test).

use std::fs;
use std::path::PathBuf;

use megsim_gl::{
    decode, encode, encode_v2, play, record_sequence, FORMAT_VERSION, FORMAT_VERSION_V2,
};
use megsim_workloads::{build, BENCHMARKS};

/// Corpus parameters: small enough to keep the files a few KiB each,
/// large enough to exercise every command kind (uploads, state changes,
/// draws, swaps).
const SCALE: f64 = 0.002;
const SEED: u64 = 42;
const FRAMES: usize = 4;

fn corpus_path(alias: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(format!("{alias}.mglt"))
}

fn corpus_path_v2(alias: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/v2")
        .join(format!("{alias}.mglt"))
}

fn record_alias(alias: &str) -> (Vec<megsim_gfx::draw::Frame>, bytes::Bytes) {
    let info = BENCHMARKS
        .iter()
        .find(|b| b.alias == alias)
        .expect("known alias");
    let w = build(info, SCALE, SEED);
    let frames: Vec<_> = w.iter_frames().take(FRAMES).collect();
    let stream = record_sequence(w.shaders(), &frames);
    (frames, encode(&stream))
}

/// The format version the corpus was generated with. A bump without
/// regenerating the corpus is caught here before the byte comparison
/// produces a confusing diff.
#[test]
fn corpus_matches_current_format_version() {
    assert_eq!(FORMAT_VERSION, 1, "bump => regenerate tests/data corpus");
    assert_eq!(
        FORMAT_VERSION_V2, 2,
        "bump => regenerate tests/data/v2 corpus"
    );
    for b in BENCHMARKS {
        for (path, expected) in [
            (corpus_path(&b.alias), FORMAT_VERSION),
            (corpus_path_v2(&b.alias), FORMAT_VERSION_V2),
        ] {
            let bytes = fs::read(&path).expect("corpus file present");
            assert_eq!(&bytes[..4], b"MGLT", "{}: magic", b.alias);
            let version = u16::from_le_bytes([bytes[4], bytes[5]]);
            assert_eq!(version, expected, "{}: header version", b.alias);
        }
    }
}

/// Decode corpus → re-encode → identical bytes (canonical encoding),
/// and a fresh recording of the same workload produces the same trace.
#[test]
fn corpus_roundtrips_byte_identical() {
    for b in BENCHMARKS {
        let golden = fs::read(corpus_path(&b.alias)).expect("corpus file present");
        let stream = decode(&golden).expect("corpus decodes");
        assert_eq!(
            encode(&stream).as_ref(),
            golden.as_slice(),
            "{}: re-encode is not byte-identical",
            b.alias
        );
        let (_, fresh) = record_alias(&b.alias);
        assert_eq!(
            fresh.as_ref(),
            golden.as_slice(),
            "{}: fresh recording drifted from corpus",
            b.alias
        );
    }
}

/// The varint v2 corpus decodes to exactly the same command stream as
/// the v1 corpus, re-encodes byte-identically (canonical varints), and
/// matches a fresh recording — while staying at least 25% smaller than
/// the v1 bytes on every benchmark.
#[test]
fn v2_corpus_roundtrips_byte_identical_and_compact() {
    for b in BENCHMARKS {
        let golden_v1 = fs::read(corpus_path(&b.alias)).expect("v1 corpus present");
        let golden_v2 = fs::read(corpus_path_v2(&b.alias)).expect("v2 corpus present");
        let from_v1 = decode(&golden_v1).expect("v1 corpus decodes");
        let from_v2 = decode(&golden_v2).expect("v2 corpus decodes");
        assert_eq!(
            from_v1, from_v2,
            "{}: wire versions decode to different streams",
            b.alias
        );
        assert_eq!(
            encode_v2(&from_v2).as_ref(),
            golden_v2.as_slice(),
            "{}: v2 re-encode is not byte-identical",
            b.alias
        );
        assert!(
            golden_v2.len() * 4 <= golden_v1.len() * 3,
            "{}: v2 ({} bytes) is not >=25% smaller than v1 ({} bytes)",
            b.alias,
            golden_v2.len(),
            golden_v1.len()
        );
    }
}

/// Cross-version round trip: decode v1 → encode v2 → decode → the same
/// command stream (and back the other way). Transcoding between wire
/// versions is lossless in both directions.
#[test]
fn cross_version_transcode_is_lossless() {
    for b in BENCHMARKS {
        let golden = fs::read(corpus_path(&b.alias)).expect("corpus file present");
        let stream = decode(&golden).expect("corpus decodes");
        let via_v2 = decode(&encode_v2(&stream)).expect("transcoded v2 decodes");
        assert_eq!(stream, via_v2, "{}: v1 -> v2 -> decode drifted", b.alias);
        let back_to_v1 = encode(&via_v2);
        assert_eq!(
            back_to_v1.as_ref(),
            golden.as_slice(),
            "{}: v2 -> v1 did not reproduce the golden bytes",
            b.alias
        );
    }
}

/// Replaying the corpus reproduces the original workload frames.
#[test]
fn corpus_replays_to_original_frames() {
    for b in BENCHMARKS {
        let golden = fs::read(corpus_path(&b.alias)).expect("corpus file present");
        let stream = decode(&golden).expect("corpus decodes");
        let replay = play(&stream).expect("corpus plays");
        let (frames, _) = record_alias(&b.alias);
        assert_eq!(replay.frames.len(), frames.len(), "{}", b.alias);
        for (i, (orig, back)) in frames.iter().zip(&replay.frames).enumerate() {
            assert_eq!(orig.draws.len(), back.draws.len(), "{} frame {i}", b.alias);
            for (a, bd) in orig.draws.iter().zip(&back.draws) {
                assert_eq!(&*a.mesh, &*bd.mesh, "{} frame {i}", b.alias);
                assert_eq!(a.transform, bd.transform, "{} frame {i}", b.alias);
                assert_eq!(a.vertex_shader, bd.vertex_shader, "{} frame {i}", b.alias);
                assert_eq!(
                    a.fragment_shader, bd.fragment_shader,
                    "{} frame {i}",
                    b.alias
                );
                assert_eq!(a.texture, bd.texture, "{} frame {i}", b.alias);
                assert_eq!(a.blend, bd.blend, "{} frame {i}", b.alias);
                assert_eq!(a.depth_test, bd.depth_test, "{} frame {i}", b.alias);
            }
        }
    }
}

/// Rewrites the corpus from the current codec. Run after an intentional
/// format change (with a `FORMAT_VERSION` bump):
/// `cargo test -p megsim-gl --test golden_roundtrip -- --ignored`
#[test]
#[ignore = "regenerates tests/data — run only after an intentional format change"]
fn regenerate_corpus() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    fs::create_dir_all(dir.join("v2")).expect("create corpus dirs");
    for b in BENCHMARKS {
        let (_, bytes) = record_alias(&b.alias);
        fs::write(corpus_path(&b.alias), &bytes).expect("write corpus file");
        let stream = decode(&bytes).expect("self-produced trace decodes");
        fs::write(corpus_path_v2(&b.alias), encode_v2(&stream)).expect("write v2 corpus file");
    }
}
