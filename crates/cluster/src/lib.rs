//! # megsim-cluster
//!
//! Clustering engine of the MEGsim reproduction: Lloyd's k-means with
//! k-means++ initialization (paper §III-E), BIC scoring in the
//! Pelleg/Moore x-means formulation the paper cites (Eq. 5–6), and the
//! BIC-threshold search loop of §III-F that picks the number of
//! clusters.
//!
//! Observations live in a contiguous row-major [`PointMatrix`] so the
//! distance kernels stream cache lines instead of pointer-chasing
//! per-row allocations, and the heavy stages (label assignment on large
//! inputs, multi-seed restarts) fan out on the deterministic
//! `megsim-exec` worker pool — results are bit-identical at any thread
//! count.
//!
//! ```
//! use megsim_cluster::{search_clusters, PointMatrix, SearchConfig};
//!
//! // Two obvious groups of 1-D points.
//! let data = PointMatrix::from_rows(
//!     (0..20)
//!         .map(|i| vec![if i % 2 == 0 { 0.0 } else { 100.0 } + (i as f64) * 0.1])
//!         .collect(),
//! );
//! let found = search_clusters(&data, &SearchConfig::default());
//! assert_eq!(found.k, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bic;
pub mod kmeans;
/// The original (seed) clustering engine, retained verbatim as the
/// bit-exactness oracle and benchmark baseline for the bound-pruned
/// fast path.
#[cfg(any(test, feature = "reference"))]
pub mod kmeans_reference;
pub mod matrix;
pub mod search;
pub mod silhouette;
pub mod stream;

pub use bic::bic_score;
pub use kmeans::{
    euclidean_distance, kmeans, kmeans_best_of, restart_seed, squared_distance, InitMethod,
    KMeansConfig, KMeansResult,
};
#[cfg(any(test, feature = "reference"))]
pub use kmeans_reference::ReferenceKMeans;
pub use matrix::{PointMatrix, SoaPoints};
pub use search::{candidate_seed, search_clusters, SearchConfig, SearchResult, SearchScratch};
pub use silhouette::{
    best_by_silhouette, silhouette_score, try_best_by_silhouette, try_best_by_silhouette_with,
    try_sampled_silhouette_score, try_silhouette_score, SilhouetteError, SilhouetteSample,
};
pub use stream::{probe_seed, reservoir_seed, StreamClusterer, StreamConfig, StreamOutcome};
