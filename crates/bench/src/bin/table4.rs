//! Prints Table IV (MEGsim vs random sub-sampling at equal accuracy).
use megsim_bench::{compute_suite, Context, ExperimentArgs};
use megsim_bench::experiments::table4;

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    print!("{}", table4(&data, &ctx.megsim, ctx.args.seeds, ctx.args.trials));
}
