//! The persistent disk tier is, like the memory tier above it, a pure
//! wall-clock optimization: results must be **bit-identical** with the
//! store attached or not, warm or cold, corrupted or pristine — and a
//! disk-warm re-run must be dramatically faster than computing.
//!
//! Everything lives in ONE `#[test]` because the attached store, the
//! cache-enabled flag and the tier counters are process-global.

use std::time::Instant;

use megsim_core::evaluate::{characterize_sequence, simulate_sequence};
use megsim_core::frame_cache;
use megsim_core::pipeline::MegsimConfig;
use megsim_timing::{FrameStats, GpuConfig};
use megsim_workloads::by_alias;

/// Both heavy passes, flattened for exact comparison.
#[derive(PartialEq, Debug)]
struct Artifacts {
    features: Vec<f64>,
    per_frame: Vec<FrameStats>,
}

fn run_campaign() -> Artifacts {
    let workload = by_alias("pvz", 0.01, 42).expect("known alias"); // 50 frames
    let gpu = GpuConfig::small(192, 192);
    let config = MegsimConfig::default();
    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
    let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);
    Artifacts {
        features: matrix.rows.as_slice().to_vec(),
        per_frame,
    }
}

fn unique_temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("megsim_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_tier_is_transparent_fast_and_corruption_tolerant() {
    let dir = unique_temp_dir("t1");
    frame_cache::set_enabled(true);

    // --- Cold run: everything computes, results are written behind.
    frame_cache::set_store_dir(&dir).expect("store opens on a fresh dir");
    frame_cache::clear();
    let t0 = Instant::now();
    let cold = run_campaign();
    let cold_secs = t0.elapsed().as_secs_f64();
    let report = frame_cache::report();
    assert_eq!(report.activity_disk_hits + report.stats_disk_hits, 0);
    assert!(report.activity_misses > 0 && report.stats_misses > 0);
    let sealed = frame_cache::flush_store().expect("flush");
    assert!(sealed > 0, "cold run must persist its computed results");

    // --- Warm-disk run: a fresh process is simulated by dropping the
    // memory tier and reopening the store from its files.
    frame_cache::detach_store();
    frame_cache::set_store_dir(&dir).expect("store reopens");
    frame_cache::clear();
    let t1 = Instant::now();
    let warm = run_campaign();
    let warm_secs = t1.elapsed().as_secs_f64();
    assert_eq!(cold, warm, "disk-served results diverged from computed");
    let report = frame_cache::report();
    let disk = report.activity_disk_hits + report.stats_disk_hits;
    let computed = report.activity_misses + report.stats_misses;
    assert!(
        disk >= 9 * (disk + computed) / 10,
        "warm run should be >=90% disk hits: {}",
        report.summary()
    );
    assert!(
        warm_secs * 3.0 < cold_secs,
        "warm-disk run not >=3x faster: cold {cold_secs:.3}s vs warm {warm_secs:.3}s"
    );

    // --- Corruption: truncate one segment mid-record, bit-flip
    // another, and drop in a garbage file. Reopening must succeed and
    // the campaign must still be bit-identical (corrupt entries just
    // recompute).
    frame_cache::detach_store();
    let mut segments: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("list store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "expected several shard segments");
    let torn = &segments[0];
    let bytes = std::fs::read(torn).expect("read segment");
    std::fs::write(torn, &bytes[..bytes.len() - bytes.len() / 3]).expect("truncate");
    let flipped = &segments[1];
    let mut bytes = std::fs::read(flipped).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(flipped, bytes).expect("bit-flip");
    std::fs::write(dir.join("junk.seg"), b"not a segment at all").expect("junk");

    frame_cache::set_store_dir(&dir).expect("corrupt store still opens");
    frame_cache::clear();
    let after_corruption = run_campaign();
    assert_eq!(
        cold, after_corruption,
        "corruption must degrade to recompute, never change results"
    );
    let report = frame_cache::report();
    // The untouched shards still serve; the damaged ones recompute.
    assert!(
        report.activity_misses + report.stats_misses > 0,
        "some recompute expected after corruption: {}",
        report.summary()
    );

    // --- A store over a path that cannot be a directory refuses to
    // open (the caller then runs cold) instead of panicking.
    frame_cache::detach_store();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"file").expect("write blocker");
    assert!(frame_cache::set_store_dir(&blocker.join("sub")).is_err());
    assert!(!frame_cache::has_store());

    frame_cache::clear();
    let _ = std::fs::remove_dir_all(&dir);
}
