//! Content-addressed memoization of per-frame simulation results.
//!
//! The experiment sweeps (random-sampling trials, per-seed/per-mode
//! grids, representative re-simulation) render and time the *same*
//! frames many times over. Because PR 1 made per-frame simulation
//! independent — every frame is rendered from scratch and timed on a
//! freshly reset GPU — a frame's [`FrameActivity`] is a pure function
//! of `(frame content, render config, shader table)` and its
//! [`FrameStats`] a pure function of `(frame content, GPU config,
//! shader table)`. That purity is exactly what makes memoization sound:
//! this module hashes the full frame content (meshes, transforms,
//! shader bindings, textures, blend/depth state) together with the
//! config into a 128-bit key, and caches results process-wide in
//! [`megsim_exec::ConcurrentCache`] instances.
//!
//! The caches are transparent by construction — a hit returns a value
//! that recomputation would reproduce bit for bit, so enabling or
//! disabling the cache (or racing inserts, or dropping entries at
//! capacity) can never change pipeline output, only wall-clock time.
//! [`set_enabled`] (the CLI's `--no-frame-cache`) exists for
//! benchmarking and for double-checking that property, which
//! `tests/frame_cache.rs` does on every run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use megsim_exec::ConcurrentCache;
use megsim_funcsim::{FrameActivity, RenderConfig};
use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::Mesh;
use megsim_gfx::shader::ShaderTable;
use megsim_timing::{FrameStats, GpuConfig};

/// Entries per cache (activity and stats each); beyond this, inserts
/// are dropped and the pipeline just recomputes.
const CACHE_CAPACITY: usize = 1 << 14;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ACTIVITY: OnceLock<ConcurrentCache<FrameActivity>> = OnceLock::new();
static STATS: OnceLock<ConcurrentCache<FrameStats>> = OnceLock::new();

fn activity_cache() -> &'static ConcurrentCache<FrameActivity> {
    ACTIVITY.get_or_init(|| ConcurrentCache::new(CACHE_CAPACITY))
}

fn stats_cache() -> &'static ConcurrentCache<FrameStats> {
    STATS.get_or_init(|| ConcurrentCache::new(CACHE_CAPACITY))
}

/// Globally enables or disables both frame caches (they default to
/// enabled). Disabling does not drop existing entries; re-enabling
/// resumes hitting them.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the frame caches are currently consulted.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops every cached entry and zeroes the hit/miss counters.
pub fn clear() {
    activity_cache().clear();
    stats_cache().clear();
}

/// A snapshot of both caches' statistics, for experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameCacheReport {
    /// Characterization-pass lookups that hit.
    pub activity_hits: u64,
    /// Characterization-pass lookups that missed.
    pub activity_misses: u64,
    /// Entries in the activity cache.
    pub activity_entries: usize,
    /// Timing-pass lookups that hit.
    pub stats_hits: u64,
    /// Timing-pass lookups that missed.
    pub stats_misses: u64,
    /// Entries in the stats cache.
    pub stats_entries: usize,
}

impl FrameCacheReport {
    /// Overall hit rate across both caches, in `[0, 1]` (0 when no
    /// lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.activity_hits + self.stats_hits;
        let total = hits + self.activity_misses + self.stats_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "frame cache: activity {}/{} hits, stats {}/{} hits ({:.1}% overall, {} entries)",
            self.activity_hits,
            self.activity_hits + self.activity_misses,
            self.stats_hits,
            self.stats_hits + self.stats_misses,
            self.hit_rate() * 100.0,
            self.activity_entries + self.stats_entries,
        )
    }
}

/// Current statistics of both caches.
pub fn report() -> FrameCacheReport {
    let a = activity_cache();
    let s = stats_cache();
    FrameCacheReport {
        activity_hits: a.hits(),
        activity_misses: a.misses(),
        activity_entries: a.len(),
        stats_hits: s.hits(),
        stats_misses: s.misses(),
        stats_entries: s.len(),
    }
}

/// A 128-bit streaming content fingerprint: two 64-bit lanes fed with
/// every word, each mixed splitmix64-style. Not cryptographic — it only
/// needs to make accidental collisions among a few thousand frames
/// astronomically unlikely (≈ 2⁻⁹⁷ for 10⁴ distinct frames).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    h0: u64,
    h1: u64,
}

impl Fingerprint {
    /// A fresh fingerprint with fixed, distinct lane seeds.
    pub fn new() -> Self {
        Self {
            h0: 0xcbf2_9ce4_8422_2325,
            h1: 0x9e37_79b9_7f4a_7c15,
        }
    }

    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut x = (h ^ v).wrapping_mul(0x2545_f491_4f6c_dd1d);
        x ^= x >> 29;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }

    /// Feeds one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.h0 = Self::mix(self.h0, v);
        self.h1 = Self::mix(self.h1, v ^ 0xa5a5_a5a5_a5a5_a5a5);
    }

    /// Feeds one 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Feeds an `f32` by bit pattern (so `-0.0` and `0.0` differ —
    /// exactness matters more than float semantics here).
    #[inline]
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Feeds a byte slice (word-at-a-time, length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.h0) << 64) | u128::from(self.h1)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

fn mesh_fingerprint(mesh: &Mesh) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64(mesh.vertices.len() as u64);
    for v in &mesh.vertices {
        fp.write_f32(v.position.x);
        fp.write_f32(v.position.y);
        fp.write_f32(v.position.z);
        fp.write_f32(v.normal.x);
        fp.write_f32(v.normal.y);
        fp.write_f32(v.normal.z);
        fp.write_f32(v.uv.x);
        fp.write_f32(v.uv.y);
    }
    fp.write_u64(mesh.indices.len() as u64);
    for &i in &mesh.indices {
        fp.write_u32(i);
    }
    fp.write_u64(mesh.base_address);
    fp.finish()
}

fn write_draw(fp: &mut Fingerprint, draw: &DrawCall, meshes: &mut HashMap<*const Mesh, u128>) {
    // Meshes are shared via `Arc` across draws (and frames), so hash
    // each distinct mesh once per frame and feed the digest.
    let key = std::sync::Arc::as_ptr(&draw.mesh);
    let mesh_fp = *meshes
        .entry(key)
        .or_insert_with(|| mesh_fingerprint(&draw.mesh));
    fp.write_u64((mesh_fp >> 64) as u64);
    fp.write_u64(mesh_fp as u64);
    for col in &draw.transform.cols {
        fp.write_f32(col.x);
        fp.write_f32(col.y);
        fp.write_f32(col.z);
        fp.write_f32(col.w);
    }
    fp.write_u32(draw.vertex_shader.0);
    fp.write_u32(draw.fragment_shader.0);
    match draw.texture {
        None => fp.write_u32(0),
        Some(t) => {
            fp.write_u32(1);
            fp.write_u32(t.id.0);
            fp.write_u32(t.width);
            fp.write_u32(t.height);
            fp.write_u32(t.bytes_per_texel);
            fp.write_u64(t.base_address);
        }
    }
    fp.write_u32(match draw.blend {
        BlendMode::Opaque => 0,
        BlendMode::AlphaBlend => 1,
        BlendMode::Additive => 2,
    });
    fp.write_u32(u32::from(draw.depth_test));
}

/// Content fingerprint of a frame: every field of every draw call that
/// the functional renderer or the timing model can observe.
pub fn frame_fingerprint(frame: &Frame) -> u128 {
    let mut fp = Fingerprint::new();
    let mut meshes = HashMap::new();
    fp.write_u64(frame.draws.len() as u64);
    for draw in &frame.draws {
        write_draw(&mut fp, draw, &mut meshes);
    }
    fp.finish()
}

/// Fingerprint of everything besides frame content that determines a
/// characterization result: the render config and the shader table.
///
/// Both types are plain data with derived `Debug`, so their full debug
/// representation is a faithful (if verbose) serialization — computed
/// once per sequence, not per frame.
pub fn activity_config_fingerprint(config: &RenderConfig, shaders: &ShaderTable) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64(0x41435449); // "ACTI" domain tag
    fp.write_bytes(format!("{config:?}|{shaders:?}").as_bytes());
    fp.finish()
}

/// Fingerprint of everything besides frame content that determines a
/// timing result: the full GPU config (which embeds the render mode and
/// viewport) and the shader table.
pub fn stats_config_fingerprint(config: &GpuConfig, shaders: &ShaderTable) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64(0x53544154); // "STAT" domain tag
    fp.write_bytes(format!("{config:?}|{shaders:?}").as_bytes());
    fp.finish()
}

#[inline]
fn combine(config_fp: u128, frame_fp: u128) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64((config_fp >> 64) as u64);
    fp.write_u64(config_fp as u64);
    fp.write_u64((frame_fp >> 64) as u64);
    fp.write_u64(frame_fp as u64);
    fp.finish()
}

/// Returns the cached [`FrameActivity`] for `(config_fp, frame)`, or
/// computes (and caches) it. With the cache disabled this is just
/// `compute()`.
pub fn activity_or_else(
    config_fp: u128,
    frame: &Frame,
    compute: impl FnOnce() -> FrameActivity,
) -> FrameActivity {
    if !is_enabled() {
        return compute();
    }
    activity_cache().get_or_insert_with(combine(config_fp, frame_fingerprint(frame)), compute)
}

/// Returns the cached [`FrameStats`] for `(config_fp, frame)`, or
/// computes (and caches) it. With the cache disabled this is just
/// `compute()`.
pub fn stats_or_else(
    config_fp: u128,
    frame: &Frame,
    compute: impl FnOnce() -> FrameStats,
) -> FrameStats {
    if !is_enabled() {
        return compute();
    }
    stats_cache().get_or_insert_with(combine(config_fp, frame_fingerprint(frame)), compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::geometry::Vertex;
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::ShaderId;
    use std::sync::Arc;

    fn frame_with(z: f32) -> Frame {
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.5, -0.5, z)),
                Vertex::at(Vec3::new(0.5, -0.5, z)),
                Vertex::at(Vec3::new(0.0, 0.5, z)),
            ],
            vec![0, 1, 2],
            0x100,
        ));
        let mut f = Frame::new();
        f.draws.push(DrawCall {
            mesh,
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: None,
            blend: BlendMode::Opaque,
            depth_test: true,
        });
        f
    }

    #[test]
    fn identical_content_hashes_identically() {
        // Distinct allocations, same content: the fingerprint must be
        // content-addressed, not identity-addressed.
        assert_eq!(
            frame_fingerprint(&frame_with(0.25)),
            frame_fingerprint(&frame_with(0.25))
        );
    }

    #[test]
    fn content_changes_change_the_hash() {
        let base = frame_fingerprint(&frame_with(0.25));
        assert_ne!(base, frame_fingerprint(&frame_with(0.26)));
        let mut f = frame_with(0.25);
        f.draws[0].depth_test = false;
        assert_ne!(base, frame_fingerprint(&f));
        let mut f = frame_with(0.25);
        f.draws[0].blend = BlendMode::Additive;
        assert_ne!(base, frame_fingerprint(&f));
        let mut f = frame_with(0.25);
        f.draws[0].transform = Mat4::translation(Vec3::new(0.1, 0.0, 0.0));
        assert_ne!(base, frame_fingerprint(&f));
    }

    #[test]
    fn empty_frame_differs_from_nonempty() {
        assert_ne!(
            frame_fingerprint(&Frame::new()),
            frame_fingerprint(&frame_with(0.5))
        );
    }

    #[test]
    fn domain_tags_separate_activity_and_stats_keys() {
        let shaders = ShaderTable::new();
        let rc = RenderConfig::default();
        let gc = GpuConfig::default();
        assert_ne!(
            activity_config_fingerprint(&rc, &shaders),
            stats_config_fingerprint(&gc, &shaders)
        );
    }

    #[test]
    fn bytes_hashing_is_length_prefixed() {
        let mut a = Fingerprint::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fingerprint::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
