//! Pearson correlation and the coefficient of multiple correlation used
//! by the paper's input-parameter study (§III-B, Fig. 3).

use crate::descriptive::{covariance, std_dev};
use crate::matrix::{Matrix, MatrixError};

/// Pearson's correlation coefficient ρ between two series (paper Eq. 1).
///
/// Returns `0.0` when either series is constant (zero variance), which is
/// the conventional "no linear relationship measurable" value.
///
/// # Panics
///
/// Panics if the series differ in length.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx <= f64::EPSILON || sy <= f64::EPSILON {
        return 0.0;
    }
    (covariance(xs, ys) / (sx * sy)).clamp(-1.0, 1.0)
}

/// Coefficient of multiple correlation `R` between a set of predictor
/// columns and a target variable (paper Eq. 2–3):
///
/// `R² = cᵀ · R_xx⁻¹ · c`
///
/// where `c` is the vector of Pearson correlations between each predictor
/// and the target, and `R_xx` the predictors' inter-correlation matrix.
///
/// Constant predictor columns are dropped (they carry no information and
/// would make `R_xx` singular); if the matrix is still singular — as
/// happens when shaders always execute in fixed ratios — a small ridge
/// term is added, which is the standard remedy and changes `R` by O(λ).
///
/// Returns `0.0` when no informative predictors remain.
///
/// # Panics
///
/// Panics if any predictor column's length differs from the target's.
pub fn multiple_correlation(predictors: &[Vec<f64>], target: &[f64]) -> f64 {
    let informative: Vec<&Vec<f64>> = predictors
        .iter()
        .filter(|col| {
            assert_eq!(col.len(), target.len(), "predictor length mismatch");
            std_dev(col) > f64::EPSILON
        })
        .collect();
    if informative.is_empty() || std_dev(target) <= f64::EPSILON {
        return 0.0;
    }
    let k = informative.len();
    let c: Vec<f64> = informative.iter().map(|col| pearson(col, target)).collect();
    let mut rxx = Matrix::zeros(k, k);
    for i in 0..k {
        for j in i..k {
            let r = if i == j {
                1.0
            } else {
                pearson(informative[i], informative[j])
            };
            rxx[(i, j)] = r;
            rxx[(j, i)] = r;
        }
    }
    let inv = match rxx.inverse() {
        Ok(inv) => inv,
        Err(MatrixError::Singular) => {
            rxx.add_ridge(1e-6);
            match rxx.inverse() {
                Ok(inv) => inv,
                Err(_) => return 0.0,
            }
        }
        Err(_) => return 0.0,
    };
    let rc = inv.mul_vec(&c).expect("shape checked above");
    let r2: f64 = c.iter().zip(&rc).map(|(a, b)| a * b).sum();
    // Numerical noise can push R² epsilon-outside [0, 1].
    r2.clamp(0.0, 1.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_independent_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        // Symmetric pattern orthogonal to the linear trend.
        let ys = [1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn multiple_correlation_single_predictor_equals_abs_pearson() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y = vec![2.1, 3.9, 6.2, 8.0, 9.9];
        let r = multiple_correlation(std::slice::from_ref(&x), &y);
        assert!((r - pearson(&x, &y).abs()).abs() < 1e-9);
    }

    #[test]
    fn multiple_correlation_two_predictors_explain_target() {
        // y = x1 + x2 exactly → R = 1.
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0, 1.0];
        let x2 = vec![0.0, 3.0, 1.0, 2.0, 5.0, 4.0];
        let y: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let r = multiple_correlation(&[x1, x2], &y);
        assert!(r > 0.999, "r = {r}");
    }

    #[test]
    fn multiple_correlation_drops_constant_columns() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0];
        let konst = vec![7.0; 4];
        let y = vec![1.1, 2.0, 2.9, 4.2];
        let r = multiple_correlation(&[konst.clone(), x1.clone()], &y);
        assert!((r - multiple_correlation(&[x1], &y)).abs() < 1e-9);
        assert_eq!(multiple_correlation(&[konst], &y), 0.0);
    }

    #[test]
    fn multiple_correlation_handles_collinear_predictors() {
        let x1 = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let x2: Vec<f64> = x1.iter().map(|v| v * 2.0).collect(); // collinear
        let y = vec![1.2, 1.9, 3.1, 4.2, 4.8];
        let r = multiple_correlation(&[x1, x2], &y);
        assert!(r > 0.99 && r <= 1.0, "r = {r}");
    }

    #[test]
    fn multiple_correlation_constant_target_is_zero() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(multiple_correlation(&[x], &[5.0, 5.0, 5.0]), 0.0);
    }
}
