//! The original (seed) clustering engine, kept verbatim as the oracle
//! for the bound-pruned fast path in [`crate::kmeans`] and the blocked
//! silhouette in [`crate::silhouette`].
//!
//! Every Lloyd iteration recomputes the full O(n·k·d) distance scan and
//! every silhouette point re-walks all point pairs — exactly the code
//! the optimized engine replaced. The proptests at the bottom of this
//! file drive random matrices × `k` × seeds through both engines at
//! 1/2/8 threads and assert bit-equality (labels, centroids, WCSS,
//! iteration counts, silhouette scores, search outcomes); the
//! `reference` cargo feature exposes this module to benchmarks so
//! speedups are measured against the true baseline.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::bic::bic_score;
use crate::kmeans::{squared_distance, InitMethod, KMeansConfig, KMeansResult};
use crate::matrix::PointMatrix;
use crate::search::{SearchConfig, SearchResult};

/// The pre-optimization clustering engine: plain Lloyd's (full distance
/// scan per iteration), per-restart cold k-means++ seeding, and the
/// all-pairs silhouette. Namespaced as associated functions so callers
/// read `ReferenceKMeans::kmeans(...)` next to the optimized
/// `kmeans(...)`.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceKMeans;

impl ReferenceKMeans {
    /// The seed `kmeans`: full assignment scan every iteration, fresh
    /// buffers per call.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.k` is zero or exceeds the
    /// number of points.
    pub fn kmeans(data: &PointMatrix, config: &KMeansConfig) -> KMeansResult {
        assert!(!data.is_empty(), "k-means requires at least one point");
        let n = data.len();
        let dim = data.dim();
        assert!(config.k >= 1 && config.k <= n, "k must be in [1, n]");
        let k = config.k;
        let mut rng = SmallRng::seed_from_u64(config.seed);
        // Centroids as one flat k×dim buffer, matching the data layout.
        let mut centroids: Vec<f64> = match config.init {
            InitMethod::KMeansPlusPlus => init_plus_plus(data, k, &mut rng),
            InitMethod::Random => init_random(data, k, &mut rng),
        };
        let mut labels = vec![0usize; n];
        let mut iterations = 0;
        for iter in 0..config.max_iterations {
            iterations = iter + 1;
            // Assignment step — integer outputs only, safe to parallelize.
            assign_labels(data, &centroids, &mut labels);
            // Update step: sequential so float accumulation order is fixed.
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0usize; k];
            for (point, &label) in data.iter_rows().zip(&labels) {
                counts[label] += 1;
                for (s, v) in sums[label * dim..(label + 1) * dim].iter_mut().zip(point) {
                    *s += v;
                }
            }
            let mut movement = 0.0;
            for c in 0..k {
                let slot = c * dim..(c + 1) * dim;
                if counts[c] == 0 {
                    // Empty cluster: reseed to the point farthest from its
                    // centroid, the standard k-means repair.
                    let far = (0..n)
                        .max_by(|&i, &j| {
                            let di = point_centroid_d2(data, i, &centroids, labels[i], dim);
                            let dj = point_centroid_d2(data, j, &centroids, labels[j], dim);
                            di.partial_cmp(&dj).expect("NaN distance")
                        })
                        .expect("non-empty data");
                    movement += squared_distance(&centroids[slot.clone()], data.row(far));
                    centroids[slot].copy_from_slice(data.row(far));
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                let mut delta = 0.0;
                for (s, cur) in sums[slot.clone()].iter().zip(&centroids[slot.clone()]) {
                    let d = s * inv - cur;
                    delta += d * d;
                }
                movement += delta;
                for (cur, s) in centroids[slot]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *cur = s * inv;
                }
            }
            if movement <= config.tolerance {
                break;
            }
        }
        // Final assignment with converged centroids.
        assign_labels(data, &centroids, &mut labels);
        let mut wcss = 0.0;
        for (i, point) in data.iter_rows().enumerate() {
            wcss += squared_distance(point, &centroids[labels[i] * dim..(labels[i] + 1) * dim]);
        }
        KMeansResult {
            centroids: centroids
                .chunks_exact(dim.max(1))
                .map(<[f64]>::to_vec)
                .collect(),
            labels,
            wcss,
            iterations,
        }
    }

    /// The seed `kmeans_best_of`: restarts fan out on the worker pool,
    /// each a fully cold run (restart `r` uses
    /// `config.seed ⊕ r · 0xD1B5_4A32_D192_ED03`, the same derivation
    /// [`crate::kmeans::restart_seed`] pins; ties keep the lowest
    /// restart index).
    ///
    /// # Panics
    ///
    /// Panics if `restarts` is zero or `data`/`config.k` are invalid.
    pub fn kmeans_best_of(
        data: &PointMatrix,
        config: &KMeansConfig,
        restarts: usize,
    ) -> KMeansResult {
        assert!(restarts >= 1, "need at least one restart");
        if restarts == 1 {
            return Self::kmeans(data, config);
        }
        let runs = megsim_exec::par_map_range(restarts, |r| {
            let seed = config.seed ^ (r as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
            Self::kmeans(data, &KMeansConfig { seed, ..*config })
        });
        runs.into_iter()
            .reduce(|best, candidate| {
                if candidate.wcss < best.wcss {
                    candidate
                } else {
                    best
                }
            })
            .expect("restarts >= 1")
    }

    /// The seed silhouette: for every point, re-walk all other points
    /// and accumulate per-cluster distance sums.
    ///
    /// # Panics
    ///
    /// Panics if labels and points disagree in length.
    pub fn silhouette_score(data: &PointMatrix, result: &KMeansResult) -> f64 {
        assert_eq!(data.len(), result.labels.len(), "labels/points mismatch");
        let k = result.k();
        if k < 2 || data.len() < 2 {
            return 0.0;
        }
        let sizes = result.cluster_sizes();
        let mut total = 0.0;
        for (i, point) in data.iter_rows().enumerate() {
            let own = result.labels[i];
            if sizes[own] <= 1 {
                continue; // silhouette of a singleton is 0
            }
            // Mean distance to every cluster.
            let mut sums = vec![0.0f64; k];
            for (j, other) in data.iter_rows().enumerate() {
                if i == j {
                    continue;
                }
                sums[result.labels[j]] += crate::kmeans::euclidean_distance(point, other);
            }
            let a = sums[own] / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| sums[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                continue;
            }
            let denom = a.max(b);
            if denom > 0.0 {
                total += (b - a) / denom;
            }
        }
        total / data.len() as f64
    }

    /// The §III-F search driven by the seed engine: identical BIC stop
    /// rule and threshold selection, but every candidate `k` pays
    /// `restarts` cold fits of the full-scan Lloyd's. Candidate `k`
    /// uses the same `seed ⊕ k · 0x9E37_79B9_7F4A_7C15` derivation the
    /// optimized search pins as [`crate::search::candidate_seed`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn search_clusters(data: &PointMatrix, config: &SearchConfig) -> SearchResult {
        assert!(!data.is_empty(), "cannot cluster an empty dataset");
        let hard_max = config.max_k.min(data.len());
        let mut results: Vec<KMeansResult> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();
        let mut decreases = 0usize;
        for k in 1..=hard_max {
            let km_config = KMeansConfig::new(k)
                .with_seed(config.seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .with_init(config.init);
            let result = Self::kmeans_best_of(data, &km_config, config.restarts);
            let score = bic_score(data, &result);
            let stop = match scores.last() {
                Some(&prev) if score < prev => {
                    decreases += 1;
                    decreases >= config.patience
                }
                Some(_) => {
                    decreases = 0;
                    false
                }
                None => false,
            };
            results.push(result);
            scores.push(score);
            if stop {
                break;
            }
        }
        // Threshold selection over the *finite* scores (k = n fits can be
        // -inf and must not poison the spread).
        let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
        let chosen_k = if finite.is_empty() {
            1
        } else {
            let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
            // Clamp so T = 1.0 still matches the maximum despite rounding.
            let cutoff = (min + config.threshold * (max - min)).min(max);
            scores
                .iter()
                .position(|&s| s.is_finite() && s >= cutoff)
                .map(|i| i + 1)
                .unwrap_or(1)
        };
        SearchResult {
            clustering: results.swap_remove(chosen_k - 1),
            k: chosen_k,
            bic_scores: scores,
        }
    }
}

fn point_centroid_d2(
    data: &PointMatrix,
    i: usize,
    centroids: &[f64],
    label: usize,
    dim: usize,
) -> f64 {
    squared_distance(data.row(i), &centroids[label * dim..(label + 1) * dim])
}

/// Labels every point with its nearest centroid, on the pool when the
/// problem is big enough to amortize the fan-out.
fn assign_labels(data: &PointMatrix, centroids: &[f64], labels: &mut [usize]) {
    let n = data.len();
    let dim = data.dim().max(1);
    let k = centroids.len() / dim;
    // Threshold: roughly the work of one frame's distance kernel below
    // which spawning threads costs more than it saves.
    const PAR_WORK: usize = 1 << 20;
    if n * k * dim >= PAR_WORK {
        let out =
            megsim_exec::par_map_range(n, |i| nearest_centroid(data.row(i), centroids, dim).0);
        labels.copy_from_slice(&out);
    } else {
        for (i, point) in data.iter_rows().enumerate() {
            labels[i] = nearest_centroid(point, centroids, dim).0;
        }
    }
}

fn nearest_centroid(point: &[f64], centroids: &[f64], dim: usize) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.chunks_exact(dim).enumerate() {
        let d = squared_distance(point, centroid);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

fn init_random(data: &PointMatrix, k: usize, rng: &mut SmallRng) -> Vec<f64> {
    // Sample k distinct indices (Floyd's algorithm would be fancier; a
    // retry loop is fine at these sizes).
    let mut chosen = Vec::with_capacity(k * data.dim());
    let mut used = std::collections::HashSet::new();
    while used.len() < k {
        let i = rng.gen_range(0..data.len());
        if used.insert(i) {
            chosen.extend_from_slice(data.row(i));
        }
    }
    chosen
}

fn init_plus_plus(data: &PointMatrix, k: usize, rng: &mut SmallRng) -> Vec<f64> {
    let first = rng.gen_range(0..data.len());
    let mut centroids = Vec::with_capacity(k * data.dim());
    centroids.extend_from_slice(data.row(first));
    let mut d2: Vec<f64> = data
        .iter_rows()
        .map(|p| squared_distance(p, data.row(first)))
        .collect();
    let mut count = 1;
    while count < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with a centroid; any point works.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
                idx = i;
            }
            idx
        };
        centroids.extend_from_slice(data.row(next));
        count += 1;
        for (i, p) in data.iter_rows().enumerate() {
            let d = squared_distance(p, data.row(next));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, kmeans_best_of};
    use crate::search::search_clusters;
    use crate::silhouette::silhouette_score;
    use proptest::prelude::*;

    /// Random matrices shaped like normalized feature data: 2..40
    /// points of 1..6 dimensions, coordinates spanning sign changes and
    /// magnitudes so bound maintenance sees both tight and loose
    /// clusters. A quarter of the mass is snapped to a coarse grid so
    /// duplicate points (and therefore empty-cluster repairs and d = 0
    /// ties) actually occur.
    fn matrix_strategy() -> impl Strategy<Value = PointMatrix> {
        (1usize..6, 2usize..40).prop_flat_map(|(dim, n)| {
            proptest::collection::vec(-100.0f64..100.0, n * dim).prop_map(move |mut flat| {
                for v in flat.iter_mut().skip(3).step_by(4) {
                    *v = (*v / 25.0).round() * 25.0;
                }
                PointMatrix::from_flat(flat, dim)
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The bound-pruned Lloyd's is bit-identical to the seed
        /// implementation — labels, centroids, WCSS and iteration
        /// counts — for both init methods, across seeds and thread
        /// counts.
        #[test]
        fn pruned_kmeans_matches_reference(
            data in matrix_strategy(),
            k_sel in 0usize..4,
            seed in 0u64..1 << 16,
        ) {
            let k = 1 + k_sel * (data.len() - 1) / 3;
            for init in [InitMethod::KMeansPlusPlus, InitMethod::Random] {
                let config = KMeansConfig::new(k).with_seed(seed).with_init(init);
                let expected = ReferenceKMeans::kmeans(&data, &config);
                for threads in [1usize, 2, 8] {
                    megsim_exec::set_threads(threads);
                    let got = kmeans(&data, &config);
                    megsim_exec::set_threads(0);
                    prop_assert_eq!(&got, &expected);
                }
            }
        }

        /// Multi-restart selection (shared scratch, sequential restarts)
        /// picks the bitwise-same winner as the seed's cold parallel
        /// fan-out.
        #[test]
        fn best_of_matches_reference(
            data in matrix_strategy(),
            restarts in 1usize..6,
            seed in 0u64..1 << 16,
        ) {
            let k = (data.len() / 2).max(1);
            let config = KMeansConfig::new(k).with_seed(seed);
            let expected = ReferenceKMeans::kmeans_best_of(&data, &config, restarts);
            for threads in [1usize, 2, 8] {
                megsim_exec::set_threads(threads);
                let got = kmeans_best_of(&data, &config, restarts);
                megsim_exec::set_threads(0);
                prop_assert_eq!(&got, &expected);
            }
        }

        /// The blocked, parallel silhouette reproduces the seed's
        /// all-pairs score bit-for-bit on arbitrary (even degenerate)
        /// clusterings.
        #[test]
        fn blocked_silhouette_matches_reference(
            data in matrix_strategy(),
            k_sel in 0usize..4,
            seed in 0u64..1 << 16,
        ) {
            let k = 1 + k_sel * (data.len() - 1) / 3;
            let result = ReferenceKMeans::kmeans(&data, &KMeansConfig::new(k).with_seed(seed));
            let expected = ReferenceKMeans::silhouette_score(&data, &result);
            for threads in [1usize, 2, 8] {
                megsim_exec::set_threads(threads);
                let got = silhouette_score(&data, &result);
                megsim_exec::set_threads(0);
                prop_assert_eq!(got.to_bits(), expected.to_bits());
            }
        }

        /// The warm-started, memoized search selects the bitwise-same
        /// clustering (k, labels, centroids, BIC curve) as the seed
        /// search at every thread count.
        #[test]
        fn warm_search_matches_reference(
            data in matrix_strategy(),
            seed in 0u64..1 << 16,
            restarts in 1usize..4,
        ) {
            let config = SearchConfig::default()
                .with_seed(seed)
                .with_max_k(12)
                .with_restarts(restarts);
            let expected = ReferenceKMeans::search_clusters(&data, &config);
            for threads in [1usize, 2, 8] {
                megsim_exec::set_threads(threads);
                let got = search_clusters(&data, &config);
                megsim_exec::set_threads(0);
                prop_assert_eq!(got.k, expected.k);
                prop_assert_eq!(&got.bic_scores, &expected.bic_scores);
                prop_assert_eq!(&got.clustering, &expected.clustering);
            }
        }
    }
}
