//! The functional renderer driver: Geometry Pipeline → (Tiling Engine) →
//! Raster Pipeline, producing [`FrameActivity`] and optionally a full
//! [`FrameTrace`] for the timing model.

use std::cell::RefCell;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use megsim_gfx::draw::{Frame, Viewport};
use megsim_gfx::shader::ShaderTable;

use crate::activity::FrameActivity;
use crate::binning::{bin_primitives, TileBins};
use crate::geometry::process_draw;
use crate::raster::{rasterize_frame, RasterScratch};
use crate::trace::FrameTrace;

thread_local! {
    /// Per-thread rendering scratch. Worker-pool threads render many
    /// frames per scope, so the buffers reach steady state quickly and
    /// the hot path stops touching the allocator.
    static SCRATCH: RefCell<RasterScratch> = RefCell::new(RasterScratch::new());
}

/// The rendering architecture being simulated (paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RenderMode {
    /// Tile-Based Rendering — the paper's baseline (Mali-style).
    #[default]
    TileBased,
    /// Tile-Based *Deferred* Rendering with Hidden Surface Removal
    /// (PowerVR-style; the extension path the paper names in §IV-A).
    TileBasedDeferred,
    /// Immediate-Mode Rendering — no Tiling Engine, colors written to
    /// the frame buffer in memory as they are produced (desktop-style).
    Immediate,
}

/// Configuration of the functional renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderConfig {
    /// Render-target geometry.
    pub viewport: Viewport,
    /// Rendering architecture.
    pub mode: RenderMode,
}

impl RenderConfig {
    /// Tile-based config for a viewport (the common case).
    pub fn tbr(viewport: Viewport) -> Self {
        Self {
            viewport,
            mode: RenderMode::TileBased,
        }
    }
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            viewport: Viewport::MALI450_BASELINE,
            mode: RenderMode::TileBased,
        }
    }
}

/// The functional renderer (Softpipe substitute).
#[derive(Debug, Clone)]
pub struct Renderer {
    config: RenderConfig,
}

impl Renderer {
    /// Creates a renderer for the given configuration.
    pub fn new(config: RenderConfig) -> Self {
        Self { config }
    }

    /// The renderer's configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.config
    }

    /// Renders a frame, returning the full trace (geometry records +
    /// per-tile quads) for cycle-level simulation.
    ///
    /// # Panics
    ///
    /// Panics if a draw call references a shader missing from `shaders`.
    pub fn render_frame(&self, frame: &Frame, shaders: &ShaderTable) -> FrameTrace {
        self.render(frame, shaders, true)
    }

    /// Fast characterization pass: renders a frame collecting only the
    /// activity counters (the paper's "fast functional simulation" that
    /// feeds MEGsim, §III-B).
    pub fn frame_activity(&self, frame: &Frame, shaders: &ShaderTable) -> FrameActivity {
        unwrap_activity(self.render(frame, shaders, false).activity)
    }

    /// [`Self::render_frame`] with caller-owned scratch, for callers
    /// that manage worker state themselves.
    pub fn render_frame_with(
        &self,
        frame: &Frame,
        shaders: &ShaderTable,
        scratch: &mut RasterScratch,
    ) -> FrameTrace {
        self.render_with(frame, shaders, true, scratch)
    }

    /// [`Self::frame_activity`] with caller-owned scratch.
    pub fn frame_activity_with(
        &self,
        frame: &Frame,
        shaders: &ShaderTable,
        scratch: &mut RasterScratch,
    ) -> FrameActivity {
        unwrap_activity(self.render_with(frame, shaders, false, scratch).activity)
    }

    fn render(&self, frame: &Frame, shaders: &ShaderTable, collect_trace: bool) -> FrameTrace {
        SCRATCH.with(|s| self.render_with(frame, shaders, collect_trace, &mut s.borrow_mut()))
    }

    fn render_with(
        &self,
        frame: &Frame,
        shaders: &ShaderTable,
        collect_trace: bool,
        scratch: &mut RasterScratch,
    ) -> FrameTrace {
        let viewport = self.config.viewport;
        let mode = self.config.mode;
        let mut activity = FrameActivity::new(shaders.vertex_count(), shaders.fragment_count());
        // Geometry Pipeline.
        let transformed: Vec<_> = frame
            .draws
            .iter()
            .enumerate()
            .map(|(i, draw)| {
                process_draw(
                    draw,
                    i as u32,
                    viewport,
                    shaders,
                    &mut activity,
                    collect_trace,
                    &mut scratch.geom,
                )
            })
            .collect();
        // Tiling Engine (absent in immediate-mode rendering).
        let bins = if mode == RenderMode::Immediate {
            TileBins::empty()
        } else {
            bin_primitives(&transformed, viewport, &mut activity, &mut scratch.bins)
        };
        // Raster Pipeline.
        let tiles = rasterize_frame(
            frame,
            &transformed,
            &bins,
            viewport,
            shaders,
            mode,
            &mut activity,
            collect_trace,
            scratch,
        );
        FrameTrace {
            mode,
            viewport,
            geometry: transformed.into_iter().map(|t| t.geometry).collect(),
            tiles,
            activity: Arc::new(activity),
        }
    }
}

/// Takes the activity out of a freshly rendered trace's `Arc` without a
/// deep copy (the renderer holds the only handle at this point).
fn unwrap_activity(activity: Arc<FrameActivity>) -> FrameActivity {
    Arc::try_unwrap(activity).unwrap_or_else(|shared| (*shared).clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::draw::{BlendMode, DrawCall};
    use megsim_gfx::geometry::{Mesh, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 12));
        t.add(ShaderProgram::fragment(
            0,
            "fs",
            9,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn quad_frame() -> Frame {
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.5, 0.5, 0.0)),
                Vertex::at(Vec3::new(-0.5, 0.5, 0.0)),
            ],
            vec![0, 1, 2, 0, 2, 3],
            0x2000,
        ));
        let mut f = Frame::new();
        f.draws.push(DrawCall {
            mesh,
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: Some(TextureDesc::new(0, 128, 128, 4, 0x10_0000)),
            blend: BlendMode::Opaque,
            depth_test: true,
        });
        f
    }

    #[test]
    fn end_to_end_counts_are_consistent() {
        let r = Renderer::new(RenderConfig::tbr(Viewport::new(128, 128, 32)));
        let trace = r.render_frame(&quad_frame(), &shaders());
        let a = &trace.activity;
        assert_eq!(a.primitives_assembled, 2);
        assert_eq!(a.primitives_emitted, 2);
        assert_eq!(a.vertices_shaded, 4);
        // The quad spans NDC [-0.5, 0.5]² = pixels [32, 96]² = 64×64 px.
        assert!((a.fragments_rasterized as i64 - 64 * 64).abs() <= 64 * 2);
        assert_eq!(a.fragments_shaded, a.fragments_rasterized);
        assert_eq!(trace.visible_fragments(), a.fragments_shaded);
        // Bilinear sampling per fragment.
        assert_eq!(a.texture_samples[2], a.fragments_shaded);
        // Quad overlaps 2×2 = 4 tiles (borders land exactly on 32/96).
        assert!(a.tiles_touched >= 4);
        assert_eq!(trace.geometry.len(), 1);
        assert_eq!(trace.mode, RenderMode::TileBased);
    }

    #[test]
    fn activity_only_pass_matches_trace_pass() {
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let r = Renderer::new(RenderConfig {
                viewport: Viewport::new(128, 128, 32),
                mode,
            });
            let frame = quad_frame();
            let t = shaders();
            let full = r.render_frame(&frame, &t);
            let fast = r.frame_activity(&frame, &t);
            assert_eq!(*full.activity, fast, "{mode:?}");
        }
    }

    #[test]
    fn immediate_mode_has_no_tiling_activity() {
        let r = Renderer::new(RenderConfig {
            viewport: Viewport::new(128, 128, 32),
            mode: RenderMode::Immediate,
        });
        let trace = r.render_frame(&quad_frame(), &shaders());
        assert_eq!(trace.activity.tile_bin_entries, 0);
        assert_eq!(trace.activity.tiles_touched, 0);
        // PRIM (geometry output) is architecture-independent.
        assert_eq!(trace.activity.primitives_emitted, 2);
        assert_eq!(trace.mode, RenderMode::Immediate);
    }

    #[test]
    fn modes_agree_on_geometry_and_fragments_for_simple_scene() {
        let frame = quad_frame();
        let t = shaders();
        let run = |mode| {
            Renderer::new(RenderConfig {
                viewport: Viewport::new(128, 128, 32),
                mode,
            })
            .frame_activity(&frame, &t)
        };
        let tbr = run(RenderMode::TileBased);
        let tbdr = run(RenderMode::TileBasedDeferred);
        let imr = run(RenderMode::Immediate);
        assert_eq!(tbr.vertices_shaded, imr.vertices_shaded);
        assert_eq!(tbr.primitives_emitted, imr.primitives_emitted);
        // No overdraw in this scene: every mode shades the same pixels.
        assert_eq!(tbr.fragments_shaded, tbdr.fragments_shaded);
        assert_eq!(tbr.fragments_shaded, imr.fragments_shaded);
    }

    #[test]
    fn empty_frame_renders_nothing() {
        let r = Renderer::new(RenderConfig::default());
        let trace = r.render_frame(&Frame::new(), &shaders());
        assert_eq!(trace.activity.fragments_shaded, 0);
        assert!(trace.tiles.is_empty());
    }
}
