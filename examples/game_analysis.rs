//! Phase analysis of one game: prints the similarity matrix (Fig. 5),
//! the BIC curve and the cluster timeline (Fig. 6) for a Beach Buggy
//! Racing-like workload.
//!
//! ```text
//! cargo run --release --example game_analysis
//! ```

use megsim_core::evaluate::characterize_sequence;
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_core::{normalize, SimilarityMatrix};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

fn main() {
    let workload = by_alias("bbr1", 0.1, 42).expect("known benchmark alias"); // 250 frames
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();

    println!(
        "analyzing {} ({} frames)...",
        workload.name,
        workload.frames()
    );
    let matrix = characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
    let normalized = normalize(&matrix, &config.weights);

    // Fig. 5: the similarity matrix, darker = more similar.
    let sim = SimilarityMatrix::from_points(&normalized);
    println!("\nsimilarity matrix (darker = more similar):\n");
    print!("{}", sim.render_ascii(48));

    // Fig. 6: clustering along the diagonal.
    let selection = select_representatives(&matrix, &config);
    println!(
        "\nk-means/BIC selected {} clusters; BIC scores per k:",
        selection.k()
    );
    for (k, score) in selection.bic_scores.iter().enumerate() {
        let marker = if k + 1 == selection.k() {
            "  <= selected"
        } else {
            ""
        };
        println!("  k = {:>2}: {:>12.1}{}", k + 1, score, marker);
    }

    println!("\ncluster timeline (each char = one frame):");
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    for chunk in selection.labels.chunks(100) {
        let line: String = chunk
            .iter()
            .map(|&l| GLYPHS[l % GLYPHS.len()] as char)
            .collect();
        println!("  {line}");
    }

    println!("\nrepresentatives (frame -> cluster size):");
    for rep in &selection.representatives {
        println!(
            "  frame {:>5} represents {:>5} frames",
            rep.frame_index, rep.cluster_size
        );
    }
}
