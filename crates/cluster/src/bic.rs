//! Bayesian Information Criterion scoring of a clustering (paper §III-F).
//!
//! Implements the x-means formulation of Pelleg & Moore that the paper
//! cites (its Eq. 5–6):
//!
//! ```text
//! BIC(φ) = l̂(D) − p_φ/2 · log R
//! l̂(D)  = Σ_n R_n log R_n − R log R − R·M/2 · log(2πσ²) − M/2 · (R − K)
//! ```
//!
//! with `R` points, `R_n` points in cluster `n`, `M` dimensions,
//! `K` clusters, `p_φ = K(M+1)` free parameters and `σ²` the pooled
//! variance of the distance from each point to its centroid.

use crate::kmeans::KMeansResult;
use crate::matrix::PointMatrix;

/// BIC score of a k-means clustering over `data` (higher is better).
///
/// Degenerate fits (σ² = 0, i.e. every point sits on its centroid — e.g.
/// `K = R`) get `f64::NEG_INFINITY` so the search never prefers them.
///
/// # Panics
///
/// Panics if `data` is empty or label/point counts disagree.
pub fn bic_score(data: &PointMatrix, result: &KMeansResult) -> f64 {
    assert!(!data.is_empty(), "BIC of an empty dataset is undefined");
    assert_eq!(data.len(), result.labels.len(), "labels/points mismatch");
    let r = data.len() as f64;
    let m = data.dim() as f64;
    let k = result.k() as f64;
    // Pooled variance estimate of Eq. 6: σ² = WCSS / (R − K)
    // (maximum-likelihood estimate with K centroid parameters spent).
    if data.len() <= result.k() {
        return f64::NEG_INFINITY;
    }
    let sigma2 = result.wcss / (r - k);
    if sigma2 <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let sizes = result.cluster_sizes();
    let mut log_likelihood = 0.0;
    for &rn in &sizes {
        if rn > 0 {
            let rn = rn as f64;
            log_likelihood += rn * rn.ln();
        }
    }
    log_likelihood -= r * r.ln();
    log_likelihood -= r * m / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln();
    log_likelihood -= m / 2.0 * (r - k);
    let p_phi = k * (m + 1.0);
    log_likelihood - p_phi / 2.0 * r.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn blobs(n_per: usize, centers: &[f64]) -> PointMatrix {
        let mut pts = Vec::new();
        for &c in centers {
            for i in 0..n_per {
                // Deterministic jitter around each center.
                let j = (i as f64 * 0.7).sin() * 0.3;
                pts.push(vec![c + j, c - j]);
            }
        }
        PointMatrix::from_rows(pts)
    }

    #[test]
    fn true_k_scores_higher_than_underfit() {
        let data = blobs(20, &[0.0, 10.0, 20.0]);
        let r1 = kmeans(&data, &KMeansConfig::new(1).with_seed(1));
        let r3 = kmeans(&data, &KMeansConfig::new(3).with_seed(1));
        assert!(bic_score(&data, &r3) > bic_score(&data, &r1));
    }

    #[test]
    fn penalty_discourages_extra_clusters_at_equal_fit() {
        // Two clusterings with identical WCSS: the one with more
        // clusters must score lower (the penalty term plus the
        // Σ Rn log Rn term both shrink).
        let data = blobs(8, &[0.0, 10.0]);
        let coarse = KMeansResult {
            centroids: vec![vec![0.0, 0.0], vec![10.0, 10.0]],
            labels: (0..16).map(|i| i / 8).collect(),
            wcss: 4.0,
            iterations: 1,
        };
        let fine = KMeansResult {
            centroids: vec![vec![0.0, 0.0]; 8],
            labels: (0..16).map(|i| i / 2).collect(),
            wcss: 4.0,
            iterations: 1,
        };
        assert!(bic_score(&data, &coarse) > bic_score(&data, &fine));
    }

    #[test]
    fn zero_variance_fit_is_rejected() {
        let data = PointMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let r = kmeans(&data, &KMeansConfig::new(3).with_seed(0));
        assert_eq!(bic_score(&data, &r), f64::NEG_INFINITY);
    }

    #[test]
    fn score_is_finite_for_reasonable_fit() {
        let data = blobs(10, &[0.0, 5.0]);
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(0));
        assert!(bic_score(&data, &r).is_finite());
    }
}
