//! Prints Table I (GPU simulation parameters).
use megsim_bench::{Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    print!("{}", megsim_bench::experiments::table1(&ctx));
}
