//! Bit-identity oracle: the memoized-template fast path must reproduce
//! the retained seed generator (`ReferenceWorkload`) bit for bit for
//! every frame of every Table II benchmark, at every thread count.
//!
//! Gated behind `--features reference` (CI runs it per-crate in the
//! oracle matrix); plain `cargo test` skips the heavy sweep and relies
//! on the in-crate unit oracle instead.

#![cfg(feature = "reference")]

use proptest::prelude::*;

use megsim_gfx::draw::{DrawCall, Frame};
use megsim_workloads::{build, suite, ReferenceWorkload, BENCHMARKS};

/// Bitwise draw-call comparison: transform bits (stricter than the f32
/// `PartialEq`, which conflates `-0.0` with `0.0`), full pipeline
/// state, and pointer-identical meshes.
fn assert_draws_identical(alias: &str, i: usize, fast: &Frame, seed: &Frame) {
    assert_eq!(
        fast.draws.len(),
        seed.draws.len(),
        "{alias} frame {i}: draw count"
    );
    for (d, (a, b)) in fast.draws.iter().zip(&seed.draws).enumerate() {
        assert_eq!(
            transform_bits(a),
            transform_bits(b),
            "{alias} frame {i} draw {d}: transform bits"
        );
        assert_eq!(
            a.vertex_shader, b.vertex_shader,
            "{alias} frame {i} draw {d}"
        );
        assert_eq!(
            a.fragment_shader, b.fragment_shader,
            "{alias} frame {i} draw {d}"
        );
        assert_eq!(a.texture, b.texture, "{alias} frame {i} draw {d}");
        assert_eq!(a.blend, b.blend, "{alias} frame {i} draw {d}");
        assert_eq!(a.depth_test, b.depth_test, "{alias} frame {i} draw {d}");
        assert!(
            std::sync::Arc::ptr_eq(&a.mesh, &b.mesh),
            "{alias} frame {i} draw {d}: mesh identity"
        );
    }
}

fn transform_bits(d: &DrawCall) -> [u32; 16] {
    let mut out = [0u32; 16];
    for (c, col) in d.transform.cols.iter().enumerate() {
        out[c * 4] = col.x.to_bits();
        out[c * 4 + 1] = col.y.to_bits();
        out[c * 4 + 2] = col.z.to_bits();
        out[c * 4 + 3] = col.w.to_bits();
    }
    out
}

/// Every frame of every Table II benchmark, all three CI thread
/// counts: the parallel batch path must equal the seed generator.
#[test]
fn full_suite_is_bit_identical_at_1_2_8_threads() {
    let workloads = suite(0.01, 42);
    assert_eq!(workloads.len(), BENCHMARKS.len());
    for threads in [1usize, 2, 8] {
        megsim_exec::set_threads(threads);
        for w in &workloads {
            let reference: Vec<Frame> = ReferenceWorkload(w).iter_frames().collect();
            let batch = w.generate_frames();
            assert_eq!(batch.len(), reference.len(), "{}", w.alias);
            for (i, (fast, seed)) in batch.iter().zip(&reference).enumerate() {
                assert_draws_identical(&w.alias, i, fast, seed);
            }
        }
    }
    megsim_exec::set_threads(0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized (benchmark, scale, seed) sweep: single frames probed
    /// across the sequence, plus a parallel sub-range.
    #[test]
    fn random_workloads_match_reference(
        bench in 0usize..8,
        scale in 0.002f64..0.02,
        seed in 0u64..10_000,
        probe in 0.0f64..1.0,
    ) {
        let w = build(&BENCHMARKS[bench], scale, seed);
        let r = ReferenceWorkload(&w);
        let i = ((w.frames() - 1) as f64 * probe) as usize;
        // The probed frame, its neighbors, and the segment-transition
        // frame 0 (spike/transition boost paths).
        for idx in [0, i.saturating_sub(1), i, (i + 1).min(w.frames() - 1)] {
            let fast = w.frame(idx);
            let seed_frame = r.frame(idx);
            assert_draws_identical(&w.alias, idx, &fast, &seed_frame);
        }
        // A parallel sub-range around the probe.
        let start = i.saturating_sub(8);
        let end = (i + 8).min(w.frames());
        let batch = w.generate_range(start..end);
        for (k, fast) in batch.iter().enumerate() {
            let seed_frame = r.frame(start + k);
            assert_draws_identical(&w.alias, start + k, fast, &seed_frame);
        }
    }
}
