//! The headline comparison: full-sequence cycle simulation vs the
//! MEGsim flow (functional characterization + clustering + simulating
//! only the representatives). The wall-clock ratio is the simulation
//! speedup the paper reports as 126x at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use megsim_core::evaluate::{characterize_sequence, simulate_representatives, simulate_sequence};
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

fn bench_end_to_end(c: &mut Criterion) {
    let workload = by_alias("pvz", 0.02, 7).expect("known alias"); // 100 frames
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();

    c.bench_function("full_sequence_simulation_pvz100", |b| {
        b.iter(|| simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu));
    });

    c.bench_function("megsim_flow_pvz100", |b| {
        b.iter(|| {
            let matrix =
                characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
            let selection = select_representatives(&matrix, &config);
            simulate_representatives(|i| workload.frame(i), &selection, workload.shaders(), &gpu)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
