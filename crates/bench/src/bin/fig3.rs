//! Prints Fig. 3 (correlation of input parameters with total cycles).
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    print!("{}", megsim_bench::experiments::fig3(&data));
}
