//! Property-based oracle for the streaming selection path.
//!
//! Two contracts, over arbitrary feature matrices rather than the
//! hand-built fixtures of the unit tests:
//!
//! * **Exact-mode equivalence** — with an unbounded reservoir the
//!   single-pass clusterer is the batch pipeline: bit-identical
//!   labels, representatives and BIC curve at every worker-pool size.
//! * **Bounded-memory fence** — with any finite reservoir, the peak
//!   number of raw feature rows ever retained never exceeds
//!   `reservoir + one mini-batch window`, while the output still
//!   labels every frame exactly once.

use proptest::prelude::*;

use megsim_core::pipeline::{
    select_representatives, select_representatives_stream, MegsimConfig, StreamClusterConfig,
};
use megsim_core::FeatureMatrix;

/// Arbitrary feature matrices: `p` vertex columns, `q` fragment
/// columns, 4–40 frames of non-negative activity.
fn matrices() -> impl Strategy<Value = FeatureMatrix> {
    (1usize..=3, 1usize..=3)
        .prop_flat_map(|(p, q)| {
            let d = p + q + 1;
            (
                Just(p),
                Just(q),
                prop::collection::vec(prop::collection::vec(0.0f64..1e4, d..=d), 4..40),
            )
        })
        .prop_map(|(p, q, rows)| FeatureMatrix::from_rows(rows, p, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_streaming_is_bitwise_the_batch_selection(
        matrix in matrices(),
        seed in any::<u64>(),
    ) {
        let config = MegsimConfig::default().with_seed(seed);
        let stream = StreamClusterConfig::exact();
        let batch = select_representatives(&matrix, &config);
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            let streamed = select_representatives_stream(&matrix, &config, &stream);
            megsim_exec::set_threads(0);
            prop_assert_eq!(
                &streamed.selection.labels, &batch.labels,
                "labels differ at {} threads", threads
            );
            prop_assert_eq!(
                &streamed.selection.representatives, &batch.representatives,
                "representatives differ at {} threads", threads
            );
            // f64 equality would admit -0.0 vs 0.0; the contract is
            // bit-identity.
            let stream_bits: Vec<u64> =
                streamed.selection.bic_scores.iter().map(|b| b.to_bits()).collect();
            let batch_bits: Vec<u64> = batch.bic_scores.iter().map(|b| b.to_bits()).collect();
            prop_assert_eq!(stream_bits, batch_bits, "BIC curve differs at {} threads", threads);
            prop_assert_eq!(streamed.reservoir_len, matrix.frames());
        }
    }

    #[test]
    fn bounded_streaming_never_breaches_the_memory_fence(
        matrix in matrices(),
        capacity in 4usize..64,
        batch_size in 1usize..32,
        seed in any::<u64>(),
    ) {
        let config = MegsimConfig::default().with_seed(seed);
        let stream = StreamClusterConfig::default()
            .with_reservoir_capacity(capacity)
            .with_batch_size(batch_size);
        let streamed = select_representatives_stream(&matrix, &config, &stream);
        prop_assert!(
            streamed.peak_rows_retained <= capacity + batch_size,
            "peak {} rows retained breaches the {} + {} fence",
            streamed.peak_rows_retained, capacity, batch_size
        );
        prop_assert_eq!(streamed.selection.labels.len(), matrix.frames());
        let sized: usize = streamed
            .selection
            .representatives
            .iter()
            .map(|r| r.cluster_size)
            .sum();
        prop_assert_eq!(sized, matrix.frames(), "cluster sizes must partition the frames");
        for r in &streamed.selection.representatives {
            prop_assert!(r.frame_index < matrix.frames());
        }
    }
}
