//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking layer:
/// a strategy simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from each generated value — the
    /// standard way to generate dependent shapes (e.g. a dimension,
    /// then vectors of that dimension).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying a predicate (bounded retries, then
    /// panics — mirrors upstream's global rejection limit).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng_mut().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi {
                    return lo;
                }
                // Closed-range draw: open-range draw plus an explicit
                // chance of the upper endpoint, which keeps integer
                // semantics exact and float semantics close enough.
                if rng.next_u64() == 0 {
                    return hi;
                }
                rng.rng_mut().gen_range(lo..hi)
            }
        }
    )+};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng_mut().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi {
                    return lo;
                }
                // Hit the endpoints explicitly now and then so closed
                // bounds (e.g. q in 0.0..=1.0) are actually exercised.
                match rng.next_u64() % 64 {
                    0 => lo,
                    1 => hi,
                    _ => rng.rng_mut().gen_range(lo..hi),
                }
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
