//! Set-associative write-back cache model with LRU replacement.
//!
//! Models the caches of Table I (vertex cache, texture caches, tile
//! cache, L2): 64-byte lines, 2-way associativity, configurable size,
//! banks and access latency. The model is *functional + counting*: it
//! tracks hit/miss/writeback behaviour exactly, while latency is consumed
//! by the timing crate.
//!
//! The hot path is built for the address streams the timing model
//! produces: tags, LRU stamps and valid/dirty flags live in separate
//! way-compact arrays (the hit scan touches only tags and flags), the
//! tag shift is precomputed at construction, and [`Cache::access_run`]
//! services a streak of same-line accesses with a single tag lookup
//! plus replayed tick/stat bookkeeping. The pre-optimization
//! implementation is retained in [`crate::cache_reference`] and pinned
//! bit-for-bit by proptests there.

use serde::{Deserialize, Serialize};

/// Static configuration of one cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Human-readable name used in stats dumps (e.g. `"L2"`).
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (Table I: 64).
    pub line_size: u64,
    /// Associativity (Table I: 2-way).
    pub ways: u32,
    /// Number of banks (affects throughput in the timing model).
    pub banks: u32,
    /// Hit latency in GPU cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two or the geometry is
    /// inconsistent (capacity not divisible by `line_size * ways`).
    pub fn new(
        name: impl Into<String>,
        size_bytes: u64,
        line_size: u64,
        ways: u32,
        banks: u32,
        latency: u64,
    ) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways > 0 && banks > 0, "ways and banks must be non-zero");
        assert_eq!(
            size_bytes % (line_size * u64::from(ways)),
            0,
            "capacity must be divisible by line_size * ways"
        );
        let sets = size_bytes / (line_size * u64::from(ways));
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            name: name.into(),
            size_bytes,
            line_size,
            ways,
            banks,
            latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_size * u64::from(self.ways))
    }
}

/// Hit/miss and traffic counters of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Hits (reads + writes).
    pub hits: u64,
    /// Misses (reads + writes).
    pub misses: u64,
    /// Dirty lines written back on eviction or flush.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Miss ratio in `[0, 1]`; zero when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another stats block (used when merging frames).
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

const FLAG_VALID: u8 = 0b01;
const FLAG_DIRTY: u8 = 0b10;

/// A set-associative write-back, write-allocate cache.
///
/// Line state is stored way-compact (structure-of-arrays): the hit scan
/// walks `ways` consecutive tags + flags, the LRU stamps are touched
/// only on the selected way.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    tags: Vec<u64>,
    last_use: Vec<u64>,
    flags: Vec<u8>,
    tick: u64,
    stats: CacheStats,
    set_mask: u64,
    /// Precomputed `set_mask.count_ones()` — the tag shift.
    set_shift: u32,
    line_shift: u32,
}

impl Cache {
    /// Builds a cold cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let lines = (sets * u64::from(config.ways)) as usize;
        let line_shift = config.line_size.trailing_zeros();
        let set_mask = sets - 1;
        Self {
            set_mask,
            set_shift: set_mask.count_ones(),
            line_shift,
            tags: vec![0; lines],
            last_use: vec![0; lines],
            flags: vec![0; lines],
            tick: 0,
            stats: CacheStats::default(),
            config,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters but keeps cache contents (used between frames to
    /// attribute traffic per frame while modelling warm caches).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Bank servicing `addr` (line-interleaved).
    pub fn bank_of(&self, addr: u64) -> u32 {
        ((addr >> self.line_shift) % u64::from(self.config.banks)) as u32
    }

    /// Line address (cache-line index) of `addr` — two addresses with
    /// equal line addresses can be serviced as one [`Cache::access_run`].
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Accesses `addr`; returns hit/miss and any writeback generated.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.access_run(addr, is_write, 1)
    }

    /// Services `count` back-to-back accesses that all fall on the line
    /// of `addr` with a single tag lookup, replaying the tick and stat
    /// bookkeeping of the equivalent scalar [`Cache::access`] loop
    /// bit-for-bit.
    ///
    /// The returned [`CacheAccess`] describes the **first** access of
    /// the run; the remaining `count - 1` are hits by construction
    /// (the first access leaves the line resident and most recently
    /// used, and nothing else touches the cache inside the run), so
    /// callers charge them the hit latency with no memory traffic.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `count` is zero.
    #[inline]
    pub fn access_run(&mut self, addr: u64, is_write: bool, count: u64) -> CacheAccess {
        debug_assert!(count >= 1, "a run needs at least one access");
        // Scalar replay: each access bumps the tick and re-stamps the
        // line, so the run leaves tick advanced by `count` and the line
        // stamped with the final value.
        self.tick += count;
        if is_write {
            self.stats.writes += count;
        } else {
            self.stats.reads += count;
        }
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let dirty_bit = if is_write { FLAG_DIRTY } else { 0 };
        // Hit probe. The dominant 2-way shape is resolved branchlessly:
        // which way hit is close to a coin flip in steady state, so a
        // branch-per-way scan eats a mispredict on almost every lookup.
        // At most one way can match (a line is filled only after a whole-
        // set miss), so the hit way is the sum of per-way match masks.
        let hit_way = if ways == 2 {
            let m0 = self.flags[base] & FLAG_VALID != 0 && self.tags[base] == tag;
            let m1 = self.flags[base + 1] & FLAG_VALID != 0 && self.tags[base + 1] == tag;
            if m0 | m1 {
                Some(base + m1 as usize)
            } else {
                None
            }
        } else {
            let set_tags = &self.tags[base..base + ways];
            let set_flags = &self.flags[base..base + ways];
            set_tags
                .iter()
                .zip(set_flags)
                .position(|(&t, &f)| f & FLAG_VALID != 0 && t == tag)
                .map(|w| base + w)
        };
        if let Some(way) = hit_way {
            self.last_use[way] = self.tick;
            self.flags[way] |= dirty_bit;
            self.stats.hits += count;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
        // Miss (first access only): find victim (invalid first, else LRU).
        self.stats.misses += 1;
        self.stats.hits += count - 1;
        let mut victim = base;
        for way in base..base + ways {
            if self.flags[way] & FLAG_VALID == 0 {
                victim = way;
                break;
            }
            if self.last_use[way] < self.last_use[victim] {
                victim = way;
            }
        }
        let evicted_flags = self.flags[victim];
        let writeback = if evicted_flags & FLAG_VALID != 0 && evicted_flags & FLAG_DIRTY != 0 {
            self.stats.writebacks += 1;
            let victim_line = (self.tags[victim] << self.set_shift) | set as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        self.tags[victim] = tag;
        self.flags[victim] = FLAG_VALID | dirty_bit;
        self.last_use[victim] = self.tick;
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Writes back all dirty lines and invalidates the cache, returning
    /// the number of writebacks produced (end-of-frame flush).
    pub fn flush(&mut self) -> u64 {
        let mut wb = 0;
        for i in 0..self.flags.len() {
            if self.flags[i] & (FLAG_VALID | FLAG_DIRTY) == FLAG_VALID | FLAG_DIRTY {
                wb += 1;
            }
            self.tags[i] = 0;
            self.last_use[i] = 0;
            self.flags[i] = 0;
        }
        self.stats.writebacks += wb;
        wb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig::new("t", 512, 64, 2, 1, 1))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new("L2", 256 * 1024, 64, 2, 8, 18);
        assert_eq!(c.sets(), 2048);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn config_rejects_bad_geometry() {
        let _ = CacheConfig::new("x", 100, 64, 2, 1, 1);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x7f, false).hit, "same line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        // Set 0 holds lines with line_addr % 4 == 0: 0x000, 0x100, 0x200.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 again; 0x100 is now LRU
        let miss = c.access(0x200, false);
        assert!(!miss.hit);
        assert!(c.access(0x000, false).hit, "recently used line survived");
        assert!(!c.access(0x100, false).hit, "LRU line was evicted");
    }

    #[test]
    fn dirty_eviction_produces_writeback_with_original_address() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        let a = c.access(0x200, false); // evicts 0x000
        assert_eq!(a.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        let a = c.access(0x200, false);
        assert_eq!(a.writeback, None);
    }

    #[test]
    fn flush_writes_back_dirty_lines_and_cools_cache() {
        let mut c = tiny();
        c.access(0x00, true);
        c.access(0x40, false);
        assert_eq!(c.flush(), 1);
        assert!(!c.access(0x00, false).hit, "flush invalidates");
    }

    #[test]
    fn bank_interleaving_is_line_granular() {
        let c = Cache::new(CacheConfig::new("b", 1024, 64, 2, 4, 1));
        assert_eq!(c.bank_of(0x00), 0);
        assert_eq!(c.bank_of(0x40), 1);
        assert_eq!(c.bank_of(0x100), 0);
    }

    #[test]
    fn miss_ratio_counts() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn line_addr_groups_by_line() {
        let c = tiny();
        assert_eq!(c.line_addr(0x00), c.line_addr(0x3f));
        assert_ne!(c.line_addr(0x3f), c.line_addr(0x40));
    }

    #[test]
    fn access_run_equals_scalar_loop() {
        // A run over a cold line: 1 miss + (count-1) hits, end state
        // identical to the scalar loop on a twin cache.
        let mut run = tiny();
        let mut scalar = tiny();
        let first = run.access_run(0x80, true, 4);
        let mut scalar_first = None;
        for i in 0..4 {
            let a = scalar.access(0x80 + i * 8, true);
            if i == 0 {
                scalar_first = Some(a);
            }
        }
        assert_eq!(Some(first), scalar_first);
        assert_eq!(run.stats(), scalar.stats());
        // Same LRU outcome afterwards.
        run.access(0x000, false);
        run.access(0x100, false);
        scalar.access(0x000, false);
        scalar.access(0x100, false);
        assert_eq!(run.access(0x200, false), scalar.access(0x200, false));
    }

    #[test]
    fn access_run_on_resident_line_is_all_hits() {
        let mut c = tiny();
        c.access(0x40, false);
        let a = c.access_run(0x40, false, 5);
        assert!(a.hit);
        assert_eq!(c.stats().hits, 5);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().reads, 6);
    }
}
