//! Output statistics of the cycle-level model — the metrics the paper's
//! accuracy study evaluates (Fig. 7): total cycles, main-memory
//! accesses, L2 accesses and Tile-cache accesses, plus IPC (Table II).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use megsim_funcsim::FrameActivity;
use megsim_mem::{CacheStats, MemoryStats};

/// Busy cycles of each hardware unit (diagnostic breakdown; concurrent
/// units overlap, so these do not sum to `cycles`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitBusy {
    /// Vertex Fetcher (including blocking miss stalls).
    pub vertex_fetch: u64,
    /// Vertex Processor array (aggregate, divided by width).
    pub vertex_alu: u64,
    /// Primitive Assembly.
    pub prim_assembly: u64,
    /// Polygon List Builder writes.
    pub polygon_list_write: u64,
    /// Polygon list read-back in the raster phase.
    pub polygon_list_read: u64,
    /// Rasterizer attribute interpolation.
    pub rasterizer: u64,
    /// Early-Z quad tests.
    pub early_z: u64,
    /// Fragment Processor ALU (max across the array, summed over tiles).
    pub fragment_alu: u64,
    /// Texture pipes (max across the array, summed over tiles).
    pub texture_pipe: u64,
    /// Blending Unit.
    pub blending: u64,
    /// Frame-buffer flush traffic.
    pub flush: u64,
}

impl UnitBusy {
    /// Accumulates another breakdown.
    pub fn merge(&mut self, other: &UnitBusy) {
        self.vertex_fetch += other.vertex_fetch;
        self.vertex_alu += other.vertex_alu;
        self.prim_assembly += other.prim_assembly;
        self.polygon_list_write += other.polygon_list_write;
        self.polygon_list_read += other.polygon_list_read;
        self.rasterizer += other.rasterizer;
        self.early_z += other.early_z;
        self.fragment_alu += other.fragment_alu;
        self.texture_pipe += other.texture_pipe;
        self.blending += other.blending;
        self.flush += other.flush;
    }
}

/// Statistics of one simulated frame.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Total execution cycles of the frame.
    pub cycles: u64,
    /// Cycles spent in the Geometry + Tiling phase.
    pub geometry_cycles: u64,
    /// Cycles spent in the per-tile Raster phase.
    pub raster_cycles: u64,
    /// Shader instructions executed (vertex + fragment).
    pub instructions: u64,
    /// Vertex-cache counters.
    pub vertex_cache: CacheStats,
    /// Texture-cache counters (all four caches merged).
    pub texture_cache: CacheStats,
    /// Tile-cache counters (polygon-list traffic).
    pub tile_cache: CacheStats,
    /// Shared L2 + DRAM counters.
    pub memory: MemoryStats,
    /// On-chip color-buffer accesses (blending).
    pub color_buffer_accesses: u64,
    /// On-chip depth-buffer accesses (Early-Z).
    pub depth_buffer_accesses: u64,
    /// Functional activity of the frame (inputs to the power model).
    /// Shared with the trace it came from — cloning `FrameStats` or
    /// copying a trace's activity in costs a refcount, not a deep copy
    /// of the per-shader vectors; merging unshares lazily.
    pub activity: Arc<FrameActivity>,
    /// Per-unit busy-cycle breakdown.
    pub unit_busy: UnitBusy,
}

impl FrameStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// The paper's "number of main memory accesses".
    pub fn dram_accesses(&self) -> u64 {
        self.memory.dram.accesses()
    }

    /// The paper's "number of L2 cache accesses".
    pub fn l2_accesses(&self) -> u64 {
        self.memory.l2.accesses()
    }

    /// The paper's "number of Tile cache accesses".
    pub fn tile_cache_accesses(&self) -> u64 {
        self.tile_cache.accesses()
    }

    /// Accumulates another frame's statistics (sequence totals, or the
    /// "representative × cluster size" scaling of MEGsim).
    pub fn merge(&mut self, other: &FrameStats) {
        self.cycles += other.cycles;
        self.geometry_cycles += other.geometry_cycles;
        self.raster_cycles += other.raster_cycles;
        self.instructions += other.instructions;
        self.vertex_cache.merge(&other.vertex_cache);
        self.texture_cache.merge(&other.texture_cache);
        self.tile_cache.merge(&other.tile_cache);
        self.memory.merge(&other.memory);
        self.color_buffer_accesses += other.color_buffer_accesses;
        self.depth_buffer_accesses += other.depth_buffer_accesses;
        self.unit_busy.merge(&other.unit_busy);
        if self.activity.vertex_shader_invocations.len()
            == other.activity.vertex_shader_invocations.len()
            && self.activity.fragment_shader_invocations.len()
                == other.activity.fragment_shader_invocations.len()
        {
            Arc::make_mut(&mut self.activity).merge(&other.activity);
        } else if self.activity.vertex_shader_invocations.is_empty()
            && self.activity.fragment_shader_invocations.is_empty()
        {
            self.activity = Arc::clone(&other.activity);
        }
    }

    /// Scales every additive counter by an integer factor — how MEGsim
    /// extrapolates one representative frame to its whole cluster.
    pub fn scaled(&self, factor: u64) -> FrameStats {
        let mut out = FrameStats::default();
        for _ in 0..factor {
            out.merge(self);
        }
        out
    }
}

/// Totals over a simulated frame sequence.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SequenceStats {
    /// Number of frames simulated.
    pub frames: u64,
    /// Summed per-frame statistics.
    pub totals: FrameStats,
}

impl SequenceStats {
    /// Adds one frame.
    pub fn push(&mut self, frame: &FrameStats) {
        self.frames += 1;
        self.totals.merge(frame);
    }

    /// Average cycles per frame.
    pub fn cycles_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.totals.cycles as f64 / self.frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FrameStats {
        FrameStats {
            cycles: 100,
            instructions: 450,
            ..FrameStats::default()
        }
    }

    #[test]
    fn ipc_is_instructions_over_cycles() {
        assert!((sample().ipc() - 4.5).abs() < 1e-12);
        assert_eq!(FrameStats::default().ipc(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.cycles, 200);
        assert_eq!(a.instructions, 900);
    }

    #[test]
    fn scaled_multiplies_counters() {
        let s = sample().scaled(5);
        assert_eq!(s.cycles, 500);
        assert_eq!(s.instructions, 2250);
    }

    #[test]
    fn sequence_tracks_frames() {
        let mut seq = SequenceStats::default();
        seq.push(&sample());
        seq.push(&sample());
        assert_eq!(seq.frames, 2);
        assert_eq!(seq.totals.cycles, 200);
        assert!((seq.cycles_per_frame() - 100.0).abs() < 1e-12);
    }
}
