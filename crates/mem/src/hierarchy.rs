//! The shared L2 + DRAM back end of the memory system.
//!
//! Every L1-class cache of the GPU (vertex cache, texture caches, tile
//! cache) refills through this hierarchy, exactly as in the Fig. 1
//! machine where the L2 sits between all first-level caches and main
//! memory.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig, DramStats};

/// Outcome of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Cycle at which the requested data is available.
    pub ready_at: u64,
    /// End-to-end latency observed by the requesting unit.
    pub latency: u64,
    /// Whether the L2 serviced the request without going to DRAM.
    pub l2_hit: bool,
}

/// Aggregated counters of the shared memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
}

impl MemoryStats {
    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.l2.merge(&other.l2);
        self.dram.merge(&other.dram);
    }
}

/// Shared L2 cache backed by DRAM.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l2: Cache,
    dram: Dram,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from cache and DRAM configurations.
    pub fn new(l2: CacheConfig, dram: DramConfig) -> Self {
        Self {
            l2: Cache::new(l2),
            dram: Dram::new(dram),
        }
    }

    /// The Table I baseline: 256 KiB, 8-bank, 18-cycle L2 over LPDDR3.
    pub fn mali450_baseline() -> Self {
        Self::new(
            CacheConfig::new("L2", 256 * 1024, 64, 2, 8, 18),
            DramConfig::lpddr3_baseline(),
        )
    }

    /// Accesses `addr` through the L2; on a miss the line is fetched from
    /// DRAM and any dirty victim is written back.
    #[inline]
    pub fn access(&mut self, addr: u64, now: u64, is_write: bool) -> HierarchyAccess {
        self.access_run(addr, now, is_write, 1)
    }

    /// Services `count` back-to-back accesses to the line of `addr`, all
    /// issued at cycle `now`, with a single L2 lookup.
    ///
    /// Bit-identical to the scalar loop: only the first access can miss
    /// (and go to DRAM); the remaining `count - 1` are L2 hits because
    /// the first access leaves the line resident and most recently used
    /// and nothing else touches the L2 inside the run. The returned
    /// [`HierarchyAccess`] describes the **first** access; the tail
    /// accesses each observe the plain L2 hit latency.
    pub fn access_run(
        &mut self,
        addr: u64,
        now: u64,
        is_write: bool,
        count: u64,
    ) -> HierarchyAccess {
        let l2_latency = self.l2.config().latency;
        let result = self.l2.access_run(addr, is_write, count);
        if result.hit {
            return HierarchyAccess {
                ready_at: now + l2_latency,
                latency: l2_latency,
                l2_hit: true,
            };
        }
        // Dirty victim goes to DRAM; it does not delay the demand fetch
        // (posted write), but it occupies bus bandwidth.
        if let Some(victim) = result.writeback {
            self.dram.access(victim, now + l2_latency, true);
        }
        let fill = self.dram.access(addr, now + l2_latency, false);
        HierarchyAccess {
            ready_at: fill.ready_at,
            latency: fill.ready_at - now,
            l2_hit: false,
        }
    }

    /// Hit latency of the L2 (used by units that charge the tail of an
    /// access run without re-querying the hierarchy).
    pub fn l2_latency(&self) -> u64 {
        self.l2.config().latency
    }

    /// Flushes the L2, writing dirty lines to DRAM (device idle time at
    /// the end of a warm sequence). Returns the number of writebacks.
    pub fn flush_l2(&mut self) -> u64 {
        self.l2.flush()
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            l2: *self.l2.stats(),
            dram: *self.dram.stats(),
        }
    }

    /// Resets counters (cache/DRAM state persists across frames).
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.dram.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MemoryHierarchy {
        MemoryHierarchy::new(
            CacheConfig::new("L2", 1024, 64, 2, 1, 10),
            DramConfig::lpddr3_baseline(),
        )
    }

    #[test]
    fn l2_hit_costs_l2_latency_only() {
        let mut h = tiny();
        let miss = h.access(0, 0, false);
        assert!(!miss.l2_hit);
        assert!(miss.latency >= 10 + 100);
        let hit = h.access(0, miss.ready_at, false);
        assert!(hit.l2_hit);
        assert_eq!(hit.latency, 10);
    }

    #[test]
    fn miss_counts_dram_access() {
        let mut h = tiny();
        h.access(0, 0, false);
        h.access(0, 500, false);
        let s = h.stats();
        assert_eq!(s.l2.accesses(), 2);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.dram.accesses(), 1);
    }

    #[test]
    fn dirty_l2_victim_reaches_dram() {
        let mut h = tiny();
        // 8 sets; addresses 0x000, 0x200, 0x400 share set 0 (1024/64/2=8).
        h.access(0x000, 0, true);
        h.access(0x200, 0, false);
        h.access(0x400, 0, false); // evicts dirty 0x000
        assert_eq!(h.stats().dram.writes, 1);
    }

    #[test]
    fn access_run_matches_scalar_loop() {
        let mut run = tiny();
        let mut scalar = tiny();
        // Cold line: miss + 3 hits.
        let a = run.access_run(0x80, 0, false, 4);
        let mut first = None;
        for k in 0..4 {
            let b = scalar.access(0x80 + k * 8, 0, false);
            if k == 0 {
                first = Some(b);
            } else {
                assert!(b.l2_hit);
            }
        }
        assert_eq!(Some(a), first);
        assert_eq!(run.stats(), scalar.stats());
        // Warm line: all hits.
        let a = run.access_run(0x80, 1000, true, 3);
        let b = scalar.access(0x80, 1000, true);
        scalar.access(0x90, 1000, true);
        scalar.access(0xa0, 1000, true);
        assert_eq!(a, b);
        assert_eq!(run.stats(), scalar.stats());
    }

    #[test]
    fn flush_cleans_dirty_lines() {
        let mut h = tiny();
        h.access(0, 0, true);
        assert_eq!(h.flush_l2(), 1);
        assert!(!h.access(0, 0, false).l2_hit);
    }
}
