//! Prints Table IV (MEGsim vs random sub-sampling at equal accuracy).
use megsim_bench::experiments::{resimulate_representatives, run_all_megsim, table4};
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    print!(
        "{}",
        table4(&data, &ctx.megsim, ctx.args.seeds, ctx.args.trials)
    );
    // Deployment-style pass: simulate each benchmark's representatives
    // standalone. The content-addressed frame cache serves these from
    // the ground-truth pass; the delta below covers just this pass, not
    // the process lifetime, so the hit rate reflects the pass itself.
    let runs = run_all_megsim(&data, &ctx.megsim);
    let before = megsim_core::frame_cache::report();
    let reps = resimulate_representatives(&data, &runs, &ctx.gpu);
    eprintln!(
        "re-simulated {reps} representative frames; {}",
        megsim_core::frame_cache::report()
            .delta_since(&before)
            .summary()
    );
}
