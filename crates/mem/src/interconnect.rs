//! Inter-GPU interconnect timing model.
//!
//! A [`Link`] is one point-to-point lane of the multi-GPU rig: the path
//! a rendered frame (alternate-frame dispatch) or tile region
//! (split-frame dispatch) takes from a worker GPU to the display GPU.
//! Like the DRAM bus, a link has a fixed propagation latency and a
//! serial occupancy per 64-byte line, and successive transfers queue on
//! it: a transfer issued while the lane is still draining starts when
//! the previous one releases the wire.
//!
//! # The closed-form recurrence
//!
//! Multi-line transfers are serviced by [`Link::transfer_run`] in the
//! style of [`crate::Dram::access_run`]: the first line is charged with
//! the full issue derivation (`start = max(now, free_at)`), and the
//! remaining `count - 1` lines — which by construction find the lane
//! busy with their own predecessor — collapse to one multiplication
//! instead of a per-line loop. The scalar loop is replayed bit-for-bit
//! (pinned by the tests below): occupancy accumulates on `free_at`,
//! stats accumulate per line, and the propagation latency is paid once
//! per line but only the last line's arrival is observable.

use serde::{Deserialize, Serialize};

/// Static configuration of one interconnect link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Propagation latency in GPU cycles (first-byte-out to
    /// first-byte-in; a PCIe-class hop is a few hundred core cycles).
    pub latency: u64,
    /// Serial bandwidth in bytes per GPU cycle.
    pub bytes_per_cycle: u64,
    /// Transfer granularity in bytes (one cache line per burst).
    pub line_size: u64,
}

impl LinkConfig {
    /// A PCIe-3-x8-class lane relative to the Table I machine: twice
    /// the DRAM bus bandwidth, 200-cycle propagation, 64-byte bursts.
    pub const fn baseline() -> Self {
        Self {
            latency: 200,
            bytes_per_cycle: 8,
            line_size: 64,
        }
    }

    /// Lane cycles needed to move one line.
    pub const fn transfer_cycles(&self) -> u64 {
        self.line_size / self.bytes_per_cycle
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Traffic counters of one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Line-sized bursts moved.
    pub transfers: u64,
    /// Payload bytes moved (before line-size rounding).
    pub bytes: u64,
    /// Cycles the lane was occupied by bursts.
    pub busy_cycles: u64,
}

impl LinkStats {
    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &LinkStats) {
        self.transfers += other.transfers;
        self.bytes += other.bytes;
        self.busy_cycles += other.busy_cycles;
    }
}

/// Result of one (possibly multi-line) link transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTransfer {
    /// Cycle at which the last byte has arrived at the far end.
    pub ready_at: u64,
    /// End-to-end latency observed by the issuer (`ready_at - now`).
    pub latency: u64,
}

/// One point-to-point interconnect lane with queueing state.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    transfer: u64,
    /// Cycle at which the lane finishes its last accepted burst.
    free_at: u64,
    stats: LinkStats,
}

impl Link {
    /// Builds an idle link.
    pub fn new(config: LinkConfig) -> Self {
        Self {
            transfer: config.transfer_cycles(),
            free_at: 0,
            stats: LinkStats::default(),
            config,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Resets counters; queueing state persists.
    pub fn reset_stats(&mut self) {
        self.stats = LinkStats::default();
    }

    /// Moves one line across the lane, starting no earlier than `now`.
    #[inline]
    pub fn transfer(&mut self, now: u64) -> LinkTransfer {
        let start = now.max(self.free_at);
        self.free_at = start + self.transfer;
        self.stats.transfers += 1;
        self.stats.busy_cycles += self.transfer;
        let ready_at = self.free_at + self.config.latency;
        LinkTransfer {
            ready_at,
            latency: ready_at - now,
        }
    }

    /// Moves `count` back-to-back lines issued at cycle `now`, replaying
    /// the scalar [`Self::transfer`] loop bit-for-bit.
    ///
    /// After the first line the lane is busy with this run's own
    /// predecessor, so lines `2..=count` start exactly at `free_at`;
    /// their serialization collapses to `count - 1` occupancy terms
    /// added in one step. Returns the **last** line's result (the cycle
    /// the whole payload has landed).
    pub fn transfer_run(&mut self, now: u64, count: u64) -> LinkTransfer {
        debug_assert!(count >= 1, "a run needs at least one transfer");
        let start = now.max(self.free_at);
        self.free_at = start + count * self.transfer;
        self.stats.transfers += count;
        self.stats.busy_cycles += count * self.transfer;
        let ready_at = self.free_at + self.config.latency;
        LinkTransfer {
            ready_at,
            latency: ready_at - now,
        }
    }

    /// Moves a `bytes`-sized payload issued at cycle `now` as line-sized
    /// bursts. Zero-byte payloads touch neither the lane nor the stats.
    pub fn transfer_bytes(&mut self, bytes: u64, now: u64) -> LinkTransfer {
        if bytes == 0 {
            return LinkTransfer {
                ready_at: now,
                latency: 0,
            };
        }
        let lines = bytes.div_ceil(self.config.line_size);
        let t = self.transfer_run(now, lines);
        self.stats.bytes += bytes;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometry() {
        let c = LinkConfig::baseline();
        assert_eq!(c.transfer_cycles(), 8);
        assert_eq!(c.latency, 200);
    }

    #[test]
    fn idle_link_pays_occupancy_plus_latency() {
        let mut l = Link::new(LinkConfig::baseline());
        let t = l.transfer(100);
        assert_eq!(t.ready_at, 100 + 8 + 200);
        assert_eq!(t.latency, 208);
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_lane() {
        let mut l = Link::new(LinkConfig::baseline());
        let a = l.transfer(0);
        // Issued while the lane drains: starts at free_at (8), not 0.
        let b = l.transfer(0);
        assert_eq!(b.ready_at, a.ready_at + 8);
        // Issued after the lane went idle: no queueing delay.
        let c = l.transfer(1_000);
        assert_eq!(c.latency, 208);
    }

    #[test]
    fn transfer_run_matches_scalar_loop() {
        let mut run = Link::new(LinkConfig::baseline());
        let mut scalar = Link::new(LinkConfig::baseline());
        // Pre-load both lanes so the run starts on a busy wire.
        run.transfer(0);
        scalar.transfer(0);
        let a = run.transfer_run(3, 5);
        let mut last = None;
        for _ in 0..5 {
            last = Some(scalar.transfer(3));
        }
        assert_eq!(Some(a), last);
        assert_eq!(run.stats(), scalar.stats());
        // State converged: the next transfer agrees too.
        assert_eq!(run.transfer(10_000), scalar.transfer(10_000));
    }

    #[test]
    fn transfer_bytes_rounds_to_lines_and_counts_payload() {
        let mut l = Link::new(LinkConfig::baseline());
        let t = l.transfer_bytes(65, 0); // 2 lines
        assert_eq!(t.ready_at, 2 * 8 + 200);
        assert_eq!(l.stats().transfers, 2);
        assert_eq!(l.stats().bytes, 65);
        assert_eq!(l.stats().busy_cycles, 16);
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let mut l = Link::new(LinkConfig::baseline());
        let t = l.transfer_bytes(0, 42);
        assert_eq!(t.ready_at, 42);
        assert_eq!(l.stats(), &LinkStats::default());
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = LinkStats {
            transfers: 1,
            bytes: 64,
            busy_cycles: 8,
        };
        a.merge(&a.clone());
        assert_eq!(a.transfers, 2);
        assert_eq!(a.bytes, 128);
        assert_eq!(a.busy_cycles, 16);
    }
}
