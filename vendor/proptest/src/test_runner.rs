//! Case execution: config, RNG, and the runner behind `proptest!`.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

use crate::strategy::Strategy;

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the (many) property suites
        // fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!` precondition; the
    /// runner draws a replacement.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// A rejected (assumed-away) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// The RNG handed to strategies.
///
/// Deterministic per (test name, case index): reruns reproduce the
/// exact same inputs, and the panic message of a failing case names
/// the seed for standalone debugging.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// The underlying `SmallRng`, for range sampling.
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// Runs one property over many sampled cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed_base: u64,
}

impl TestRunner {
    /// Creates a runner whose case seeds derive from `name` (normally
    /// the test's module path + function name), so every test sees an
    /// independent, stable input stream.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            seed_base: hash,
        }
    }

    /// Draws inputs from `strategy` and applies `test` until
    /// `config.cases` cases pass.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (no shrinking), or when
    /// rejections exhaust the retry budget.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let budget = self.config.cases.saturating_mul(16).max(64);
        let mut passed = 0u32;
        for attempt in 0..budget {
            if passed >= self.config.cases {
                return;
            }
            let seed = self
                .seed_base
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest case {} failed (seed {seed:#018x}): {message}",
                        passed + 1
                    );
                }
            }
        }
        panic!(
            "proptest gave up after {budget} attempts: only {passed}/{} cases \
             passed the prop_assume! preconditions",
            self.config.cases
        );
    }
}
