//! Prints Table II (evaluated benchmark set).
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    print!("{}", megsim_bench::experiments::table2(&data));
}
