//! Texture descriptors and texel address computation.
//!
//! Textures never hold pixel data in this simulator — only the metadata
//! needed to turn a `(u, v)` sample into the set of memory addresses the
//! texture caches and DRAM will observe.

use serde::{Deserialize, Serialize};

use crate::math::Vec2;
use crate::shader::TextureFilter;

/// Identifies a texture within one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TextureId(pub u32);

/// Metadata of one texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextureDesc {
    /// Texture identifier.
    pub id: TextureId,
    /// Width in texels (power of two).
    pub width: u32,
    /// Height in texels (power of two).
    pub height: u32,
    /// Bytes per texel (e.g. 4 for RGBA8).
    pub bytes_per_texel: u32,
    /// Base address of mip level 0 in the simulated address space.
    pub base_address: u64,
}

impl TextureDesc {
    /// Creates a texture descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are not powers of two or zero, which
    /// would break the wrap-around addressing below.
    pub fn new(id: u32, width: u32, height: u32, bytes_per_texel: u32, base_address: u64) -> Self {
        assert!(width.is_power_of_two(), "texture width must be a power of two");
        assert!(height.is_power_of_two(), "texture height must be a power of two");
        assert!(bytes_per_texel > 0, "texel size must be non-zero");
        Self {
            id: TextureId(id),
            width,
            height,
            bytes_per_texel,
            base_address,
        }
    }

    /// Total size in bytes of mip level 0.
    pub fn level0_bytes(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * u64::from(self.bytes_per_texel)
    }

    /// Address of the texel at integer coordinates, wrapping (GL_REPEAT).
    ///
    /// Texels are stored in 4×4 tiles (Morton-lite layout) so that a
    /// bilinear footprint usually touches a single cache line, matching
    /// how mobile GPUs lay out textures.
    pub fn texel_address(&self, x: i64, y: i64, level: u32) -> u64 {
        let w = (self.width >> level).max(1);
        let h = (self.height >> level).max(1);
        let x = x.rem_euclid(i64::from(w)) as u64;
        let y = y.rem_euclid(i64::from(h)) as u64;
        // 4×4 texel blocks, row-major blocks, row-major texels inside.
        let bw = u64::from(w.div_ceil(4));
        let block = (y / 4) * bw + x / 4;
        let within = (y % 4) * 4 + x % 4;
        self.level_base(level) + (block * 16 + within) * u64::from(self.bytes_per_texel)
    }

    /// Base address of a mip level.
    fn level_base(&self, level: u32) -> u64 {
        let mut base = self.base_address;
        for l in 0..level {
            let w = u64::from((self.width >> l).max(1));
            let h = u64::from((self.height >> l).max(1));
            base += w * h * u64::from(self.bytes_per_texel);
        }
        base
    }

    /// Highest addressable mip level (down to 1×1).
    pub fn max_level(&self) -> u32 {
        self.width.min(self.height).trailing_zeros()
    }

    /// Generates the memory addresses one sample at `(u, v)` touches for
    /// the given filter mode at mip level 0, pushing them into `out`.
    ///
    /// The number of addresses equals [`TextureFilter::memory_accesses`],
    /// which is the invariant the paper's §III-B weighting relies on.
    pub fn sample_addresses(&self, uv: Vec2, filter: TextureFilter, out: &mut Vec<u64>) {
        self.sample_addresses_lod(uv, filter, 0, out);
    }

    /// LOD-aware variant of [`TextureDesc::sample_addresses`]: samples at
    /// mip `level` (clamped to [`TextureDesc::max_level`]), which is how
    /// the hardware keeps the texel:pixel ratio near one.
    pub fn sample_addresses_lod(
        &self,
        uv: Vec2,
        filter: TextureFilter,
        level: u32,
        out: &mut Vec<u64>,
    ) {
        let level = level.min(self.max_level());
        let w = (self.width >> level).max(1);
        let h = (self.height >> level).max(1);
        let x = (uv.x * w as f32).floor() as i64;
        let y = (uv.y * h as f32).floor() as i64;
        match filter {
            TextureFilter::Nearest => out.push(self.texel_address(x, y, level)),
            TextureFilter::Linear => {
                out.push(self.texel_address(x, y, level));
                out.push(self.texel_address(x + 1, y, level));
            }
            TextureFilter::Bilinear => {
                for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                    out.push(self.texel_address(x + dx, y + dy, level));
                }
            }
            TextureFilter::Trilinear => {
                let next = (level + 1).min(self.max_level());
                for (l, shift) in [(level, 0u32), (next, 1)] {
                    let lx = x >> shift;
                    let ly = y >> shift;
                    for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                        out.push(self.texel_address(lx + dx, ly + dy, l));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tex() -> TextureDesc {
        TextureDesc::new(0, 64, 64, 4, 0x1000)
    }

    #[test]
    fn sample_address_count_matches_filter_weight() {
        let t = tex();
        for filter in TextureFilter::ALL {
            let mut out = Vec::new();
            t.sample_addresses(Vec2::new(0.3, 0.7), filter, &mut out);
            assert_eq!(out.len(), filter.memory_accesses() as usize, "{filter:?}");
        }
    }

    #[test]
    fn addresses_wrap_at_edges() {
        let t = tex();
        let a = t.texel_address(-1, 0, 0);
        let b = t.texel_address(63, 0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn mip_level_bases_do_not_overlap() {
        let t = tex();
        assert!(t.level_base(1) >= t.base_address + t.level0_bytes());
    }

    #[test]
    fn bilinear_footprint_often_shares_cache_line() {
        // With 4×4×4-byte blocks (64 B = one cache line), a footprint
        // entirely inside a block touches one line.
        let t = tex();
        let mut out = Vec::new();
        t.sample_addresses(Vec2::new(1.5 / 64.0, 1.5 / 64.0), TextureFilter::Bilinear, &mut out);
        let lines: std::collections::HashSet<u64> = out.iter().map(|a| a / 64).collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = TextureDesc::new(0, 48, 64, 4, 0);
    }
}
