//! The Raster Pipeline: Rasterizer, Early Z-Test, Fragment Processors
//! and Blending (right half of Fig. 1).
//!
//! Three rendering modes are modeled (paper §II-A and §IV-A):
//!
//! * **TBR** — tile-based rendering (the paper's baseline): tiles are
//!   processed one at a time against an on-chip depth buffer; occluded
//!   fragments that arrive *before* their occluder are still shaded
//!   (overdraw).
//! * **TBDR** — tile-based *deferred* rendering with Hidden Surface
//!   Removal (the PowerVR-style extension the paper names): opaque
//!   geometry is depth-resolved per tile first, and only the final
//!   visible fragment of each pixel is shaded.
//! * **IMR** — immediate-mode rendering: primitives are rasterized in
//!   submission order against a full-screen depth buffer; there is no
//!   Tiling Engine, and every shaded color goes to the frame buffer in
//!   memory immediately (the off-chip-traffic problem §II-A describes).
//!
//! ## The incremental hot path
//!
//! [`rasterize_prim`] is the innermost loop of the whole simulator, so
//! it is written as an *edge-stepped* rasterizer: the row-constant term
//! of each edge function is hoisted out of the pixel loop, a
//! conservative `f64` span test culls quads that provably produce no
//! coverage, and fully-interior quads take a trivial-accept path that
//! skips the per-pixel inside tests. Crucially, every `f32` operation
//! that *does* run executes in exactly the sequence the original scalar
//! rasterizer used, so counters, traces and interpolants stay
//! bit-identical — the seed implementation survives as
//! [`crate::raster_reference`] and an equivalence proptest pins the two
//! together. Work that cannot be observed is skipped entirely: span-
//! culled quads (zero coverage is never traced or counted), UV
//! interpolation when no trace is collected, and `z` interpolation for
//! depth-ignoring draws.

use megsim_gfx::draw::{DrawCall, Frame, Viewport};
use megsim_gfx::geometry::Primitive;
use megsim_gfx::math::Vec2;
use megsim_gfx::shader::ShaderTable;

use crate::activity::FrameActivity;
use crate::binning::{BinScratch, TileBins};
use crate::geometry::{GeomScratch, TransformedDraw};
use crate::renderer::RenderMode;
use crate::trace::{QuadTrace, TilePrim, TileTrace};

/// Pixel offsets of a 2×2 quad, in coverage-bit order (bit i ↔ entry i).
pub(crate) const QUAD_OFFSETS: [(u32, u32); 4] = [(0, 0), (1, 0), (0, 1), (1, 1)];

/// Iterates the quad's pixels as `(coverage mask, dx, dy)` — the shared
/// walk for rasterization and coverage-bit filtering.
#[inline]
pub(crate) fn quad_pixels() -> impl Iterator<Item = (u8, u32, u32)> {
    QUAD_OFFSETS
        .iter()
        .enumerate()
        .map(|(bit, &(dx, dy))| (1u8 << bit, dx, dy))
}

/// Scratch depth (+ HSR winner) buffer, reused across tiles and frames.
/// On-chip in real TBR hardware; in DRAM (behind caches) for IMR.
pub(crate) struct DepthBuffer {
    pub(crate) depth: Vec<f32>,
    /// Sequence number of the currently-winning opaque primitive per
    /// pixel (TBDR only; `u32::MAX` = none).
    pub(crate) winner: Vec<u32>,
    width: u32,
}

impl DepthBuffer {
    pub(crate) fn new() -> Self {
        Self {
            depth: Vec::new(),
            winner: Vec::new(),
            width: 0,
        }
    }

    /// Sizes the buffer for a `width × height` region and clears it. The
    /// winner plane is only touched when `want_winner` is set (HSR); the
    /// other modes never read it, so skipping the fill is unobservable.
    pub(crate) fn reset(&mut self, width: u32, height: u32, want_winner: bool) {
        self.width = width;
        let n = (width * height) as usize;
        if self.depth.len() < n {
            self.depth.resize(n, f32::INFINITY);
        }
        self.depth[..n].fill(f32::INFINITY);
        if want_winner {
            if self.winner.len() < n {
                self.winner.resize(n, u32::MAX);
            }
            self.winner[..n].fill(u32::MAX);
        }
    }

    #[inline]
    pub(crate) fn index(&self, lx: u32, ly: u32) -> usize {
        (ly * self.width + lx) as usize
    }
}

/// How a primitive interacts with the depth buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DepthPolicy {
    /// Test and write (opaque, depth-tested geometry).
    TestWrite,
    /// Test without writing (blended geometry).
    TestOnly,
    /// Always pass (UI layers with depth testing disabled).
    Always,
}

impl DepthPolicy {
    pub(crate) fn of(draw: &DrawCall) -> Self {
        if !draw.depth_test {
            DepthPolicy::Always
        } else if draw.blend.reads_destination() {
            DepthPolicy::TestOnly
        } else {
            DepthPolicy::TestWrite
        }
    }
}

/// Reusable per-worker rasterization state: the depth/winner buffer, the
/// tile quad buffer with its per-primitive ranges, the HSR deferred
/// list, and the geometry/binning scratch — everything the renderer
/// previously allocated per primitive or per frame.
pub struct RasterScratch {
    depth: DepthBuffer,
    /// Quads of the tile currently being rasterized, contiguous per
    /// primitive (ranges tracked by `pending`).
    quads: Vec<QuadTrace>,
    /// `(prim index, start, len)` ranges into `quads` (HSR bookkeeping).
    pending: Vec<(u32, usize, usize)>,
    /// Non-opaque primitives deferred to the HSR second pass.
    deferred: Vec<u32>,
    /// Vertex-cache scratch for the Geometry Pipeline.
    pub(crate) geom: GeomScratch,
    /// Tile-counting scratch for the Tiling Engine.
    pub(crate) bins: BinScratch,
}

impl RasterScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        Self {
            depth: DepthBuffer::new(),
            quads: Vec::new(),
            pending: Vec::new(),
            deferred: Vec::new(),
            geom: GeomScratch::default(),
            bins: BinScratch::default(),
        }
    }
}

impl Default for RasterScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Rasterizes a frame in the requested mode, updating `activity` and —
/// when `collect_trace` is set — returning per-tile (or, for IMR, one
/// whole-screen pseudo-tile) quad traces for the timing model.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_frame(
    frame: &Frame,
    draws: &[TransformedDraw],
    bins: &TileBins,
    viewport: Viewport,
    shaders: &ShaderTable,
    mode: RenderMode,
    activity: &mut FrameActivity,
    collect_trace: bool,
    scratch: &mut RasterScratch,
) -> Vec<TileTrace> {
    match mode {
        RenderMode::TileBased | RenderMode::TileBasedDeferred => rasterize_tiles(
            frame,
            bins,
            viewport,
            shaders,
            mode == RenderMode::TileBasedDeferred,
            activity,
            collect_trace,
            scratch,
        ),
        RenderMode::Immediate => rasterize_immediate(
            frame,
            draws,
            viewport,
            shaders,
            activity,
            collect_trace,
            scratch,
        ),
    }
}

/// TBR / TBDR path: rasterize tile by tile in bin order.
#[allow(clippy::too_many_arguments)]
fn rasterize_tiles(
    frame: &Frame,
    bins: &TileBins,
    viewport: Viewport,
    shaders: &ShaderTable,
    hidden_surface_removal: bool,
    activity: &mut FrameActivity,
    collect_trace: bool,
    scratch: &mut RasterScratch,
) -> Vec<TileTrace> {
    let mut tiles_out = Vec::new();
    let tiles_x = viewport.tiles_x();
    for (tile_index, prim_indices) in bins.touched_tiles() {
        let tx = tile_index % tiles_x;
        let ty = tile_index / tiles_x;
        let rect = viewport.tile_rect(tx, ty);
        let origin = (rect.0, rect.1);
        scratch.depth.reset(
            viewport.tile_size,
            viewport.tile_size,
            hidden_surface_removal,
        );
        let prims_out = if hidden_surface_removal {
            rasterize_tile_hsr(
                frame,
                bins,
                prim_indices,
                rect,
                origin,
                shaders,
                activity,
                collect_trace,
                scratch,
            )
        } else {
            // Straight TBR: a primitive's quads are final as soon as it
            // is rasterized, so count (and trace) immediately — no
            // pending list needed.
            let mut prims_out = Vec::new();
            for &pi in prim_indices {
                let binned = bins.prim(pi);
                let draw = &frame.draws[binned.draw_index as usize];
                let policy = DepthPolicy::of(draw);
                if collect_trace {
                    scratch.quads.clear();
                    rasterize_prim(
                        &binned.prim,
                        rect,
                        origin,
                        policy,
                        None,
                        &mut scratch.depth,
                        &mut Collect::<true>(&mut scratch.quads),
                    );
                    if scratch.quads.is_empty() {
                        continue;
                    }
                    count_prim(draw, &scratch.quads, shaders, activity);
                    let lod = draw
                        .texture
                        .map(|t| texture_lod(&binned.prim, t.width, t.height))
                        .unwrap_or(0);
                    prims_out.push(tile_prim(
                        draw,
                        binned.draw_index,
                        lod,
                        scratch.quads.clone(),
                    ));
                } else {
                    let mut sink = Count::default();
                    rasterize_prim(
                        &binned.prim,
                        rect,
                        origin,
                        policy,
                        None,
                        &mut scratch.depth,
                        &mut sink,
                    );
                    if sink.quads != 0 {
                        count_prim_totals(
                            draw,
                            sink.quads,
                            sink.covered,
                            sink.visible,
                            shaders,
                            activity,
                        );
                    }
                }
            }
            prims_out
        };
        if collect_trace && !prims_out.is_empty() {
            tiles_out.push(TileTrace {
                tile_index,
                prims: prims_out,
            });
        }
    }
    tiles_out
}

/// TBDR: opaque depth/winner resolve, winner filtering, deferred
/// transparents, then counters + trace in submission order.
#[allow(clippy::too_many_arguments)]
fn rasterize_tile_hsr(
    frame: &Frame,
    bins: &TileBins,
    prim_indices: &[u32],
    rect: (u32, u32, u32, u32),
    origin: (u32, u32),
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
    collect_trace: bool,
    scratch: &mut RasterScratch,
) -> Vec<TilePrim> {
    let RasterScratch {
        depth,
        quads,
        pending,
        deferred,
        ..
    } = scratch;
    quads.clear();
    pending.clear();
    deferred.clear();
    // Pass 1: opaque prims resolve depth and the per-pixel winner.
    for &pi in prim_indices {
        let binned = bins.prim(pi);
        let draw = &frame.draws[binned.draw_index as usize];
        let policy = DepthPolicy::of(draw);
        if policy != DepthPolicy::TestWrite {
            // Transparent/UI geometry is shaded after the opaque
            // resolve in a deferred pipeline.
            deferred.push(pi);
            continue;
        }
        let start = quads.len();
        if collect_trace {
            rasterize_prim(
                &binned.prim,
                rect,
                origin,
                policy,
                Some(pi),
                depth,
                &mut Collect::<true>(quads),
            );
        } else {
            rasterize_prim(
                &binned.prim,
                rect,
                origin,
                policy,
                Some(pi),
                depth,
                &mut Collect::<false>(quads),
            );
        }
        let len = quads.len() - start;
        if len > 0 {
            pending.push((pi, start, len));
        }
    }
    // Pass 2: keep only the winning fragments of opaque prims, then
    // shade deferred geometry against the final depth.
    for &(pi, start, len) in pending.iter() {
        for quad in &mut quads[start..start + len] {
            let mut visible = 0u8;
            for (mask, dx, dy) in quad_pixels() {
                if quad.coverage & mask == 0 {
                    continue;
                }
                let lx = u32::from(quad.x) + dx - origin.0;
                let ly = u32::from(quad.y) + dy - origin.1;
                if depth.winner[depth.index(lx, ly)] == pi {
                    visible |= mask;
                }
            }
            let culled = quad.visible.count_ones() - (quad.visible & visible).count_ones();
            activity.fragments_hsr_culled += u64::from(culled);
            quad.visible &= visible;
        }
    }
    for &pi in deferred.iter() {
        let binned = bins.prim(pi);
        let draw = &frame.draws[binned.draw_index as usize];
        let start = quads.len();
        if collect_trace {
            rasterize_prim(
                &binned.prim,
                rect,
                origin,
                DepthPolicy::of(draw),
                None,
                depth,
                &mut Collect::<true>(quads),
            );
        } else {
            rasterize_prim(
                &binned.prim,
                rect,
                origin,
                DepthPolicy::of(draw),
                None,
                depth,
                &mut Collect::<false>(quads),
            );
        }
        let len = quads.len() - start;
        if len > 0 {
            pending.push((pi, start, len));
        }
    }
    // Restore submission order after the deferred append.
    pending.sort_by_key(|&(pi, _, _)| pi);
    // Counters + trace emission.
    let mut prims_out = Vec::new();
    for &(pi, start, len) in pending.iter() {
        let binned = bins.prim(pi);
        let draw = &frame.draws[binned.draw_index as usize];
        let range = &quads[start..start + len];
        count_prim(draw, range, shaders, activity);
        if collect_trace {
            let lod = draw
                .texture
                .map(|t| texture_lod(&binned.prim, t.width, t.height))
                .unwrap_or(0);
            prims_out.push(tile_prim(draw, binned.draw_index, lod, range.to_vec()));
        }
    }
    prims_out
}

/// IMR path: full-screen depth buffer, strict submission order, one
/// whole-screen pseudo-tile in the trace.
fn rasterize_immediate(
    frame: &Frame,
    draws: &[TransformedDraw],
    viewport: Viewport,
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
    collect_trace: bool,
    scratch: &mut RasterScratch,
) -> Vec<TileTrace> {
    scratch.depth.reset(viewport.width, viewport.height, false);
    let rect = (0, 0, viewport.width, viewport.height);
    let mut prims_out = Vec::new();
    for transformed in draws {
        let draw = &frame.draws[transformed.geometry.draw_index as usize];
        let policy = DepthPolicy::of(draw);
        for prim in &transformed.prims {
            if collect_trace {
                scratch.quads.clear();
                rasterize_prim(
                    prim,
                    rect,
                    (0, 0),
                    policy,
                    None,
                    &mut scratch.depth,
                    &mut Collect::<true>(&mut scratch.quads),
                );
                if scratch.quads.is_empty() {
                    continue;
                }
                count_prim(draw, &scratch.quads, shaders, activity);
                let lod = draw
                    .texture
                    .map(|t| texture_lod(prim, t.width, t.height))
                    .unwrap_or(0);
                prims_out.push(tile_prim(
                    draw,
                    transformed.geometry.draw_index,
                    lod,
                    scratch.quads.clone(),
                ));
            } else {
                let mut sink = Count::default();
                rasterize_prim(
                    prim,
                    rect,
                    (0, 0),
                    policy,
                    None,
                    &mut scratch.depth,
                    &mut sink,
                );
                if sink.quads != 0 {
                    count_prim_totals(
                        draw,
                        sink.quads,
                        sink.covered,
                        sink.visible,
                        shaders,
                        activity,
                    );
                }
            }
        }
    }
    if collect_trace && !prims_out.is_empty() {
        vec![TileTrace {
            tile_index: 0,
            prims: prims_out,
        }]
    } else {
        Vec::new()
    }
}

/// Updates the activity counters for one primitive's quads.
pub(crate) fn count_prim(
    draw: &DrawCall,
    quads: &[QuadTrace],
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
) {
    let mut covered = 0u64;
    let mut visible = 0u64;
    for q in quads {
        covered += u64::from(q.covered_count());
        visible += u64::from(q.visible_count());
    }
    count_prim_totals(
        draw,
        quads.len() as u64,
        covered,
        visible,
        shaders,
        activity,
    );
}

/// [`count_prim`] on pre-aggregated totals (the no-trace fast path
/// counts without materializing quads).
fn count_prim_totals(
    draw: &DrawCall,
    quads: u64,
    covered: u64,
    visible: u64,
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
) {
    let fs = shaders.fragment_shader(draw.fragment_shader);
    activity.quads_rasterized += quads;
    activity.fragments_rasterized += covered;
    if draw.depth_test {
        activity.fragments_early_z_culled += covered - visible;
    }
    activity.fragments_shaded += visible;
    activity.fragment_shader_invocations[draw.fragment_shader.0 as usize] += visible;
    activity.fragment_instructions += visible * u64::from(fs.instruction_count());
    if draw.texture.is_some() {
        for filter in &fs.texture_samples {
            let idx = match filter {
                megsim_gfx::shader::TextureFilter::Nearest => 0,
                megsim_gfx::shader::TextureFilter::Linear => 1,
                megsim_gfx::shader::TextureFilter::Bilinear => 2,
                megsim_gfx::shader::TextureFilter::Trilinear => 3,
            };
            activity.texture_samples[idx] += visible;
        }
    }
    activity.blend_ops += visible;
}

/// Builds the trace record of one primitive.
pub(crate) fn tile_prim(
    draw: &DrawCall,
    draw_index: u32,
    lod: u32,
    quads: Vec<QuadTrace>,
) -> TilePrim {
    TilePrim {
        draw_index,
        fragment_shader: draw.fragment_shader,
        texture: draw.texture,
        blend: draw.blend,
        depth_test: draw.depth_test,
        // position(2) + depth + 1/w + uv(2) interpolants.
        attributes: 6,
        lod,
        quads,
    }
}

/// Mip level keeping the texel:pixel ratio near one, from the screen-
/// space UV gradient of the primitive (constant under affine
/// interpolation).
pub(crate) fn texture_lod(prim: &Primitive, tex_w: u32, tex_h: u32) -> u32 {
    let area2 = prim.signed_area2();
    if area2.abs() < 1e-6 {
        return 0;
    }
    let inv = 1.0 / area2;
    let [v0, v1, v2] = &prim.v;
    // Barycentric weight gradients (constant per primitive).
    let dw0 = Vec2::new(v1.y - v2.y, v2.x - v1.x) * inv;
    let dw1 = Vec2::new(v2.y - v0.y, v0.x - v2.x) * inv;
    let dw2 = Vec2::new(v0.y - v1.y, v1.x - v0.x) * inv;
    let dudx = v0.uv.x * dw0.x + v1.uv.x * dw1.x + v2.uv.x * dw2.x;
    let dudy = v0.uv.x * dw0.y + v1.uv.x * dw1.y + v2.uv.x * dw2.y;
    let dvdx = v0.uv.y * dw0.x + v1.uv.y * dw1.x + v2.uv.y * dw2.x;
    let dvdy = v0.uv.y * dw0.y + v1.uv.y * dw1.y + v2.uv.y * dw2.y;
    let texels_per_px =
        (dudx.abs().max(dudy.abs()) * tex_w as f32).max(dvdx.abs().max(dvdy.abs()) * tex_h as f32);
    if texels_per_px <= 1.0 {
        0
    } else {
        (texels_per_px.log2().round() as u32).min(16)
    }
}

/// Where the rasterizer delivers finished quads. Monomorphizing over the
/// sink lets the no-trace characterization pass skip UV interpolation
/// and quad materialization entirely.
trait QuadSink {
    /// Whether the caller observes the quad's interpolated UV (trace
    /// collection); when false the rasterizer skips the interpolation.
    const WANT_UV: bool;
    fn push(&mut self, quad: QuadTrace);
}

/// Appends quads to a buffer. `UV` selects texture-coordinate
/// interpolation (true for trace collection; false for the HSR
/// activity-only pass, which still needs coverage masks for pass 2).
struct Collect<'a, const UV: bool>(&'a mut Vec<QuadTrace>);

impl<const UV: bool> QuadSink for Collect<'_, UV> {
    const WANT_UV: bool = UV;
    #[inline]
    fn push(&mut self, quad: QuadTrace) {
        self.0.push(quad);
    }
}

/// Aggregates quad/fragment totals without storing quads — the TBR/IMR
/// activity-only fast path.
#[derive(Default)]
struct Count {
    quads: u64,
    covered: u64,
    visible: u64,
}

impl QuadSink for Count {
    const WANT_UV: bool = false;
    #[inline]
    fn push(&mut self, quad: QuadTrace) {
        self.quads += 1;
        self.covered += u64::from(quad.covered_count());
        self.visible += u64::from(quad.visible_count());
    }
}

/// Upper bound on the *relative* `f32` evaluation error of an edge
/// function: |e_f32 − e_exact| ≤ ~3·2⁻²⁴·(|Δx·dy| + |Δy·dx|); the factor
/// 8·ε = 16·2⁻²⁴ leaves a ~5× safety slack (and swallows the `f64`
/// rounding of the span arithmetic, which is 2²⁹× smaller still).
const EPS_GUARD: f64 = 8.0 * (f32::EPSILON as f64);

/// Bbox widths at or below this skip the span machinery — for tiny
/// primitives (sprites) the per-row `f64` setup outweighs the skipped
/// pixels. Purely a work heuristic; results are identical either way.
const SPAN_MIN_WIDTH: u32 = 8;

/// Per-quad-row conservative spans, in pixel coordinates.
struct RowSpans {
    /// First/last pixel column that may produce coverage.
    cover: (u32, u32),
    /// Pixel columns provably strictly inside every edge for both pixel
    /// rows (quads fully within are trivially accepted), if any.
    accept: Option<(u32, u32)>,
}

/// Computes the conservative cover/accept column spans of one quad row
/// in `f64`. A pixel outside the cover span has `e_f32 < 0` for some
/// edge — guaranteed by the [`EPS_GUARD`] error bound plus one full
/// pixel of slack on every derived bound — so skipping it cannot change
/// any observable output. Returns `None` when the whole row is culled.
#[allow(clippy::too_many_arguments)]
fn row_spans(
    qy: u32,
    two_rows: bool,
    x0: u32,
    x1: u32,
    org: &[(f64, f64); 3],
    ga: &[f64; 3],
    gb: &[f64; 3],
    maxdx: &[f64; 3],
) -> Option<RowSpans> {
    let y_lo = f64::from(qy) + 0.5;
    let y_hi = if two_rows { y_lo + 1.0 } else { y_lo };
    let first = f64::from(x0);
    let last = f64::from(x1 - 1);
    let mut cov_lo = first;
    let mut cov_hi = last;
    let mut acc_lo = first;
    let mut acc_hi = last;
    let mut acc_ok = true;
    for i in 0..3 {
        let (ox, oy) = org[i];
        let dy0 = y_lo - oy;
        let dy1 = y_hi - oy;
        let t0 = ga[i] * dy0;
        let t1 = ga[i] * dy1;
        let (tmin, tmax) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let margin = EPS_GUARD * (ga[i].abs() * dy0.abs().max(dy1.abs()) + gb[i].abs() * maxdx[i]);
        let b = gb[i];
        if b == 0.0 {
            // Horizontal edge: e is column-independent on this row.
            if tmax < -margin {
                return None;
            }
            if tmin <= margin {
                acc_ok = false;
            }
        } else {
            // e(x) = t − b·(x + 0.5 − ox): monotone in x, so each edge
            // yields one cover bound (e ≥ −margin possible) and one
            // accept bound (e > margin certain), each slackened a pixel.
            let cov_bound = ox - 0.5 + (tmax + margin) / b;
            let acc_bound = ox - 0.5 + (tmin - margin) / b;
            if b > 0.0 {
                cov_hi = cov_hi.min(cov_bound + 1.0);
                acc_hi = acc_hi.min(acc_bound - 1.0);
            } else {
                cov_lo = cov_lo.max(cov_bound - 1.0);
                acc_lo = acc_lo.max(acc_bound + 1.0);
            }
        }
    }
    if cov_lo > cov_hi || cov_hi < first || cov_lo > last {
        return None;
    }
    let px_lo = cov_lo.floor().max(first) as u32;
    let px_hi = cov_hi.ceil().min(last) as u32;
    if px_lo > px_hi {
        return None;
    }
    let accept = if acc_ok && acc_lo <= acc_hi {
        let alo = acc_lo.ceil().max(f64::from(px_lo)) as u32;
        let ahi = acc_hi.floor().min(f64::from(px_hi)) as u32;
        (alo <= ahi).then_some((alo, ahi))
    } else {
        None
    };
    Some(RowSpans {
        cover: (px_lo, px_hi),
        accept,
    })
}

/// Rasterizes one primitive clipped to `rect`, delivering the produced
/// quads to `sink`. Depth is resolved immediately against `depth` (whose
/// local coordinates start at `origin`); when `winner_seq` is set,
/// passing opaque fragments record their primitive in the winner buffer
/// (HSR).
///
/// This is the edge-stepped hot path: per-row edge terms are hoisted
/// out of the pixel loop, `f64` span tests cull provably-empty quads
/// and trivially accept fully-interior ones, and the `f32` arithmetic
/// for surviving pixels replays the reference operation sequence
/// exactly (see the module docs).
fn rasterize_prim<S: QuadSink>(
    prim: &Primitive,
    (rx0, ry0, rx1, ry1): (u32, u32, u32, u32),
    origin: (u32, u32),
    policy: DepthPolicy,
    winner_seq: Option<u32>,
    depth: &mut DepthBuffer,
    sink: &mut S,
) {
    let a = prim.v[0].pos2();
    let b = prim.v[1].pos2();
    let c = prim.v[2].pos2();
    let area2 = prim.signed_area2();
    debug_assert!(area2 > 0.0, "backfaces culled in geometry");
    let inv_area2 = 1.0 / area2;
    // Clamp the primitive bbox to the rect, snapping to even offsets
    // *relative to the rect origin* so whole 2×2 quads are walked even
    // when the rect corner is odd (non-tile-aligned viewports).
    let (min_x, min_y, max_x, max_y) = prim.bounds();
    let x0 = rx0 + ((min_x.floor().max(rx0 as f32) as u32 - rx0) & !1);
    let y0 = ry0 + ((min_y.floor().max(ry0 as f32) as u32 - ry0) & !1);
    let x1 = (max_x.ceil().min(rx1 as f32) as u32).min(rx1);
    let y1 = (max_y.ceil().min(ry1 as f32) as u32).min(ry1);
    if x0 >= x1 || y0 >= y1 {
        return;
    }
    // Top-left fill rule flags per edge.
    let top_left = |p: Vec2, q: Vec2| (p.y == q.y && q.x < p.x) || q.y > p.y;
    let tl = [top_left(a, b), top_left(b, c), top_left(c, a)];
    // Edge setup: edge i runs org[i] → end[i]; the f32 deltas below are
    // the exact differences the reference edge_function computes.
    let org = [a, b, c];
    let end = [b, c, a];
    let mut ea = [0.0f32; 3]; // Δx per edge
    let mut eb = [0.0f32; 3]; // Δy per edge
    for i in 0..3 {
        ea[i] = end[i].x - org[i].x;
        eb[i] = end[i].y - org[i].y;
    }
    // f64 shadow of the edge setup for the conservative span tests.
    let use_spans = x1 - x0 > SPAN_MIN_WIDTH;
    let org64 = [
        (f64::from(a.x), f64::from(a.y)),
        (f64::from(b.x), f64::from(b.y)),
        (f64::from(c.x), f64::from(c.y)),
    ];
    let ga = [f64::from(ea[0]), f64::from(ea[1]), f64::from(ea[2])];
    let gb = [f64::from(eb[0]), f64::from(eb[1]), f64::from(eb[2])];
    let mut maxdx = [0.0f64; 3];
    for i in 0..3 {
        let lo = f64::from(x0) + 0.5 - org64[i].0;
        let hi = f64::from(x1 - 1) + 0.5 - org64[i].0;
        maxdx[i] = lo.abs().max(hi.abs());
    }
    let mut qy = y0;
    while qy < y1 {
        let two_rows = qy + 1 < y1;
        // Hoisted row terms: t32[j][i] = fl(Δx_i · fl(py_c − org_i.y)) —
        // the row-constant partial of the reference edge_function, at
        // identical rounding.
        let py0 = qy as f32 + 0.5;
        let py1 = (qy + 1) as f32 + 0.5;
        let t32 = [
            [
                ea[0] * (py0 - org[0].y),
                ea[1] * (py0 - org[1].y),
                ea[2] * (py0 - org[2].y),
            ],
            [
                ea[0] * (py1 - org[0].y),
                ea[1] * (py1 - org[1].y),
                ea[2] * (py1 - org[2].y),
            ],
        ];
        let spans = if use_spans {
            match row_spans(qy, two_rows, x0, x1, &org64, &ga, &gb, &maxdx) {
                Some(s) => s,
                None => {
                    qy += 2;
                    continue;
                }
            }
        } else {
            RowSpans {
                cover: (x0, x1 - 1),
                accept: None,
            }
        };
        let (px_lo, px_hi) = spans.cover;
        let mut qx = x0 + ((px_lo - x0) & !1);
        let qx_last = x0 + ((px_hi - x0) & !1);
        while qx <= qx_last {
            // Trivial accept: all four samples provably strictly inside
            // every edge — skip the per-pixel inside tests.
            let accepted = two_rows
                && qx + 1 < x1
                && matches!(spans.accept, Some((alo, ahi)) if qx >= alo && qx < ahi);
            let mut coverage = 0u8;
            let mut visible = 0u8;
            let mut uv_sum = Vec2::default();
            let mut covered_px = 0u32;
            for (mask, dx, dy) in quad_pixels() {
                let px = qx + dx;
                let py = qy + dy;
                if px >= x1 || py >= y1 || px < px_lo || px > px_hi {
                    continue;
                }
                let pxf = px as f32 + 0.5;
                let j = dy as usize;
                let e0 = t32[j][0] - eb[0] * (pxf - org[0].x);
                let e1 = t32[j][1] - eb[1] * (pxf - org[1].x);
                let e2 = t32[j][2] - eb[2] * (pxf - org[2].x);
                if !accepted {
                    let inside = (e0 > 0.0 || (e0 == 0.0 && tl[0]))
                        && (e1 > 0.0 || (e1 == 0.0 && tl[1]))
                        && (e2 > 0.0 || (e2 == 0.0 && tl[2]));
                    if !inside {
                        continue;
                    }
                }
                coverage |= mask;
                covered_px += 1;
                if S::WANT_UV || policy != DepthPolicy::Always {
                    // Affine barycentric interpolation (e0 spans edge
                    // a→b and therefore weights vertex 2, etc.).
                    let w2 = e0 * inv_area2;
                    let w0 = e1 * inv_area2;
                    let w1 = e2 * inv_area2;
                    if S::WANT_UV {
                        let uv = prim.v[0].uv * w0 + prim.v[1].uv * w1 + prim.v[2].uv * w2;
                        uv_sum = uv_sum + uv;
                    }
                    if policy == DepthPolicy::Always {
                        visible |= mask;
                    } else {
                        let z = prim.v[0].z * w0 + prim.v[1].z * w1 + prim.v[2].z * w2;
                        let idx = depth.index(px - origin.0, py - origin.1);
                        if z < depth.depth[idx] {
                            visible |= mask;
                            if policy == DepthPolicy::TestWrite {
                                depth.depth[idx] = z;
                                if let Some(seq) = winner_seq {
                                    depth.winner[idx] = seq;
                                }
                            }
                        }
                    }
                } else {
                    // Depth-ignoring draw with no trace: z and uv are
                    // unobservable, so only coverage is tracked.
                    visible |= mask;
                }
            }
            if coverage != 0 {
                sink.push(QuadTrace {
                    x: qx as u16,
                    y: qy as u16,
                    coverage,
                    visible,
                    uv: if S::WANT_UV {
                        uv_sum / covered_px.max(1) as f32
                    } else {
                        Vec2::default()
                    },
                });
            }
            qx += 2;
        }
        qy += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::bin_primitives;
    use crate::trace::DrawGeometry;
    use megsim_gfx::draw::BlendMode;
    use megsim_gfx::geometry::{Mesh, ScreenVertex, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn sv(x: f32, y: f32, z: f32) -> ScreenVertex {
        ScreenVertex {
            x,
            y,
            z,
            inv_w: 1.0,
            uv: Vec2::new(x / 64.0, y / 64.0),
        }
    }

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 8));
        t.add(ShaderProgram::fragment(
            0,
            "fs",
            6,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn dummy_draw(blend: BlendMode, depth_test: bool, textured: bool) -> DrawCall {
        DrawCall {
            mesh: Arc::new(Mesh::new(vec![Vertex::at(Vec3::ZERO); 3], vec![0, 1, 2], 0)),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: textured.then(|| TextureDesc::new(0, 64, 64, 4, 0x1000)),
            blend,
            depth_test,
        }
    }

    fn transformed(prims: Vec<Primitive>, draw_index: u32) -> TransformedDraw {
        TransformedDraw {
            geometry: DrawGeometry {
                draw_index,
                vertex_shader: ShaderId(0),
                vertex_shader_instructions: 8,
                vertex_fetch_addresses: vec![],
                vertices_shaded: 3,
                primitives_assembled: prims.len() as u32,
                primitives_emitted: prims.len() as u32,
            },
            prims,
        }
    }

    /// A screen-aligned right triangle covering roughly half of a square
    /// with corner `(x, y)` and size `s`.
    fn tri_at(x: f32, y: f32, s: f32, z: f32) -> Primitive {
        Primitive {
            v: [sv(x, y, z), sv(x + s, y, z), sv(x, y + s, z)],
        }
    }

    fn run_mode(
        prims_per_draw: Vec<(Vec<Primitive>, DrawCall)>,
        viewport: Viewport,
        mode: RenderMode,
    ) -> (FrameActivity, Vec<TileTrace>) {
        let mut frame = Frame::new();
        let mut draws = Vec::new();
        let mut act = FrameActivity::new(1, 1);
        for (i, (prims, draw)) in prims_per_draw.into_iter().enumerate() {
            frame.draws.push(draw);
            draws.push(transformed(prims, i as u32));
        }
        let mut scratch = RasterScratch::new();
        let bins = bin_primitives(&draws, viewport, &mut act, &mut scratch.bins);
        let tiles = rasterize_frame(
            &frame,
            &draws,
            &bins,
            viewport,
            &shaders(),
            mode,
            &mut act,
            true,
            &mut scratch,
        );
        (act, tiles)
    }

    #[test]
    fn tbr_counts_match_covered_area() {
        let viewport = Viewport::new(64, 64, 32);
        let (act, tiles) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 32.0, 0.5)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBased,
        );
        assert!((act.fragments_rasterized as i64 - 512).abs() <= 32);
        assert_eq!(act.fragments_shaded, act.fragments_rasterized);
        assert_eq!(act.fragments_early_z_culled, 0);
        assert_eq!(tiles.len(), 1);
    }

    #[test]
    fn tbr_early_z_culls_only_back_to_front_overdraw() {
        let viewport = Viewport::new(32, 32, 32);
        // Near first, then far: far is culled by early-Z.
        let (act, _) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 16.0, 0.2), tri_at(0.0, 0.0, 16.0, 0.8)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBased,
        );
        assert_eq!(act.fragments_early_z_culled * 2, act.fragments_rasterized);
        // Far first, then near: both are shaded (overdraw).
        let (act2, _) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 16.0, 0.8), tri_at(0.0, 0.0, 16.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBased,
        );
        assert_eq!(act2.fragments_early_z_culled, 0);
        assert_eq!(act2.fragments_shaded, act2.fragments_rasterized);
    }

    #[test]
    fn tbdr_removes_overdraw_regardless_of_order() {
        let viewport = Viewport::new(32, 32, 32);
        // Far first, then near — the worst case for TBR.
        let (act, _) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 16.0, 0.8), tri_at(0.0, 0.0, 16.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBasedDeferred,
        );
        // Only the near triangle's fragments are shaded.
        assert_eq!(act.fragments_shaded * 2, act.fragments_rasterized);
        assert!(act.fragments_hsr_culled > 0);
    }

    #[test]
    fn tbdr_still_shades_transparents_on_top() {
        let viewport = Viewport::new(32, 32, 32);
        let (act, _) = run_mode(
            vec![
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.5)],
                    dummy_draw(BlendMode::Opaque, true, false),
                ),
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.2)],
                    dummy_draw(BlendMode::AlphaBlend, true, false),
                ),
            ],
            viewport,
            RenderMode::TileBasedDeferred,
        );
        // Opaque + transparent both visible: 2 layers shaded.
        assert_eq!(act.fragments_shaded, act.fragments_rasterized);
        assert_eq!(act.fragments_hsr_culled, 0);
    }

    #[test]
    fn tbdr_occludes_transparent_behind_opaque() {
        let viewport = Viewport::new(32, 32, 32);
        let (act, _) = run_mode(
            vec![
                // Transparent submitted first but *behind* the opaque.
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.8)],
                    dummy_draw(BlendMode::AlphaBlend, true, false),
                ),
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.2)],
                    dummy_draw(BlendMode::Opaque, true, false),
                ),
            ],
            viewport,
            RenderMode::TileBasedDeferred,
        );
        // Only the opaque layer is shaded: the transparent fails the
        // deferred depth test.
        assert_eq!(act.fragments_shaded * 2, act.fragments_rasterized);
    }

    #[test]
    fn imr_produces_single_pseudo_tile_spanning_screen() {
        let viewport = Viewport::new(128, 128, 32);
        // A triangle crossing several tile boundaries.
        let (act, tiles) = run_mode(
            vec![(
                vec![tri_at(10.0, 10.0, 100.0, 0.5)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::Immediate,
        );
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].tile_index, 0);
        assert!(act.fragments_shaded > 0);
        // One primitive = one trace entry (no per-tile splitting).
        assert_eq!(tiles[0].prims.len(), 1);
    }

    #[test]
    fn imr_and_tbr_shade_the_same_fragments() {
        let viewport = Viewport::new(64, 64, 32);
        let scene = || {
            vec![(
                vec![tri_at(4.0, 4.0, 48.0, 0.5), tri_at(10.0, 10.0, 20.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )]
        };
        let (tbr, _) = run_mode(scene(), viewport, RenderMode::TileBased);
        let (imr, _) = run_mode(scene(), viewport, RenderMode::Immediate);
        assert_eq!(tbr.fragments_rasterized, imr.fragments_rasterized);
        assert_eq!(tbr.fragments_shaded, imr.fragments_shaded);
    }

    #[test]
    fn trace_quads_agree_with_counters_in_all_modes() {
        let viewport = Viewport::new(64, 64, 32);
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let (act, tiles) = run_mode(
                vec![(
                    vec![tri_at(3.0, 5.0, 20.0, 0.4), tri_at(6.0, 7.0, 18.0, 0.3)],
                    dummy_draw(BlendMode::Opaque, true, true),
                )],
                viewport,
                mode,
            );
            let visible: u64 = tiles
                .iter()
                .flat_map(|t| &t.prims)
                .flat_map(|p| &p.quads)
                .map(|q| u64::from(q.visible_count()))
                .sum();
            assert_eq!(visible, act.fragments_shaded, "{mode:?}");
        }
    }

    #[test]
    fn odd_viewport_keeps_quads_aligned_to_tile_origins() {
        // 33×33 target with 11-pixel tiles: tile origins (0, 11, 22) are
        // odd, which the old `& !1` snap mis-aligned (it could step a
        // quad *below* the tile origin and underflow the local index).
        let viewport = Viewport::new(33, 33, 11);
        let scene = || {
            vec![(
                vec![tri_at(1.0, 1.0, 30.0, 0.4), tri_at(13.0, 2.0, 17.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )]
        };
        let (tbr, _) = run_mode(scene(), viewport, RenderMode::TileBased);
        // IMR's rect starts at (0, 0), so its rasterization is immune to
        // the tile-origin snapping and serves as the oracle.
        let (imr, _) = run_mode(scene(), viewport, RenderMode::Immediate);
        assert!(tbr.fragments_rasterized > 0);
        assert_eq!(tbr.fragments_rasterized, imr.fragments_rasterized);
        assert_eq!(tbr.fragments_shaded, imr.fragments_shaded);
        // 33×33 with a 32 tile: a single ragged-edge tile per axis pair.
        let viewport33 = Viewport::new(33, 33, 32);
        let (tbr33, _) = run_mode(scene(), viewport33, RenderMode::TileBased);
        let (imr33, _) = run_mode(scene(), viewport33, RenderMode::Immediate);
        assert_eq!(tbr33.fragments_rasterized, imr33.fragments_rasterized);
    }

    #[test]
    fn lod_selection_scales_with_screen_size() {
        // A triangle whose UVs span [0, 1] regardless of screen size: a
        // tiny one compresses many texels per pixel (high mip), a big
        // one approaches 1 texel/pixel (level 0).
        let unit_uv_tri = |s: f32| {
            let mut p = tri_at(0.0, 0.0, s, 0.5);
            p.v[0].uv = Vec2::new(0.0, 0.0);
            p.v[1].uv = Vec2::new(1.0, 0.0);
            p.v[2].uv = Vec2::new(0.0, 1.0);
            p
        };
        let small = unit_uv_tri(4.0);
        let big = unit_uv_tri(512.0);
        assert!(texture_lod(&small, 512, 512) > texture_lod(&big, 512, 512));
        assert_eq!(texture_lod(&big, 512, 512), 0);
    }
}
