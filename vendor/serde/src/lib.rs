//! Offline vendored stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types
//! to keep them serialization-ready, but no code path actually
//! serializes today (there is no `serde_json`/`bincode` in the tree).
//! The build container cannot reach crates.io, so this stub provides
//! just enough surface for the derives and imports to compile: marker
//! traits plus no-op derive macros. Swapping the real crate back in is
//! a one-line change in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
