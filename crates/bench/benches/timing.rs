//! Timing-simulator benchmarks: cycle-level `simulate_frame` throughput
//! across the three rendering architectures for the retained scalar
//! reference model vs the coalesced fast path, plus the warm-sequence
//! pipeline (render ahead while timing consumes in order). Timing is
//! the expensive pass MEGsim only runs on representative frames, so its
//! throughput sets the cost of every ground-truth and validation run.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use megsim_funcsim::{FrameTrace, RenderConfig, RenderMode, Renderer};
use megsim_timing::{Gpu, GpuConfig, ReferenceGpu};
use megsim_workloads::by_alias;

const MODES: [(&str, RenderMode); 3] = [
    ("tbr", RenderMode::TileBased),
    ("tbdr", RenderMode::TileBasedDeferred),
    ("imr", RenderMode::Immediate),
];

fn config_for(mode: RenderMode) -> GpuConfig {
    let mut cfg = GpuConfig::mali450_like();
    cfg.render_mode = mode;
    cfg
}

fn bench_simulate_frame_modes(c: &mut Criterion) {
    let workload = by_alias("bbr1", 0.02, 7).expect("known alias");
    let shaders = workload.shaders();
    let frame = workload.frame(workload.frames() / 2);

    let mut group = c.benchmark_group("timing_simulate_frame_modes");
    group.sample_size(10);
    for (name, mode) in MODES {
        let cfg = config_for(mode);
        let renderer = Renderer::new(RenderConfig {
            viewport: cfg.viewport,
            mode,
        });
        let trace = renderer.render_frame(&frame, shaders);
        group.bench_function(name, |b| {
            let mut gpu = Gpu::new(cfg.clone());
            b.iter(|| black_box(gpu.simulate_frame(&trace, shaders).cycles));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulate_frame_modes
}

/// Best-of-five wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..5)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures single-thread frames/sec of the retained scalar reference
/// timing model vs the coalesced fast path across the three rendering
/// modes, plus the sequential-vs-pipelined warm-sequence throughput,
/// and merges the numbers into `BENCH_3.json` at the repo root.
fn write_bench_summary() {
    let workload = by_alias("bbr1", 0.02, 7).expect("known alias");
    let shaders = workload.shaders();
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut total_reference = 0.0;
    let mut total_optimized = 0.0;
    for (name, mode) in MODES {
        let cfg = config_for(mode);
        let renderer = Renderer::new(RenderConfig {
            viewport: cfg.viewport,
            mode,
        });
        let traces: Vec<FrameTrace> = workload
            .iter_frames()
            .map(|f| renderer.render_frame(&f, shaders))
            .collect();
        let n = traces.len() as f64;
        // Fresh GPU per pass so every pass sees the same cold-to-warm
        // cache trajectory; the two models stay bit-identical per frame.
        let reference = secs(|| {
            let mut gpu = ReferenceGpu::new(cfg.clone());
            for t in &traces {
                black_box(gpu.simulate_frame(t, shaders).cycles);
            }
        });
        let optimized = secs(|| {
            let mut gpu = Gpu::new(cfg.clone());
            for t in &traces {
                black_box(gpu.simulate_frame(t, shaders).cycles);
            }
        });
        total_reference += reference;
        total_optimized += optimized;
        println!(
            "timing {name}: reference {:.1} frames/s, optimized {:.1} frames/s ({:.2}x)",
            n / reference,
            n / optimized,
            reference / optimized
        );
        entries.push((
            format!("timing_{name}_reference_frames_per_sec"),
            n / reference,
        ));
        entries.push((
            format!("timing_{name}_optimized_frames_per_sec"),
            n / optimized,
        ));
        entries.push((format!("timing_{name}_speedup"), reference / optimized));
    }
    let overall = total_reference / total_optimized;
    println!("timing overall single-thread speedup: {overall:.2}x");
    entries.push(("timing_overall_speedup".to_string(), overall));

    // Warm-sequence pipeline: functional rendering of frame N + 1
    // overlaps timing of frame N. Both paths use the optimized timing
    // model and produce bit-identical statistics; the delta is pure
    // render/timing overlap, so the gain is largest when the two
    // per-frame costs are comparable — bbr1's 3-D frames render and
    // time at similar rates on the Table I machine.
    let workload = by_alias("bbr1", 0.02, 7).expect("known alias");
    let cfg = GpuConfig::mali450_like();
    let frames = workload.frames() as f64;
    megsim_exec::set_threads(1);
    let sequential = secs(|| {
        black_box(megsim_core::simulate_sequence_warm_sequential(
            workload.iter_frames(),
            workload.shaders(),
            &cfg,
        ));
    });
    megsim_exec::set_threads(0);
    let pipelined = secs(|| {
        black_box(megsim_core::simulate_sequence_warm(
            workload.iter_frames(),
            workload.shaders(),
            &cfg,
        ));
    });
    // The overlap needs at least two hardware threads (one rendering,
    // one timing); on a single-CPU box the producer thread only adds
    // context switches, so the recorded core count qualifies the ratio
    // and the printed note keeps a ~1.0x reading from looking like a
    // regression.
    let cores = megsim_bench::report::available_cores();
    println!(
        "warm sequence bbr1: sequential {:.1} frames/s, pipelined {:.1} frames/s ({:.2}x on {cores} core(s)){}",
        frames / sequential,
        frames / pipelined,
        sequential / pipelined,
        megsim_bench::report::core_note(cores)
    );
    entries.push((
        "timing_warm_sequential_frames_per_sec".to_string(),
        frames / sequential,
    ));
    entries.push((
        "timing_warm_pipelined_frames_per_sec".to_string(),
        frames / pipelined,
    ));
    entries.push((
        "timing_warm_pipeline_speedup".to_string(),
        sequential / pipelined,
    ));
    entries.push(("timing_warm_pipeline_cores".to_string(), cores as f64));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_3.json");
    if let Err(e) = megsim_bench::report::merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    benches();
    write_bench_summary();
}
