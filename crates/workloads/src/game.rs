//! Scripted synthetic games.
//!
//! A [`Workload`] generates a deterministic sequence of [`Frame`]s from
//! a *timeline* of scripted segments (menu, straight, turn, boss, …).
//! Segments of the same template produce statistically similar frames —
//! the recurring phase behaviour that real gameplay exhibits and that
//! MEGsim's clustering exploits — while per-frame noise, sinusoidal
//! intensity modulation and occasional spikes keep frames from being
//! identical.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::Mesh;
use megsim_gfx::math::{Mat4, Vec3};
use megsim_gfx::shader::{ShaderId, ShaderTable};
use megsim_gfx::texture::TextureDesc;

/// 2-D (sprite/orthographic) or 3-D (perspective) game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GameType {
    /// Orthographic sprite game.
    TwoD,
    /// Perspective 3-D game.
    ThreeD,
}

impl std::fmt::Display for GameType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameType::TwoD => write!(f, "2D"),
            GameType::ThreeD => write!(f, "3D"),
        }
    }
}

/// One drawable object family within a segment template.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    /// Index into the workload's mesh library.
    pub mesh: usize,
    /// Vertex shader used by instances of this class.
    pub vertex_shader: ShaderId,
    /// Fragment shader used by instances of this class.
    pub fragment_shader: ShaderId,
    /// Index into the workload's texture library, if textured.
    pub texture: Option<usize>,
    /// Blend mode (particles/UI are blended).
    pub blend: BlendMode,
    /// Whether instances are depth tested.
    pub depth_test: bool,
    /// Baseline instance count per frame.
    pub base_count: f64,
    /// Amplitude of the sinusoidal count modulation.
    pub count_amplitude: f64,
    /// Frequency of the modulation, radians per frame.
    pub wobble_freq: f64,
    /// World-space (3-D) or NDC-space (2-D) size of one instance.
    pub size: f32,
    /// Rotation about the X axis (radians), used to tilt terrain strips
    /// toward the camera.
    pub tilt: f32,
    /// Mean camera distance band for 3-D placement.
    pub distance: f32,
}

/// A reusable segment recipe (e.g. "straight road", "menu").
#[derive(Debug, Clone)]
pub struct SegmentTemplate {
    /// Human-readable label (shows up in experiment dumps).
    pub label: String,
    /// Object classes active while this template plays.
    pub classes: Vec<ObjectClass>,
}

/// One occurrence of a template on the timeline.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Index into the template list.
    pub template: usize,
    /// First frame of the segment.
    pub start: usize,
    /// Length in frames.
    pub len: usize,
    /// Per-occurrence intensity multiplier (~1.0).
    pub intensity: f64,
}

/// A complete synthetic game workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Full game name (e.g. `"Beach Buggy Racing"`).
    pub name: String,
    /// Short alias used in the paper's tables (e.g. `"bbr1"`).
    pub alias: String,
    /// 2-D or 3-D.
    pub game_type: GameType,
    shaders: ShaderTable,
    textures: Vec<TextureDesc>,
    meshes: Vec<Arc<Mesh>>,
    templates: Vec<SegmentTemplate>,
    timeline: Vec<Segment>,
    frames: usize,
    seed: u64,
    /// Relative per-frame count noise (e.g. 0.05 = ±5 %).
    noise: f64,
    /// Probability a frame doubles one class's count (explosions …).
    spike_probability: f64,
    /// Load multiplier of the first frames of each segment (scene
    /// build, asset instantiation, full-screen fades). Decays over the
    /// first few frames; 1.0 disables the effect.
    transition_boost: f64,
}

/// Builder-style constructor input for [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Full game name.
    pub name: String,
    /// Table II alias.
    pub alias: String,
    /// 2-D or 3-D.
    pub game_type: GameType,
    /// Shader library.
    pub shaders: ShaderTable,
    /// Texture library.
    pub textures: Vec<TextureDesc>,
    /// Mesh library.
    pub meshes: Vec<Arc<Mesh>>,
    /// Segment templates.
    pub templates: Vec<SegmentTemplate>,
    /// Timeline as (template index, frame count) pairs.
    pub timeline: Vec<(usize, usize)>,
    /// Master seed.
    pub seed: u64,
    /// Per-frame relative noise.
    pub noise: f64,
    /// Spike probability per frame.
    pub spike_probability: f64,
    /// Load multiplier of segment-transition frames (≥ 1.0).
    pub transition_boost: f64,
}

impl Workload {
    /// Builds a workload from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the timeline references unknown templates, a class
    /// references an unknown mesh/texture/shader, or the timeline is
    /// empty.
    pub fn new(spec: WorkloadSpec) -> Self {
        assert!(!spec.timeline.is_empty(), "timeline must not be empty");
        for t in &spec.templates {
            for c in &t.classes {
                assert!(c.mesh < spec.meshes.len(), "unknown mesh index");
                if let Some(tx) = c.texture {
                    assert!(tx < spec.textures.len(), "unknown texture index");
                }
                assert!(
                    (c.vertex_shader.0 as usize) < spec.shaders.vertex_count(),
                    "unknown vertex shader"
                );
                assert!(
                    (c.fragment_shader.0 as usize) < spec.shaders.fragment_count(),
                    "unknown fragment shader"
                );
            }
        }
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xC0FF_EE00);
        let mut timeline = Vec::with_capacity(spec.timeline.len());
        let mut start = 0usize;
        for &(template, len) in &spec.timeline {
            assert!(template < spec.templates.len(), "unknown template index");
            timeline.push(Segment {
                template,
                start,
                len,
                intensity: 1.0 + rng.gen_range(-0.06..0.06),
            });
            start += len;
        }
        Self {
            name: spec.name,
            alias: spec.alias,
            game_type: spec.game_type,
            shaders: spec.shaders,
            textures: spec.textures,
            meshes: spec.meshes,
            templates: spec.templates,
            timeline,
            frames: start,
            seed: spec.seed,
            noise: spec.noise,
            spike_probability: spec.spike_probability,
            transition_boost: spec.transition_boost.max(1.0),
        }
    }

    /// Number of frames in the sequence.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The game's shader library.
    pub fn shaders(&self) -> &ShaderTable {
        &self.shaders
    }

    /// The segment templates (for reporting).
    pub fn templates(&self) -> &[SegmentTemplate] {
        &self.templates
    }

    /// The timeline (for reporting).
    pub fn timeline(&self) -> &[Segment] {
        &self.timeline
    }

    /// The segment active at frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.frames()`.
    pub fn segment_at(&self, i: usize) -> &Segment {
        assert!(i < self.frames, "frame index out of range");
        let pos = self
            .timeline
            .partition_point(|s| s.start + s.len <= i);
        &self.timeline[pos]
    }

    /// Generates frame `i` deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.frames()`.
    pub fn frame(&self, i: usize) -> Frame {
        let segment = *self.segment_at(i);
        let template = &self.templates[segment.template];
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let t = i as f32 * 0.03;
        let spike_class = if rng.gen_bool(self.spike_probability) {
            Some(rng.gen_range(0..template.classes.len().max(1)))
        } else {
            None
        };
        // Segment transitions are expensive: the first frames carry the
        // scene build / fade-in load, decaying geometrically. The window
        // scales with the segment (1 frame for short test segments, up
        // to 3 for full-length ones) so scaled-down sequences keep the
        // same transition *fraction* as paper-sized ones.
        let offset = i - segment.start;
        let window = (segment.len / 12).clamp(1, 3);
        let transition = if offset < window {
            1.0 + (self.transition_boost - 1.0) * 0.5f64.powi(offset as i32)
        } else {
            1.0
        };
        let mut frame = Frame::new();
        for (ci, class) in template.classes.iter().enumerate() {
            let wobble = (t as f64 * class.wobble_freq + ci as f64 * 1.7).sin();
            let mut count = (class.base_count * segment.intensity
                + class.count_amplitude * wobble)
                * transition;
            count *= 1.0 + self.noise * rng.gen_range(-1.0..1.0);
            if spike_class == Some(ci) {
                count *= 2.0;
            }
            let count = count.round().max(0.0) as usize;
            for j in 0..count {
                frame
                    .draws
                    .push(self.instance(class, ci, j, i, t, &mut rng));
            }
        }
        frame
    }

    /// Iterates over all frames of the sequence.
    pub fn iter_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.frames).map(move |i| self.frame(i))
    }

    fn instance(
        &self,
        class: &ObjectClass,
        class_index: usize,
        j: usize,
        frame_index: usize,
        t: f32,
        rng: &mut SmallRng,
    ) -> DrawCall {
        // Stable per-(class, instance) placement that drifts with time:
        // instances keep their identity across frames of a segment.
        let mut prng = SmallRng::seed_from_u64(
            self.seed ^ ((class_index as u64) << 32) ^ (j as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let px = prng.gen_range(-0.85..0.85f32);
        let py = prng.gen_range(-0.75..0.75f32);
        let phase = prng.gen_range(0.0..std::f32::consts::TAU);
        let drift_x = (t * 0.8 + phase).sin() * 0.12;
        let drift_y = (t * 0.5 + phase).cos() * 0.08;
        let _ = frame_index;
        let transform = match self.game_type {
            GameType::TwoD => {
                // Orthographic: place directly in NDC; layer by class.
                let layer = class_index as f32 * 0.01 + j as f32 * 1e-4;
                Mat4::translation(Vec3::new(px + drift_x, py + drift_y, -layer))
                    * Mat4::rotation_z((t + phase) * 0.3)
                    * Mat4::rotation_x(class.tilt)
                    * Mat4::scale(Vec3::splat(class.size))
            }
            GameType::ThreeD => {
                let dist = class.distance * (1.0 + 0.3 * (t * 0.4 + phase).sin());
                let proj = Mat4::perspective(1.05, 2.0, 0.5, 120.0);
                proj * Mat4::translation(Vec3::new(
                    (px + drift_x) * dist * 0.9,
                    (py + drift_y) * dist * 0.55,
                    -dist,
                )) * Mat4::rotation_y(t * 0.7 + phase)
                    * Mat4::rotation_x(class.tilt)
                    * Mat4::scale(Vec3::splat(class.size))
            }
        };
        let _ = rng;
        DrawCall {
            mesh: Arc::clone(&self.meshes[class.mesh]),
            transform,
            vertex_shader: class.vertex_shader,
            fragment_shader: class.fragment_shader,
            texture: class.texture.map(|i| self.textures[i]),
            blend: class.blend,
            depth_test: class.depth_test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meshes::unit_quad;
    use megsim_gfx::shader::ShaderProgram;

    fn tiny_workload(frames_per_segment: usize) -> Workload {
        let mut shaders = ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "v0", 10));
        shaders.add(ShaderProgram::vertex(1, "v1", 20));
        shaders.add(ShaderProgram::fragment(0, "f0", 8, vec![]));
        shaders.add(ShaderProgram::fragment(1, "f1", 16, vec![]));
        let class = |vs: u32, fs: u32, base: f64| ObjectClass {
            mesh: 0,
            vertex_shader: ShaderId(vs),
            fragment_shader: ShaderId(fs),
            texture: None,
            blend: BlendMode::Opaque,
            depth_test: true,
            base_count: base,
            count_amplitude: 1.0,
            wobble_freq: 0.5,
            size: 0.2,
            tilt: 0.0,
            distance: 5.0,
        };
        Workload::new(WorkloadSpec {
            name: "Test Game".into(),
            alias: "tst".into(),
            game_type: GameType::TwoD,
            shaders,
            textures: vec![],
            meshes: vec![unit_quad(0)],
            templates: vec![
                SegmentTemplate {
                    label: "menu".into(),
                    classes: vec![class(0, 0, 3.0)],
                },
                SegmentTemplate {
                    label: "play".into(),
                    classes: vec![class(1, 1, 10.0), class(0, 1, 4.0)],
                },
            ],
            timeline: vec![(0, frames_per_segment), (1, frames_per_segment), (0, frames_per_segment)],
            seed: 42,
            noise: 0.05,
            spike_probability: 0.0,
            transition_boost: 1.0,
        })
    }

    #[test]
    fn frame_count_is_timeline_total() {
        let w = tiny_workload(10);
        assert_eq!(w.frames(), 30);
    }

    #[test]
    fn segments_resolve_by_frame_index() {
        let w = tiny_workload(10);
        assert_eq!(w.segment_at(0).template, 0);
        assert_eq!(w.segment_at(10).template, 1);
        assert_eq!(w.segment_at(19).template, 1);
        assert_eq!(w.segment_at(29).template, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_at_rejects_overflow() {
        let w = tiny_workload(10);
        let _ = w.segment_at(30);
    }

    #[test]
    fn frames_are_deterministic() {
        let w = tiny_workload(10);
        let a = w.frame(5);
        let b = w.frame(5);
        assert_eq!(a.draws.len(), b.draws.len());
        for (x, y) in a.draws.iter().zip(&b.draws) {
            assert_eq!(x.transform, y.transform);
            assert_eq!(x.vertex_shader, y.vertex_shader);
        }
    }

    #[test]
    fn different_segments_use_different_shaders() {
        let w = tiny_workload(10);
        let menu = w.frame(2);
        let play = w.frame(15);
        assert!(menu.draws.iter().all(|d| d.vertex_shader == ShaderId(0)));
        assert!(play.draws.iter().any(|d| d.vertex_shader == ShaderId(1)));
        assert!(play.draws.len() > menu.draws.len());
    }

    #[test]
    fn same_template_segments_are_similar() {
        let w = tiny_workload(10);
        // Frames 2 and 22 are both "menu": draw counts within noise.
        let a = w.frame(2).draws.len() as f64;
        let b = w.frame(22).draws.len() as f64;
        assert!((a - b).abs() <= 3.0, "a = {a}, b = {b}");
    }

    #[test]
    fn iter_frames_covers_sequence() {
        let w = tiny_workload(5);
        assert_eq!(w.iter_frames().count(), 15);
    }

    #[test]
    #[should_panic(expected = "unknown mesh")]
    fn spec_validation_catches_bad_mesh() {
        let mut w = tiny_workload(1);
        let mut spec_template = w.templates()[0].clone();
        spec_template.classes[0].mesh = 99;
        // Rebuild with a corrupted template.
        let mut shaders = ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "v0", 10));
        shaders.add(ShaderProgram::fragment(0, "f0", 8, vec![]));
        w = Workload::new(WorkloadSpec {
            name: "x".into(),
            alias: "x".into(),
            game_type: GameType::TwoD,
            shaders,
            textures: vec![],
            meshes: vec![unit_quad(0)],
            templates: vec![spec_template],
            timeline: vec![(0, 1)],
            seed: 0,
            noise: 0.0,
            spike_probability: 0.0,
            transition_boost: 1.0,
        });
        let _ = w;
    }
}
