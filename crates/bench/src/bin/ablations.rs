//! Runs the design-choice ablation studies called out in DESIGN.md §5:
//! weighting scheme, BIC threshold, texture-filter weighting, k-means
//! initialization and the BIC stop rule.
use megsim_bench::experiments::{
    ablation_init, ablation_patience, ablation_selection_criterion, ablation_texture_weights,
    ablation_threshold, ablation_weights,
};
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    println!("{}", ablation_weights(&data, &ctx.megsim));
    println!("{}", ablation_threshold(&data, &ctx.megsim));
    println!("{}", ablation_texture_weights(&data, &ctx.megsim));
    println!("{}", ablation_init(&data, &ctx.megsim));
    println!("{}", ablation_patience(&data, &ctx.megsim));
    println!("{}", ablation_selection_criterion(&data, &ctx.megsim));
}
