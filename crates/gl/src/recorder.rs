//! Records rendered frames as a GL command stream — the role of
//! TEAPOT's interception layer between the application and the driver.
//!
//! The recorder deduplicates resources (meshes, textures, programs are
//! uploaded once) and emits state-change commands only when the state
//! actually differs from the current one, which is what makes command
//! traces compact compared to per-frame scene dumps.

use std::collections::HashMap;
use std::sync::Arc;

use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::Mesh;
use megsim_gfx::math::Mat4;
use megsim_gfx::shader::{ShaderId, ShaderTable};
use megsim_gfx::texture::TextureId;

use crate::command::{BufferId, Command, CommandStream};

/// Incremental command-stream recorder.
#[derive(Debug)]
pub struct Recorder {
    stream: CommandStream,
    buffers: HashMap<*const Mesh, BufferId>,
    /// Keeps mesh payloads alive while their raw pointers key `buffers`.
    retained: Vec<Arc<Mesh>>,
    textures_seen: HashMap<TextureId, bool>,
    program: Option<(ShaderId, ShaderId)>,
    texture: Option<Option<TextureId>>,
    matrix: Option<Mat4>,
    blend: Option<BlendMode>,
    depth: Option<bool>,
}

impl Recorder {
    /// Starts a recording with the workload's shader library uploaded in
    /// the prelude.
    pub fn new(shaders: &ShaderTable) -> Self {
        let mut stream = CommandStream::new();
        for p in shaders.vertex_shaders().chain(shaders.fragment_shaders()) {
            stream.commands.push(Command::ProgramData(p.clone()));
        }
        Self {
            stream,
            buffers: HashMap::new(),
            retained: Vec::new(),
            textures_seen: HashMap::new(),
            program: None,
            texture: None,
            matrix: None,
            blend: None,
            depth: None,
        }
    }

    /// Records one frame's draw calls followed by a SwapBuffers.
    pub fn record_frame(&mut self, frame: &Frame) {
        for draw in &frame.draws {
            self.record_draw(draw);
        }
        self.stream.commands.push(Command::SwapBuffers);
    }

    fn record_draw(&mut self, draw: &DrawCall) {
        // Resource uploads (once per object, identified by allocation).
        let key = Arc::as_ptr(&draw.mesh);
        let buffer = match self.buffers.get(&key) {
            Some(&id) => id,
            None => {
                let id = BufferId(self.buffers.len() as u32);
                self.buffers.insert(key, id);
                self.retained.push(Arc::clone(&draw.mesh));
                self.stream.commands.push(Command::BufferData {
                    id,
                    mesh: (*draw.mesh).clone(),
                });
                id
            }
        };
        if let Some(tex) = draw.texture {
            if self.textures_seen.insert(tex.id, true).is_none() {
                self.stream.commands.push(Command::TexImage(tex));
            }
        }
        // State changes (only when different).
        let program = (draw.vertex_shader, draw.fragment_shader);
        if self.program != Some(program) {
            self.program = Some(program);
            self.stream.commands.push(Command::UseProgram {
                vertex: program.0,
                fragment: program.1,
            });
        }
        let tex_id = draw.texture.map(|t| t.id);
        if self.texture != Some(tex_id) {
            self.texture = Some(tex_id);
            self.stream.commands.push(Command::BindTexture(tex_id));
        }
        if self.matrix != Some(draw.transform) {
            self.matrix = Some(draw.transform);
            self.stream
                .commands
                .push(Command::UniformMatrix(draw.transform));
        }
        if self.blend != Some(draw.blend) {
            self.blend = Some(draw.blend);
            self.stream.commands.push(Command::Blend(draw.blend));
        }
        if self.depth != Some(draw.depth_test) {
            self.depth = Some(draw.depth_test);
            self.stream
                .commands
                .push(Command::DepthTest(draw.depth_test));
        }
        self.stream.commands.push(Command::Draw(buffer));
    }

    /// Finishes the recording and returns the stream.
    pub fn finish(self) -> CommandStream {
        self.stream
    }
}

/// Records a whole frame sequence in one call.
pub fn record_sequence<'a>(
    shaders: &ShaderTable,
    frames: impl IntoIterator<Item = &'a Frame>,
) -> CommandStream {
    let mut rec = Recorder::new(shaders);
    for f in frames {
        rec.record_frame(f);
    }
    rec.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::geometry::Vertex;
    use megsim_gfx::math::Vec3;
    use megsim_gfx::shader::ShaderProgram;
    use megsim_gfx::texture::TextureDesc;

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "v", 5));
        t.add(ShaderProgram::fragment(0, "f", 5, vec![]));
        t
    }

    fn frame_with_draws(mesh: &Arc<Mesh>, n: usize) -> Frame {
        let mut f = Frame::new();
        for i in 0..n {
            f.draws.push(DrawCall {
                mesh: Arc::clone(mesh),
                transform: Mat4::translation(Vec3::new(i as f32, 0.0, 0.0)),
                vertex_shader: ShaderId(0),
                fragment_shader: ShaderId(0),
                texture: Some(TextureDesc::new(0, 64, 64, 4, 0x1000)),
                blend: BlendMode::Opaque,
                depth_test: true,
            });
        }
        f
    }

    fn mesh() -> Arc<Mesh> {
        Arc::new(Mesh::new(
            vec![Vertex::at(Vec3::ZERO); 3],
            vec![0, 1, 2],
            0x40,
        ))
    }

    #[test]
    fn resources_are_uploaded_once() {
        let m = mesh();
        let frames = [frame_with_draws(&m, 3), frame_with_draws(&m, 2)];
        let stream = record_sequence(&shaders(), &frames);
        let uploads = stream
            .commands
            .iter()
            .filter(|c| matches!(c, Command::BufferData { .. }))
            .count();
        let tex_uploads = stream
            .commands
            .iter()
            .filter(|c| matches!(c, Command::TexImage(_)))
            .count();
        assert_eq!(uploads, 1);
        assert_eq!(tex_uploads, 1);
        assert_eq!(stream.frame_count(), 2);
        assert_eq!(stream.draw_count(), 5);
    }

    #[test]
    fn unchanged_state_is_not_reissued() {
        let m = mesh();
        let frames = [frame_with_draws(&m, 4)];
        let stream = record_sequence(&shaders(), &frames);
        // One UseProgram/Blend/DepthTest/BindTexture for 4 draws; the
        // matrix changes per draw.
        let count = |pred: fn(&Command) -> bool| stream.commands.iter().filter(|c| pred(c)).count();
        assert_eq!(count(|c| matches!(c, Command::UseProgram { .. })), 1);
        assert_eq!(count(|c| matches!(c, Command::Blend(_))), 1);
        assert_eq!(count(|c| matches!(c, Command::DepthTest(_))), 1);
        assert_eq!(count(|c| matches!(c, Command::BindTexture(_))), 1);
        assert_eq!(count(|c| matches!(c, Command::UniformMatrix(_))), 4);
    }

    #[test]
    fn prelude_carries_all_programs() {
        let stream = record_sequence(&shaders(), &[]);
        let programs = stream
            .commands
            .iter()
            .filter(|c| matches!(c, Command::ProgramData(_)))
            .count();
        assert_eq!(programs, 2);
    }
}
