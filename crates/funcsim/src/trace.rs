//! The GPU trace handed from the functional simulator to the
//! cycle-level timing model — the equivalent of TEAPOT's "GPU trace"
//! produced by its instrumented Softpipe renderer.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use megsim_gfx::draw::{BlendMode, Viewport};
use megsim_gfx::math::Vec2;
use megsim_gfx::shader::ShaderId;
use megsim_gfx::texture::TextureDesc;

use crate::activity::FrameActivity;
use crate::renderer::RenderMode;

/// Geometry-phase record of one draw call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawGeometry {
    /// Index of the draw call within the frame.
    pub draw_index: u32,
    /// Vertex shader used.
    pub vertex_shader: ShaderId,
    /// ALU instructions of that shader (denormalized for the hot loop).
    pub vertex_shader_instructions: u32,
    /// Addresses fetched by the Vertex Fetcher, in fetch order.
    pub vertex_fetch_addresses: Vec<u64>,
    /// Unique vertices shaded by the Vertex Processors.
    pub vertices_shaded: u32,
    /// Triangles assembled (pre-cull).
    pub primitives_assembled: u32,
    /// Triangles surviving clip/cull, forwarded to the Tiling Engine.
    pub primitives_emitted: u32,
}

/// One 2×2 quad of fragments produced by the rasterizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadTrace {
    /// Pixel X of the quad's top-left corner.
    pub x: u16,
    /// Pixel Y of the quad's top-left corner.
    pub y: u16,
    /// Coverage bitmask (bit i = pixel i of the quad is covered).
    pub coverage: u8,
    /// Bitmask of covered pixels that also survived Early-Z.
    pub visible: u8,
    /// Texture coordinate at the quad centroid.
    pub uv: Vec2,
}

impl QuadTrace {
    /// Number of covered fragments.
    pub fn covered_count(self) -> u32 {
        self.coverage.count_ones()
    }

    /// Number of fragments that reach the Fragment Processors.
    pub fn visible_count(self) -> u32 {
        self.visible.count_ones()
    }
}

/// The rasterization work of one primitive within one tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilePrim {
    /// Index of the owning draw call.
    pub draw_index: u32,
    /// Fragment shader applied to visible fragments.
    pub fragment_shader: ShaderId,
    /// Texture bound, if any.
    pub texture: Option<TextureDesc>,
    /// Blend mode of the draw.
    pub blend: BlendMode,
    /// Whether depth testing was enabled.
    pub depth_test: bool,
    /// Number of vertex attributes the rasterizer interpolates
    /// (position + depth + uv components; Table I rasterizes one
    /// attribute per cycle).
    pub attributes: u32,
    /// Mip level selected for this primitive's texture samples (the
    /// texel:pixel ≈ 1 LOD the hardware would pick).
    pub lod: u32,
    /// Quads produced inside this tile.
    pub quads: Vec<QuadTrace>,
}

/// All rasterization work binned to one screen tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileTrace {
    /// Flattened tile index (row-major).
    pub tile_index: u32,
    /// Primitives overlapping this tile, in submission order.
    pub prims: Vec<TilePrim>,
}

/// The complete per-frame trace: geometry phase + per-tile raster work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameTrace {
    /// Rendering mode the trace was produced under.
    pub mode: RenderMode,
    /// Render-target geometry.
    pub viewport: Viewport,
    /// Geometry-phase records, one per draw call.
    pub geometry: Vec<DrawGeometry>,
    /// Non-empty tiles in row-major order.
    pub tiles: Vec<TileTrace>,
    /// Aggregate activity counters of the frame, shared by reference:
    /// the timing model's [`FrameStats`] keeps a handle to the same
    /// allocation instead of deep-cloning the per-shader vectors.
    ///
    /// [`FrameStats`]: https://docs.rs/megsim-timing
    pub activity: Arc<FrameActivity>,
}

impl FrameTrace {
    /// Total visible fragments across all tiles (must equal
    /// `activity.fragments_shaded`; checked by integration tests).
    pub fn visible_fragments(&self) -> u64 {
        self.tiles
            .iter()
            .flat_map(|t| &t.prims)
            .flat_map(|p| &p.quads)
            .map(|q| u64::from(q.visible_count()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_counts_follow_masks() {
        let q = QuadTrace {
            x: 0,
            y: 0,
            coverage: 0b1011,
            visible: 0b0011,
            uv: Vec2::default(),
        };
        assert_eq!(q.covered_count(), 3);
        assert_eq!(q.visible_count(), 2);
    }
}
