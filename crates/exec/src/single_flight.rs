//! In-flight computation dedup ("single-flight") for content-addressed
//! work.
//!
//! [`ConcurrentCache::get_or_insert_with`](crate::ConcurrentCache)
//! deliberately computes outside any lock, so two threads missing on
//! the same key both compute — fine for cheap values, wasteful when the
//! value is a full frame simulation. A [`SingleFlight`] map closes that
//! window: the first thread to claim a key becomes the *leader* and
//! computes; any thread arriving while the computation is in flight
//! becomes a *follower*, blocks, and receives a clone of the leader's
//! result. This is what lets two concurrent batch campaigns hitting the
//! same frame simulate it once.
//!
//! Correctness relies on the same content-addressing contract as the
//! cache: a value is a pure function of its key, so serving a follower
//! the leader's result is bit-identical to computing it again.
//!
//! ## Panic safety
//!
//! If a leader's computation panics, the flight is *poisoned*: every
//! follower wakes, abandons the dead flight, and re-contends — one of
//! them becomes the next leader and simply computes. The panic
//! propagates only on the leader's thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`SingleFlight::run`] call obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// This thread ran the computation.
    Led,
    /// This thread waited for a concurrent identical computation and
    /// shares its result.
    Shared,
}

/// State of one in-flight computation.
enum FlightState<V> {
    Running,
    Done(V),
    /// The leader panicked; followers must re-contend.
    Poisoned,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// Marks the flight poisoned if the leader unwinds before publishing.
struct PoisonGuard<'a, V> {
    flights: &'a Mutex<HashMap<u128, Arc<Flight<V>>>>,
    flight: &'a Arc<Flight<V>>,
    key: u128,
    armed: bool,
}

impl<V> Drop for PoisonGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            // Remove first so re-contending followers start a fresh
            // flight instead of re-joining the dead one.
            self.flights.lock().expect("flight map").remove(&self.key);
            *self.flight.state.lock().expect("flight state") = FlightState::Poisoned;
            self.flight.done.notify_all();
        }
    }
}

/// A keyed in-flight computation dedup map.
///
/// Holds one entry per key *currently being computed*; completed
/// flights are removed immediately, so memory is bounded by concurrency
/// rather than key cardinality (long-term storage is the cache's job).
pub struct SingleFlight<V> {
    flights: Mutex<HashMap<u128, Arc<Flight<V>>>>,
    shared_served: AtomicU64,
}

impl<V: Clone> SingleFlight<V> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            flights: Mutex::new(HashMap::new()),
            shared_served: AtomicU64::new(0),
        }
    }

    /// Returns `compute()`'s value for `key`, running it on this thread
    /// if no identical computation is in flight, otherwise waiting for
    /// the one that is.
    ///
    /// `compute` must be a pure function of `key` (the value may be
    /// served to concurrent callers). Panics in `compute` propagate to
    /// the leader and make the followers re-contend.
    pub fn run(&self, key: u128, compute: impl FnOnce() -> V) -> (V, FlightOutcome) {
        // One compute closure, shared across loop iterations of the
        // re-contention path (a follower whose leader panicked).
        let mut compute = Some(compute);
        loop {
            let (flight, leader) = {
                let mut flights = self.flights.lock().expect("flight map");
                match flights.get(&key) {
                    Some(flight) => (Arc::clone(flight), false),
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Running),
                            done: Condvar::new(),
                        });
                        flights.insert(key, Arc::clone(&flight));
                        (flight, true)
                    }
                }
            };
            if leader {
                let mut guard = PoisonGuard {
                    flights: &self.flights,
                    flight: &flight,
                    key,
                    armed: true,
                };
                let value = (compute.take().expect("leader computes once"))();
                guard.armed = false;
                drop(guard);
                self.flights.lock().expect("flight map").remove(&key);
                *flight.state.lock().expect("flight state") = FlightState::Done(value.clone());
                flight.done.notify_all();
                return (value, FlightOutcome::Led);
            }
            // Follower: wait for the leader to publish or poison.
            let mut state = flight.state.lock().expect("flight state");
            loop {
                match &*state {
                    FlightState::Running => {
                        state = flight.done.wait(state).expect("flight state");
                    }
                    FlightState::Done(value) => {
                        self.shared_served.fetch_add(1, Ordering::Relaxed);
                        return (value.clone(), FlightOutcome::Shared);
                    }
                    FlightState::Poisoned => break,
                }
            }
            // Leader died; loop and re-contend for a fresh flight.
        }
    }

    /// How many calls were served a shared in-flight result instead of
    /// computing — the batch dedup factor's numerator.
    pub fn shared_served(&self) -> u64 {
        self.shared_served.load(Ordering::Relaxed)
    }

    /// Keys currently being computed.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flight map").len()
    }
}

impl<V: Clone> Default for SingleFlight<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_lead() {
        let sf = SingleFlight::new();
        let (v, outcome) = sf.run(1, || 10u64);
        assert_eq!((v, outcome), (10, FlightOutcome::Led));
        // The flight is gone once done: the next call computes afresh.
        let (v, outcome) = sf.run(1, || 20u64);
        assert_eq!((v, outcome), (20, FlightOutcome::Led));
        assert_eq!(sf.in_flight(), 0);
        assert_eq!(sf.shared_served(), 0);
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let sf = Arc::new(SingleFlight::new());
        let computes = Arc::new(AtomicU64::new(0));
        let gate = Arc::new(Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let computes = Arc::clone(&computes);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    let (v, _) = sf.run(42, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // Widen the in-flight window so followers pile up.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        7u64
                    });
                    assert_eq!(v, 7);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // All eight calls raced the same key. At least one led; the
        // sleep makes "exactly one" overwhelmingly likely, but the only
        // *guarantee* is computes + shared == 8.
        let computes = computes.load(Ordering::Relaxed);
        assert!(computes >= 1);
        assert_eq!(computes + sf.shared_served(), 8);
        assert!(
            sf.shared_served() > 0,
            "no dedup observed despite the window"
        );
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let sf = Arc::new(SingleFlight::new());
        let threads: Vec<_> = (0..4u64)
            .map(|k| {
                let sf = Arc::clone(&sf);
                std::thread::spawn(move || sf.run(u128::from(k), move || k * 3).0)
            })
            .collect();
        let values: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(values, vec![0, 3, 6, 9]);
        assert_eq!(sf.shared_served(), 0);
    }

    #[test]
    fn leader_panic_poisons_and_followers_recover() {
        let sf = Arc::new(SingleFlight::new());
        let gate = Arc::new(Barrier::new(2));
        let leader = {
            let sf = Arc::clone(&sf);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _ = sf.run(9, || {
                    gate.wait();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    panic!("leader dies");
                    #[allow(unreachable_code)]
                    0u64
                });
            })
        };
        let follower = {
            let sf = Arc::clone(&sf);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                gate.wait();
                // Arrive while the leader is (probably) still alive;
                // either join-and-recover or lead directly — both must
                // produce the value.
                sf.run(9, || 5u64).0
            })
        };
        assert!(leader.join().is_err(), "leader panic must propagate");
        assert_eq!(follower.join().unwrap(), 5);
        assert_eq!(sf.in_flight(), 0, "poisoned flight must not leak");
    }
}
