//! Property tests over randomized scenes: the invariants that must hold
//! between the three rendering modes and within each mode's counters.

use std::sync::Arc;

use proptest::prelude::*;

use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Mat4, Vec3};
use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::TextureDesc;

fn shaders() -> ShaderTable {
    let mut t = ShaderTable::new();
    t.add(ShaderProgram::vertex(0, "vs", 10));
    t.add(ShaderProgram::fragment(
        0,
        "fs",
        7,
        vec![TextureFilter::Bilinear],
    ));
    t
}

fn quad_mesh() -> Arc<Mesh> {
    Arc::new(Mesh::new(
        vec![
            Vertex::at(Vec3::new(-0.5, -0.5, 0.0)),
            Vertex::at(Vec3::new(0.5, -0.5, 0.0)),
            Vertex::at(Vec3::new(0.5, 0.5, 0.0)),
            Vertex::at(Vec3::new(-0.5, 0.5, 0.0)),
        ],
        vec![0, 1, 2, 0, 2, 3],
        0x40,
    ))
}

/// A random scene of 1-8 opaque quads at random positions/sizes/depths.
fn scene_strategy() -> impl Strategy<Value = Frame> {
    prop::collection::vec(
        (
            -0.9f32..0.9,    // x
            -0.9f32..0.9,    // y
            -0.9f32..0.9,    // depth layer
            0.05f32..0.6,    // size
            prop::bool::ANY, // textured
            prop::bool::ANY, // blended
        ),
        1..8,
    )
    .prop_map(|objs| {
        let mesh = quad_mesh();
        let mut frame = Frame::new();
        for (x, y, z, s, textured, blended) in objs {
            frame.draws.push(DrawCall {
                mesh: Arc::clone(&mesh),
                transform: Mat4::translation(Vec3::new(x, y, z)) * Mat4::scale(Vec3::splat(s)),
                vertex_shader: ShaderId(0),
                fragment_shader: ShaderId(0),
                texture: textured.then(|| TextureDesc::new(0, 64, 64, 4, 0x1_0000)),
                blend: if blended {
                    BlendMode::AlphaBlend
                } else {
                    BlendMode::Opaque
                },
                depth_test: true,
            });
        }
        frame
    })
}

fn render(frame: &Frame, mode: RenderMode) -> megsim_funcsim::FrameTrace {
    Renderer::new(RenderConfig {
        viewport: Viewport::new(192, 128, 32),
        mode,
    })
    .render_frame(frame, &shaders())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counters_are_internally_consistent_in_every_mode(frame in scene_strategy()) {
        for mode in [RenderMode::TileBased, RenderMode::TileBasedDeferred, RenderMode::Immediate] {
            let t = render(&frame, mode);
            let a = &t.activity;
            prop_assert!(a.fragments_shaded <= a.fragments_rasterized, "{mode:?}");
            prop_assert_eq!(t.visible_fragments(), a.fragments_shaded, "{:?}", mode);
            prop_assert_eq!(
                a.fragment_shader_invocations.iter().sum::<u64>(),
                a.fragments_shaded,
                "{:?}", mode
            );
            prop_assert!(a.primitives_emitted <= a.primitives_assembled);
            prop_assert_eq!(
                a.primitives_assembled,
                a.primitives_emitted
                    + a.primitives_clipped
                    + a.primitives_culled_backface
                    + a.primitives_culled_degenerate
            );
            // Quads hold at most 4 fragments each.
            prop_assert!(a.fragments_rasterized <= a.quads_rasterized * 4);
        }
    }

    #[test]
    fn geometry_counters_are_mode_independent(frame in scene_strategy()) {
        let tbr = render(&frame, RenderMode::TileBased).activity;
        let tbdr = render(&frame, RenderMode::TileBasedDeferred).activity;
        let imr = render(&frame, RenderMode::Immediate).activity;
        prop_assert_eq!(tbr.vertices_shaded, tbdr.vertices_shaded);
        prop_assert_eq!(tbr.vertices_shaded, imr.vertices_shaded);
        prop_assert_eq!(tbr.primitives_emitted, tbdr.primitives_emitted);
        prop_assert_eq!(tbr.primitives_emitted, imr.primitives_emitted);
        // PRIM — MEGsim's tiling feature — is architecture-independent,
        // which is exactly the §III-B claim about the input parameters.
        prop_assert_eq!(tbr.vertex_shader_invocations, imr.vertex_shader_invocations);
    }

    #[test]
    fn hsr_never_shades_more_than_tbr(frame in scene_strategy()) {
        let tbr = render(&frame, RenderMode::TileBased).activity;
        let tbdr = render(&frame, RenderMode::TileBasedDeferred).activity;
        prop_assert!(tbdr.fragments_shaded <= tbr.fragments_shaded);
        prop_assert_eq!(tbr.fragments_rasterized, tbdr.fragments_rasterized);
    }

    #[test]
    fn tbr_and_imr_shade_identically(frame in scene_strategy()) {
        // Both resolve visibility in submission order against a depth
        // buffer — only *where* the buffers live differs.
        let tbr = render(&frame, RenderMode::TileBased).activity;
        let imr = render(&frame, RenderMode::Immediate).activity;
        prop_assert_eq!(tbr.fragments_shaded, imr.fragments_shaded);
        prop_assert_eq!(tbr.fragments_early_z_culled, imr.fragments_early_z_culled);
        prop_assert_eq!(tbr.texture_samples, imr.texture_samples);
    }

    #[test]
    fn opaque_only_scenes_have_no_hsr_overdraw_shading(frame in scene_strategy()) {
        // Under HSR, every *opaque* pixel is shaded at most once; the
        // shaded count is bounded by the covered screen area plus the
        // transparent layers.
        let t = render(&frame, RenderMode::TileBasedDeferred);
        let a = &t.activity;
        let screen_px = 192 * 128u64;
        let transparent: u64 = frame
            .draws
            .iter()
            .filter(|d| d.blend.reads_destination())
            .count() as u64;
        prop_assert!(a.fragments_shaded <= screen_px * (1 + transparent));
    }
}
