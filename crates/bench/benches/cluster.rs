//! Clustering-engine benchmarks: the retained seed engine
//! (`ReferenceKMeans`) vs the bound-pruned, warm-started fast path for
//! the full §III-F BIC search and silhouette scoring, plus the blocked
//! pairwise kernel behind the §III-D similarity matrix. The selection
//! stage runs once per characterized workload, so its cost gates how
//! freely the methodology can be re-run (different seeds, thresholds,
//! ablations) on captured traces.

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use megsim_cluster::{
    kmeans, search_clusters, silhouette_score, KMeansConfig, PointMatrix, ReferenceKMeans,
    SearchConfig,
};
use megsim_core::SimilarityMatrix;

/// Paper-shape synthetic feature data: frames evolve along slow
/// per-dimension drifts (continuous scene changes) with deterministic
/// high-frequency jitter on top, so cluster boundaries overlap the way
/// consecutive gameplay frames do. Lloyd's needs many iterations on
/// this shape (unlike idealized well-separated blobs that converge in
/// two), which is exactly the regime the selection stage faces.
fn feature_like_data(n: usize, d: usize) -> PointMatrix {
    PointMatrix::from_rows(
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let t = i as f64 / 60.0;
                        let drift = ((t + j as f64 * 0.37).sin()
                            + (t * 0.33 + j as f64 * 0.11).cos())
                            * 40.0;
                        let noise = ((i * 31 + j * 17) % 97) as f64 * 0.8;
                        drift + noise
                    })
                    .collect()
            })
            .collect(),
    )
}

fn bench_search(c: &mut Criterion) {
    let data = feature_like_data(800, 32);
    let config = SearchConfig::default().with_max_k(24);
    let mut group = c.benchmark_group("cluster_search");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(ReferenceKMeans::search_clusters(&data, &config).k));
    });
    group.bench_function("optimized", |b| {
        b.iter(|| black_box(search_clusters(&data, &config).k));
    });
    group.finish();
}

fn bench_silhouette(c: &mut Criterion) {
    let data = feature_like_data(1200, 32);
    let fit = kmeans(&data, &KMeansConfig::new(8).with_seed(1));
    let mut group = c.benchmark_group("cluster_silhouette");
    group.sample_size(10);
    group.bench_function("reference", |b| {
        b.iter(|| black_box(ReferenceKMeans::silhouette_score(&data, &fit)));
    });
    group.bench_function("optimized", |b| {
        b.iter(|| black_box(silhouette_score(&data, &fit)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search, bench_silhouette
}

/// Best-of-five wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..5)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the seed engine vs the fast path single-threaded (so the
/// ratio is pure algorithmic gain: bound pruning, seeding memoization,
/// scratch reuse, blocked tiles — no thread-count dependence), checks
/// the results are bit-identical while doing so, and merges the numbers
/// into `BENCH_4.json` at the repo root.
fn write_bench_summary() {
    let mut entries: Vec<(String, f64)> = Vec::new();
    megsim_exec::set_threads(1);

    // Full §III-F BIC search on the paper-shape workload.
    let data = feature_like_data(800, 32);
    let config = SearchConfig::default().with_max_k(24);
    let expected = ReferenceKMeans::search_clusters(&data, &config);
    let got = search_clusters(&data, &config);
    assert_eq!(
        expected.k, got.k,
        "fast-path search diverged from the seed engine"
    );
    assert_eq!(expected.bic_scores, got.bic_scores);
    assert_eq!(expected.clustering, got.clustering);
    let reference = secs(|| {
        black_box(ReferenceKMeans::search_clusters(&data, &config).k);
    });
    let optimized = secs(|| {
        black_box(search_clusters(&data, &config).k);
    });
    println!(
        "cluster search n800_d32: reference {:.3}s, optimized {:.3}s ({:.2}x)",
        reference,
        optimized,
        reference / optimized
    );
    entries.push(("cluster_search_reference_secs".to_string(), reference));
    entries.push(("cluster_search_optimized_secs".to_string(), optimized));
    entries.push(("cluster_search_speedup".to_string(), reference / optimized));

    // Silhouette scoring (the ablation's O(n²·d) pass).
    let sil_data = feature_like_data(1200, 32);
    let fit = kmeans(&sil_data, &KMeansConfig::new(8).with_seed(1));
    let expected = ReferenceKMeans::silhouette_score(&sil_data, &fit);
    let got = silhouette_score(&sil_data, &fit);
    assert_eq!(
        expected.to_bits(),
        got.to_bits(),
        "fast-path silhouette diverged from the seed engine"
    );
    let reference = secs(|| {
        black_box(ReferenceKMeans::silhouette_score(&sil_data, &fit));
    });
    let optimized = secs(|| {
        black_box(silhouette_score(&sil_data, &fit));
    });
    println!(
        "cluster silhouette n1200_d32: reference {:.3}s, optimized {:.3}s ({:.2}x)",
        reference,
        optimized,
        reference / optimized
    );
    entries.push(("cluster_silhouette_reference_secs".to_string(), reference));
    entries.push(("cluster_silhouette_optimized_secs".to_string(), optimized));
    entries.push((
        "cluster_silhouette_speedup".to_string(),
        reference / optimized,
    ));

    // §III-D similarity matrix: blocked SoA tiles vs the seed per-row
    // scan (reconstructed inline — the production path now always runs
    // the blocked kernel).
    let sim_data = feature_like_data(1500, 32);
    let reference = secs(|| {
        let n = sim_data.len();
        let mut packed = Vec::with_capacity(n * (n + 1) / 2);
        for i in 0..n {
            let a = sim_data.row(i);
            packed.extend((i..n).map(|j| megsim_cluster::euclidean_distance(a, sim_data.row(j))));
        }
        black_box(packed.len());
    });
    let optimized = secs(|| {
        black_box(SimilarityMatrix::from_points(&sim_data).len());
    });
    println!(
        "similarity n1500_d32: reference {:.3}s, optimized {:.3}s ({:.2}x)",
        reference,
        optimized,
        reference / optimized
    );
    entries.push(("cluster_similarity_reference_secs".to_string(), reference));
    entries.push(("cluster_similarity_optimized_secs".to_string(), optimized));
    entries.push((
        "cluster_similarity_speedup".to_string(),
        reference / optimized,
    ));

    megsim_exec::set_threads(0);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_4.json");
    if let Err(e) = megsim_bench::report::merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    benches();
    write_bench_summary();
}
