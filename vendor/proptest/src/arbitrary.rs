//! `any::<T>()` — the canonical full-domain strategy per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy over their whole domain.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy form of [`Arbitrary`], returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`, as `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
