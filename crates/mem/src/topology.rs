//! Shared-vs-private memory topologies of the multi-GPU rig.
//!
//! A [`MemoryPool`] owns the L2 + DRAM back ends of N simulated GPUs
//! and decides how their access streams map onto them:
//!
//! * [`Topology::Shared`] — one contended [`MemoryHierarchy`] services
//!   every GPU (a chiplet-style shared memory system). Contention is
//!   modeled by the *interleave* of the GPUs' access streams, which the
//!   caller must keep deterministic (the timing layer interleaves
//!   round-robin at fixed granularity: whole frames under
//!   alternate-frame dispatch, tile shards under split-frame dispatch).
//!   Cache lines, LRU stamps, DRAM rows and bus slots are then fought
//!   over exactly as one serialized stream.
//! * [`Topology::Private`] — each GPU gets its own hierarchy (a
//!   board-level rig of discrete cards); streams never interact and
//!   only the interconnect couples the GPUs.
//!
//! The pool is deliberately passive — it hands out `&mut
//! MemoryHierarchy` views and aggregates stats — so the timing layer
//! can thread whichever GPU's stream is active through the existing
//! `access_run` fast paths unchanged.

use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use crate::hierarchy::{MemoryHierarchy, MemoryStats};

/// How N GPUs map onto L2 + DRAM back ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// One contended hierarchy shared by every GPU.
    Shared,
    /// One hierarchy per GPU.
    #[default]
    Private,
}

/// The memory back ends of an N-GPU rig under one [`Topology`].
#[derive(Debug, Clone)]
pub struct MemoryPool {
    topology: Topology,
    gpus: usize,
    hierarchies: Vec<MemoryHierarchy>,
}

impl MemoryPool {
    /// Builds the pool: one hierarchy when shared, `gpus` when private.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(topology: Topology, gpus: usize, l2: CacheConfig, dram: DramConfig) -> Self {
        assert!(gpus > 0, "a rig needs at least one GPU");
        let backends = match topology {
            Topology::Shared => 1,
            Topology::Private => gpus,
        };
        Self {
            topology,
            gpus,
            hierarchies: (0..backends)
                .map(|_| MemoryHierarchy::new(l2.clone(), dram))
                .collect(),
        }
    }

    /// The pool's topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Number of GPUs served.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// Number of distinct hierarchies backing the pool.
    pub fn backends(&self) -> usize {
        self.hierarchies.len()
    }

    /// The hierarchy servicing GPU `gpu`'s stream: the single shared
    /// back end, or the GPU's private one.
    ///
    /// # Panics
    ///
    /// Panics if `gpu >= self.gpus()`.
    pub fn for_gpu(&mut self, gpu: usize) -> &mut MemoryHierarchy {
        assert!(gpu < self.gpus, "GPU {gpu} out of range");
        match self.topology {
            Topology::Shared => &mut self.hierarchies[0],
            Topology::Private => &mut self.hierarchies[gpu],
        }
    }

    /// Summed counters over every back end.
    pub fn stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for h in &self.hierarchies {
            total.merge(&h.stats());
        }
        total
    }

    /// Resets every back end's counters (state persists).
    pub fn reset_stats(&mut self) {
        for h in &mut self.hierarchies {
            h.reset_stats();
        }
    }

    /// Flushes every back end's L2 (device idle at sequence end) and
    /// returns the total writeback count.
    pub fn flush_all(&mut self) -> u64 {
        self.hierarchies.iter_mut().map(|h| h.flush_l2()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(topology: Topology, gpus: usize) -> MemoryPool {
        MemoryPool::new(
            topology,
            gpus,
            CacheConfig::new("L2", 1024, 64, 2, 1, 10),
            DramConfig::lpddr3_baseline(),
        )
    }

    #[test]
    fn shared_pool_has_one_backend_private_has_n() {
        assert_eq!(pool(Topology::Shared, 4).backends(), 1);
        assert_eq!(pool(Topology::Private, 4).backends(), 4);
    }

    #[test]
    fn shared_topology_contends_on_one_hierarchy() {
        let mut p = pool(Topology::Shared, 2);
        // GPU 0 warms a line; GPU 1 hits it — same L2.
        p.for_gpu(0).access(0x40, 0, false);
        let hit = p.for_gpu(1).access(0x40, 1_000, false);
        assert!(hit.l2_hit);
        assert_eq!(p.stats().l2.accesses(), 2);
    }

    #[test]
    fn private_topology_isolates_streams() {
        let mut p = pool(Topology::Private, 2);
        p.for_gpu(0).access(0x40, 0, false);
        let miss = p.for_gpu(1).access(0x40, 1_000, false);
        assert!(!miss.l2_hit, "GPU 1's private L2 never saw the line");
        let s = p.stats();
        assert_eq!(s.l2.misses, 2);
        assert_eq!(s.dram.accesses(), 2);
    }

    #[test]
    fn flush_all_drains_every_backend() {
        let mut p = pool(Topology::Private, 2);
        p.for_gpu(0).access(0x00, 0, true);
        p.for_gpu(1).access(0x40, 0, true);
        assert_eq!(p.flush_all(), 2);
        assert_eq!(p.flush_all(), 0);
    }

    #[test]
    fn reset_stats_keeps_state() {
        let mut p = pool(Topology::Shared, 2);
        p.for_gpu(0).access(0x40, 0, false);
        p.reset_stats();
        assert_eq!(p.stats(), MemoryStats::default());
        assert!(p.for_gpu(1).access(0x40, 1_000, false).l2_hit);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gpu_panics() {
        pool(Topology::Shared, 2).for_gpu(2);
    }
}
