//! Streaming trace ingestion: incremental decode from any [`Read`]
//! source with O(command) peak memory.
//!
//! The v1 pipeline decoded an entire `MGLT` capture into one in-memory
//! [`CommandStream`] before a single frame replayed — double-buffering
//! the trace (file bytes + command vector) and capping replayable trace
//! length by RAM. [`StreamDecoder`] instead pulls one command at a time
//! off the reader, and [`FrameIter`] layers the GL state machine on top
//! to yield whole [`Frame`]s, so replay memory is bounded by the
//! resource tables (meshes/textures uploaded so far — state any GL
//! replay must keep) plus a single in-flight frame, independent of
//! trace length.
//!
//! Both wire versions decode through the same field readers; the
//! decoder dispatches on the header version, so v1 golden bytes and
//! varint v2 traces stream through identical code paths.

use std::io::Read;

use megsim_gfx::draw::BlendMode;
use megsim_gfx::draw::Frame;
use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Mat4, Vec2, Vec3, Vec4};
use megsim_gfx::shader::{ShaderId, ShaderKind, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::{TextureDesc, TextureId};

use crate::codec::{
    matrix_delta_from_wire, unzigzag, DecodeError, DecodeErrorKind, FORMAT_VERSION,
    FORMAT_VERSION_V2, MAGIC,
};
use crate::command::{BufferId, Command};
use crate::player::{PlayError, StreamPlayer};

/// Largest length-prefixed allocation the decoder will make before
/// seeing the payload bytes. Counts above this are still decoded — the
/// vector just grows as bytes actually arrive, so a corrupt count hits
/// `Truncated` instead of an absurd up-front allocation.
const MAX_PREALLOC: usize = 1 << 16;

/// Offset-tracking field reader over any byte source.
struct TraceReader<R: Read> {
    inner: R,
    /// Bytes consumed so far — the offset attached to decode errors.
    offset: u64,
}

impl<R: Read> TraceReader<R> {
    fn new(inner: R) -> Self {
        Self { inner, offset: 0 }
    }

    /// Fills `buf` exactly, mapping EOF to [`DecodeErrorKind::Truncated`]
    /// at the offset where the field started.
    fn fill(&mut self, buf: &mut [u8]) -> Result<(), DecodeError> {
        let start = self.offset;
        let mut read = 0;
        while read < buf.len() {
            match self.inner.read(&mut buf[read..]) {
                Ok(0) => {
                    return Err(DecodeError::new(
                        DecodeErrorKind::Truncated,
                        start + read as u64,
                    ))
                }
                Ok(n) => {
                    read += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(DecodeError::new(
                        DecodeErrorKind::Io(e.kind()),
                        start + read as u64,
                    ))
                }
            }
        }
        Ok(())
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let mut buf = [0u8; N];
        self.fill(&mut buf)?;
        Ok(buf)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.array::<1>()?[0])
    }

    fn u16_le(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32_le(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64_le(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f32_le(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    /// Reads a LEB128 varint (at most 10 bytes for u64).
    fn varint(&mut self) -> Result<u64, DecodeError> {
        let start = self.offset;
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                // Reject non-canonical overlong encodings of the top
                // byte so every value has exactly one wire form.
                if shift == 63 && byte > 1 {
                    return Err(DecodeError::new(DecodeErrorKind::BadValue("varint"), start));
                }
                return Ok(value);
            }
        }
        Err(DecodeError::new(DecodeErrorKind::BadValue("varint"), start))
    }

    /// Reads a zigzag-encoded signed varint.
    fn signed(&mut self) -> Result<i64, DecodeError> {
        Ok(unzigzag(self.varint()?))
    }
}

/// Incremental `MGLT` decoder: yields [`Command`]s one at a time from
/// any [`Read`] source, for both wire versions, with O(command) peak
/// memory and byte-offset error reporting.
///
/// Implements `Iterator<Item = Result<Command, DecodeError>>`; after the
/// declared command count is exhausted (or the first error) it yields
/// `None` and leaves any trailing reader bytes untouched.
pub struct StreamDecoder<R: Read> {
    reader: TraceReader<R>,
    version: u16,
    remaining: u64,
    failed: bool,
    /// v2 delta state: previous mesh / texture base address.
    last_mesh_addr: u64,
    last_tex_addr: u64,
    /// v2 delta state: bit patterns of the previously decoded matrix.
    last_matrix: [u32; 16],
}

impl<R: Read> StreamDecoder<R> {
    /// Reads and validates the trace header.
    ///
    /// # Errors
    ///
    /// Fails on wrong magic, an unsupported version, or a truncated
    /// header.
    pub fn new(reader: R) -> Result<Self, DecodeError> {
        let mut reader = TraceReader::new(reader);
        let magic: [u8; 4] = reader.array()?;
        if &magic != MAGIC {
            return Err(DecodeError::new(DecodeErrorKind::BadMagic, 0));
        }
        let version = reader.u16_le()?;
        let remaining = match version {
            FORMAT_VERSION => reader.u64_le()?,
            FORMAT_VERSION_V2 => reader.varint()?,
            other => return Err(DecodeError::new(DecodeErrorKind::BadVersion(other), 4)),
        };
        Ok(Self {
            reader,
            version,
            remaining,
            failed: false,
            last_mesh_addr: 0,
            last_tex_addr: 0,
            last_matrix: [0; 16],
        })
    }

    /// The wire version declared in the header (1 or 2).
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Commands not yet decoded (from the header count).
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Bytes consumed from the reader so far.
    pub fn byte_offset(&self) -> u64 {
        self.reader.offset
    }

    /// Whether the header declared the v2 varint format.
    fn v2(&self) -> bool {
        self.version == FORMAT_VERSION_V2
    }

    /// Version-dispatched count/ID field (u32 LE in v1, varint in v2),
    /// validated to fit u32 like the v1 wire type.
    fn id(&mut self) -> Result<u32, DecodeError> {
        if self.v2() {
            let start = self.reader.offset;
            u32::try_from(self.reader.varint()?)
                .map_err(|_| DecodeError::new(DecodeErrorKind::BadValue("id"), start))
        } else {
            self.reader.u32_le()
        }
    }

    /// Version-dispatched matrix payload: 16 raw f32 LE in v1; in v2 a
    /// 16-bit change mask followed by byte-swapped XOR deltas against
    /// the previous matrix, one per set bit — see
    /// `codec::matrix_delta_to_wire`.
    fn decode_matrix(&mut self) -> Result<Mat4, DecodeError> {
        let mut bits = self.last_matrix;
        if self.v2() {
            let mask = self.reader.u16_le()?;
            for (i, b) in bits.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    let at = self.reader.offset;
                    *b = matrix_delta_from_wire(self.reader.varint()?, *b).ok_or(
                        DecodeError::new(DecodeErrorKind::BadValue("matrix delta"), at),
                    )?;
                }
            }
            self.last_matrix = bits;
        } else {
            for b in &mut bits {
                *b = self.reader.f32_le()?.to_bits();
            }
        }
        let mut cols = [Vec4::default(); 4];
        for (c, col) in cols.iter_mut().enumerate() {
            *col = Vec4::new(
                f32::from_bits(bits[c * 4]),
                f32::from_bits(bits[c * 4 + 1]),
                f32::from_bits(bits[c * 4 + 2]),
                f32::from_bits(bits[c * 4 + 3]),
            );
        }
        Ok(Mat4 { cols })
    }

    /// Version-dispatched element count, validated to fit `usize`/u32.
    fn count(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let start = self.reader.offset;
        let raw = if self.v2() {
            self.reader.varint()?
        } else {
            u64::from(self.reader.u32_le()?)
        };
        usize::try_from(raw)
            .ok()
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or(DecodeError::new(DecodeErrorKind::BadValue(what), start))
    }

    /// Decodes the next command, or `None` past the declared count.
    #[allow(clippy::should_implement_trait)]
    pub fn next_command(&mut self) -> Option<Result<Command, DecodeError>> {
        if self.remaining == 0 || self.failed {
            return None;
        }
        self.remaining -= 1;
        let result = self.decode_command();
        if result.is_err() {
            self.failed = true;
        }
        Some(result)
    }

    fn decode_command(&mut self) -> Result<Command, DecodeError> {
        let opcode_at = self.reader.offset;
        let opcode = self.reader.u8()?;
        match opcode {
            0 => self.decode_buffer_data(),
            1 => self.decode_tex_image(),
            2 => self.decode_program_data(),
            3 => Ok(Command::UseProgram {
                vertex: ShaderId(self.id()?),
                fragment: ShaderId(self.id()?),
            }),
            4 => {
                let tag_at = self.reader.offset;
                match self.reader.u8()? {
                    0 => Ok(Command::BindTexture(None)),
                    1 => Ok(Command::BindTexture(Some(TextureId(self.id()?)))),
                    _ => Err(DecodeError::new(
                        DecodeErrorKind::BadValue("texture binding"),
                        tag_at,
                    )),
                }
            }
            5 => Ok(Command::UniformMatrix(self.decode_matrix()?)),
            6 => {
                let tag_at = self.reader.offset;
                match self.reader.u8()? {
                    0 => Ok(Command::Blend(BlendMode::Opaque)),
                    1 => Ok(Command::Blend(BlendMode::AlphaBlend)),
                    2 => Ok(Command::Blend(BlendMode::Additive)),
                    _ => Err(DecodeError::new(
                        DecodeErrorKind::BadValue("blend mode"),
                        tag_at,
                    )),
                }
            }
            7 => {
                let tag_at = self.reader.offset;
                match self.reader.u8()? {
                    0 => Ok(Command::DepthTest(false)),
                    1 => Ok(Command::DepthTest(true)),
                    _ => Err(DecodeError::new(
                        DecodeErrorKind::BadValue("depth flag"),
                        tag_at,
                    )),
                }
            }
            8 => Ok(Command::Draw(BufferId(self.id()?))),
            9 => Ok(Command::SwapBuffers),
            _ => Err(DecodeError::new(
                DecodeErrorKind::BadValue("opcode"),
                opcode_at,
            )),
        }
    }

    fn decode_buffer_data(&mut self) -> Result<Command, DecodeError> {
        let id = BufferId(self.id()?);
        let base_address = if self.v2() {
            let delta = self.reader.signed()?;
            let addr = self.last_mesh_addr.wrapping_add(delta as u64);
            self.last_mesh_addr = addr;
            addr
        } else {
            self.reader.u64_le()?
        };
        let n_verts = self.count("vertex count")?;
        let mut vertices = Vec::with_capacity(n_verts.min(MAX_PREALLOC));
        for _ in 0..n_verts {
            let mut f = [0.0f32; 8];
            for slot in &mut f {
                *slot = self.reader.f32_le()?;
            }
            vertices.push(Vertex {
                position: Vec3::new(f[0], f[1], f[2]),
                normal: Vec3::new(f[3], f[4], f[5]),
                uv: Vec2::new(f[6], f[7]),
            });
        }
        let count_at = self.reader.offset;
        let n_idx = self.count("index count")?;
        let mut indices = Vec::with_capacity(n_idx.min(MAX_PREALLOC));
        if self.v2() {
            let mut prev: i64 = 0;
            for _ in 0..n_idx {
                let at = self.reader.offset;
                let value = prev + self.reader.signed()?;
                prev = value;
                indices.push(u32::try_from(value).map_err(|_| {
                    DecodeError::new(DecodeErrorKind::BadValue("mesh indices"), at)
                })?);
            }
        } else {
            for _ in 0..n_idx {
                indices.push(self.reader.u32_le()?);
            }
        }
        // `% 3 != 0` rather than `is_multiple_of` (MSRV 1.75).
        #[allow(clippy::manual_is_multiple_of)]
        if n_idx % 3 != 0 || indices.iter().any(|&i| i as usize >= n_verts) {
            return Err(DecodeError::new(
                DecodeErrorKind::BadValue("mesh indices"),
                count_at,
            ));
        }
        Ok(Command::BufferData {
            id,
            mesh: Mesh::new(vertices, indices, base_address),
        })
    }

    fn decode_tex_image(&mut self) -> Result<Command, DecodeError> {
        let start = self.reader.offset;
        let id = self.id()?;
        let (width, height, bpt) = if self.v2() {
            let w = self.count("texture geometry")? as u32;
            let h = self.count("texture geometry")? as u32;
            let b = self.count("texture geometry")? as u32;
            (w, h, b)
        } else {
            (
                self.reader.u32_le()?,
                self.reader.u32_le()?,
                self.reader.u32_le()?,
            )
        };
        let base = if self.v2() {
            let delta = self.reader.signed()?;
            let addr = self.last_tex_addr.wrapping_add(delta as u64);
            self.last_tex_addr = addr;
            addr
        } else {
            self.reader.u64_le()?
        };
        if !width.is_power_of_two() || !height.is_power_of_two() || bpt == 0 {
            return Err(DecodeError::new(
                DecodeErrorKind::BadValue("texture geometry"),
                start,
            ));
        }
        Ok(Command::TexImage(TextureDesc::new(
            id, width, height, bpt, base,
        )))
    }

    fn decode_program_data(&mut self) -> Result<Command, DecodeError> {
        let id = self.id()?;
        let kind_at = self.reader.offset;
        let kind = match self.reader.u8()? {
            0 => ShaderKind::Vertex,
            1 => ShaderKind::Fragment,
            _ => {
                return Err(DecodeError::new(
                    DecodeErrorKind::BadValue("shader kind"),
                    kind_at,
                ))
            }
        };
        let name_at = self.reader.offset;
        let name_len = if self.v2() {
            let len = self.reader.varint()?;
            usize::try_from(len)
                .ok()
                .filter(|&n| n <= u16::MAX as usize)
                .ok_or(DecodeError::new(
                    DecodeErrorKind::BadValue("shader name"),
                    name_at,
                ))?
        } else {
            self.reader.u16_le()? as usize
        };
        let mut name = vec![0u8; name_len];
        self.reader.fill(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| DecodeError::new(DecodeErrorKind::BadValue("shader name"), name_at))?;
        let alu = if self.v2() {
            let at = self.reader.offset;
            u32::try_from(self.reader.varint()?)
                .map_err(|_| DecodeError::new(DecodeErrorKind::BadValue("alu count"), at))?
        } else {
            self.reader.u32_le()?
        };
        let n_samples = if self.v2() {
            let at = self.reader.offset;
            usize::try_from(self.reader.varint()?)
                .ok()
                .filter(|&n| n <= u16::MAX as usize)
                .ok_or(DecodeError::new(
                    DecodeErrorKind::BadValue("sample count"),
                    at,
                ))?
        } else {
            self.reader.u16_le()? as usize
        };
        let mut samples = Vec::with_capacity(n_samples.min(MAX_PREALLOC));
        for _ in 0..n_samples {
            let tag_at = self.reader.offset;
            samples.push(match self.reader.u8()? {
                0 => TextureFilter::Nearest,
                1 => TextureFilter::Linear,
                2 => TextureFilter::Bilinear,
                3 => TextureFilter::Trilinear,
                _ => {
                    return Err(DecodeError::new(
                        DecodeErrorKind::BadValue("texture filter"),
                        tag_at,
                    ))
                }
            });
        }
        Ok(Command::ProgramData(ShaderProgram {
            id: ShaderId(id),
            kind,
            name,
            alu_instructions: alu,
            texture_samples: samples,
        }))
    }
}

impl<R: Read> Iterator for StreamDecoder<R> {
    type Item = Result<Command, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_command()
    }
}

/// Error produced while streaming frames off a trace: either the bytes
/// were malformed or the command sequence was semantically invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The wire bytes could not be decoded.
    Decode(DecodeError),
    /// The decoded commands violated the GL state machine.
    Play(PlayError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Decode(e) => e.fmt(f),
            TraceError::Play(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<DecodeError> for TraceError {
    fn from(e: DecodeError) -> Self {
        TraceError::Decode(e)
    }
}

impl From<PlayError> for TraceError {
    fn from(e: PlayError) -> Self {
        TraceError::Play(e)
    }
}

/// Frame-granular streaming replay: decodes commands incrementally and
/// yields whole [`Frame`]s, with peak memory bounded by the resource
/// tables plus one frame — never the full trace.
///
/// The constructor eagerly consumes the recorder's program prelude, so
/// [`FrameIter::shaders`] is complete before the first frame is pulled
/// (programs uploaded mid-stream — which [`crate::record_sequence`]
/// never emits — still replay correctly and appear in the table as they
/// are decoded).
pub struct FrameIter<R: Read> {
    decoder: StreamDecoder<R>,
    player: StreamPlayer,
    /// First non-prelude command, decoded while scanning the prelude.
    pending: Option<Command>,
    done: bool,
}

impl<R: Read> FrameIter<R> {
    /// Opens a trace for streaming replay, reading the header and the
    /// program prelude.
    ///
    /// # Errors
    ///
    /// Fails on a malformed header or an invalid prelude.
    pub fn new(reader: R) -> Result<Self, TraceError> {
        let mut decoder = StreamDecoder::new(reader)?;
        let mut player = StreamPlayer::new();
        let mut pending = None;
        for cmd in &mut decoder {
            let cmd = cmd?;
            if matches!(cmd, Command::ProgramData(_)) {
                // Prelude program uploads never emit a frame.
                player.feed(cmd).map_err(TraceError::Play)?;
            } else {
                pending = Some(cmd);
                break;
            }
        }
        Ok(Self {
            decoder,
            player,
            pending,
            done: false,
        })
    }

    /// The shader library uploaded in the trace prelude.
    pub fn shaders(&self) -> &ShaderTable {
        self.player.shaders()
    }

    /// The wire version of the underlying trace (1 or 2).
    pub fn version(&self) -> u16 {
        self.decoder.version()
    }

    /// Bytes consumed from the reader so far.
    pub fn byte_offset(&self) -> u64 {
        self.decoder.byte_offset()
    }
}

impl<R: Read> Iterator for FrameIter<R> {
    type Item = Result<Frame, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(cmd) = self.pending.take() {
            match self.player.feed(cmd) {
                Ok(Some(frame)) => return Some(Ok(frame)),
                Ok(None) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            }
        }
        loop {
            match self.decoder.next_command() {
                Some(Ok(cmd)) => match self.player.feed(cmd) {
                    Ok(Some(frame)) => return Some(Ok(frame)),
                    Ok(None) => {}
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e.into()));
                    }
                },
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                None => {
                    // Commands after the last SwapBuffers belong to no
                    // frame — exactly like the materialized replay,
                    // which only emits frames on SwapBuffers.
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode, encode_v2};
    use crate::player::play;
    use crate::recorder::record_sequence;
    use megsim_gfx::draw::DrawCall;

    fn sample_stream() -> crate::command::CommandStream {
        let mut shaders = ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "vs", 7));
        shaders.add(ShaderProgram::fragment(
            0,
            "fs",
            3,
            vec![TextureFilter::Bilinear],
        ));
        let mesh = std::sync::Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.5, -0.5, 0.0)),
                Vertex::at(Vec3::new(0.0, 0.5, 0.0)),
            ],
            vec![0, 1, 2],
            0x100,
        ));
        let frames: Vec<Frame> = (0..3)
            .map(|i| {
                let mut f = Frame::new();
                f.draws.push(DrawCall {
                    mesh: std::sync::Arc::clone(&mesh),
                    transform: Mat4::rotation_y(i as f32 * 0.2),
                    vertex_shader: ShaderId(0),
                    fragment_shader: ShaderId(0),
                    texture: Some(TextureDesc::new(1, 64, 64, 4, 0x2000 + i as u64 * 0x100)),
                    blend: BlendMode::Opaque,
                    depth_test: true,
                });
                f
            })
            .collect();
        record_sequence(&shaders, &frames)
    }

    #[test]
    fn stream_decoder_matches_materialized_decode() {
        let stream = sample_stream();
        for bytes in [encode(&stream), encode_v2(&stream)] {
            let commands: Vec<Command> = StreamDecoder::new(bytes.as_ref())
                .expect("header")
                .map(|c| c.expect("command"))
                .collect();
            assert_eq!(commands, stream.commands);
        }
    }

    #[test]
    fn frame_iter_matches_materialized_play() {
        let stream = sample_stream();
        let replay = play(&stream).expect("plays");
        for bytes in [encode(&stream), encode_v2(&stream)] {
            let mut iter = FrameIter::new(bytes.as_ref()).expect("header");
            assert_eq!(iter.shaders().vertex_count(), replay.shaders.vertex_count());
            assert_eq!(
                iter.shaders().fragment_count(),
                replay.shaders.fragment_count()
            );
            let frames: Vec<Frame> = (&mut iter).map(|f| f.expect("frame")).collect();
            assert_eq!(frames.len(), replay.frames.len());
            for (a, b) in frames.iter().zip(&replay.frames) {
                assert_eq!(a.draws.len(), b.draws.len());
                for (da, db) in a.draws.iter().zip(&b.draws) {
                    assert_eq!(*da.mesh, *db.mesh);
                    assert_eq!(da.transform, db.transform);
                    assert_eq!(da.texture, db.texture);
                }
            }
        }
    }

    #[test]
    fn frame_iter_surfaces_play_errors() {
        use crate::command::CommandStream;
        let mut s = CommandStream::new();
        s.commands
            .push(Command::ProgramData(ShaderProgram::vertex(0, "v", 1)));
        s.commands.push(Command::UseProgram {
            vertex: ShaderId(0),
            fragment: ShaderId(0),
        });
        s.commands.push(Command::Draw(BufferId(9)));
        let bytes = encode(&s);
        let mut iter = FrameIter::new(bytes.as_ref()).expect("header");
        let err = iter.next().expect("yields error").unwrap_err();
        assert_eq!(err, TraceError::Play(PlayError::UnknownBuffer(BufferId(9))));
        assert!(iter.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn stream_decoder_reads_one_command_at_a_time() {
        // A reader that counts read calls and hands out at most 7 bytes
        // per call: the decoder must still produce every command.
        struct Dribble<'a>(&'a [u8]);
        impl Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.len().min(buf.len()).min(7);
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        let stream = sample_stream();
        let bytes = encode_v2(&stream);
        let commands: Vec<Command> = StreamDecoder::new(Dribble(&bytes))
            .expect("header")
            .map(|c| c.expect("command"))
            .collect();
        assert_eq!(commands, stream.commands);
    }

    #[test]
    fn byte_offset_tracks_consumption() {
        let stream = sample_stream();
        let bytes = encode(&stream);
        let mut dec = StreamDecoder::new(bytes.as_ref()).expect("header");
        assert_eq!(dec.byte_offset(), 14); // magic + version + count
        while dec.next_command().is_some() {}
        assert_eq!(dec.byte_offset(), bytes.len() as u64);
    }
}
