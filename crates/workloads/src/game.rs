//! Scripted synthetic games.
//!
//! A [`Workload`] generates a deterministic sequence of [`Frame`]s from
//! a *timeline* of scripted segments (menu, straight, turn, boss, …).
//! Segments of the same template produce statistically similar frames —
//! the recurring phase behaviour that real gameplay exhibits and that
//! MEGsim's clustering exploits — while per-frame noise, sinusoidal
//! intensity modulation and occasional spikes keep frames from being
//! identical.
//!
//! ## Generation fast path
//!
//! Everything frame-invariant is memoized once per workload in a
//! [`GeometryTemplates`] cache built by [`Workload::new`]:
//!
//! * per-(class, instance) placements (`px`, `py`, `phase`) — in the
//!   seed generator these cost a fresh `SmallRng` seeding plus three
//!   uniform draws for *every instance of every frame*, even though
//!   they only depend on the workload seed;
//! * per-class static draw-call skeletons (mesh `Arc`, shader pair,
//!   texture, blend/depth state) and the trig-bearing constant
//!   matrices `rotation_x(tilt)` / `scale(size)`;
//! * the shared perspective projection of 3-D games (one `tan` per
//!   instance in the seed path).
//!
//! Only animated attributes — per-frame noise draws, spike injection,
//! drift/rotation trig and the model-view-projection products — are
//! recomputed per frame, replaying the seed generator's exact RNG draw
//! order and exact left-associated `Mat4` multiply chain, so every
//! frame is bit-identical to the retained
//! [`crate::reference::ReferenceWorkload`] (the proptest oracles in
//! this crate and the `workloads` bench check that on every run).
//!
//! [`Workload::generate_frames`] additionally fans frame synthesis out
//! across the `megsim-exec` worker pool in fixed chunks, so batch
//! generation is parallel *and* thread-count-independent.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::Mesh;
use megsim_gfx::math::{Mat4, Vec3, Vec4};
use megsim_gfx::shader::{ShaderId, ShaderTable};
use megsim_gfx::texture::TextureDesc;

/// 2-D (sprite/orthographic) or 3-D (perspective) game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GameType {
    /// Orthographic sprite game.
    TwoD,
    /// Perspective 3-D game.
    ThreeD,
}

impl std::fmt::Display for GameType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GameType::TwoD => write!(f, "2D"),
            GameType::ThreeD => write!(f, "3D"),
        }
    }
}

/// One drawable object family within a segment template.
#[derive(Debug, Clone)]
pub struct ObjectClass {
    /// Index into the workload's mesh library.
    pub mesh: usize,
    /// Vertex shader used by instances of this class.
    pub vertex_shader: ShaderId,
    /// Fragment shader used by instances of this class.
    pub fragment_shader: ShaderId,
    /// Index into the workload's texture library, if textured.
    pub texture: Option<usize>,
    /// Blend mode (particles/UI are blended).
    pub blend: BlendMode,
    /// Whether instances are depth tested.
    pub depth_test: bool,
    /// Baseline instance count per frame.
    pub base_count: f64,
    /// Amplitude of the sinusoidal count modulation.
    pub count_amplitude: f64,
    /// Frequency of the modulation, radians per frame.
    pub wobble_freq: f64,
    /// World-space (3-D) or NDC-space (2-D) size of one instance.
    pub size: f32,
    /// Rotation about the X axis (radians), used to tilt terrain strips
    /// toward the camera.
    pub tilt: f32,
    /// Mean camera distance band for 3-D placement.
    pub distance: f32,
}

/// A reusable segment recipe (e.g. "straight road", "menu").
#[derive(Debug, Clone)]
pub struct SegmentTemplate {
    /// Human-readable label (shows up in experiment dumps).
    pub label: String,
    /// Object classes active while this template plays.
    pub classes: Vec<ObjectClass>,
}

/// One occurrence of a template on the timeline.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Index into the template list.
    pub template: usize,
    /// First frame of the segment.
    pub start: usize,
    /// Length in frames.
    pub len: usize,
    /// Per-occurrence intensity multiplier (~1.0).
    pub intensity: f64,
}

/// Stable per-(class, instance) placement parameters. In the seed
/// generator these are drawn from a per-instance `SmallRng`; they
/// depend only on `(workload seed, class index, instance index)`, so
/// the fast path computes each triple once per workload.
#[derive(Debug, Clone, Copy)]
struct Placement {
    px: f32,
    py: f32,
    phase: f32,
}

impl Placement {
    /// Replays the seed generator's exact per-instance RNG draws.
    fn compute(seed: u64, class_index: usize, j: usize) -> Self {
        let mut prng = SmallRng::seed_from_u64(
            seed ^ ((class_index as u64) << 32) ^ (j as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let px = prng.gen_range(-0.85..0.85f32);
        let py = prng.gen_range(-0.75..0.75f32);
        let phase = prng.gen_range(0.0..std::f32::consts::TAU);
        Self { px, py, phase }
    }
}

/// Inputs smaller than this take the generic matrix chain: the
/// specialized kernels assume every surviving product is nonzero, so
/// values near the underflow range (or exact zeros, whose *sign* the
/// generic chain's `±0.0` sums control) must not reach them.
const TRIG_EPS: f32 = 1e-6;

/// Which specialized transform kernel a class is eligible for.
///
/// The specialized kernels compute the exact bits the generic chain
/// `translation * rotation * rotation_x(tilt) * scale` produces, by
/// replaying only the surviving operations of `Mat4::mul`'s
/// left-associated component sums. That replay is exact only when the
/// skipped terms are provably-absorbed signed zeros, which needs the
/// class constants comfortably away from zero — classes that fail the
/// audit always take the generic chain.
#[derive(Debug, Clone, Copy)]
enum FastKind {
    /// `tilt == +0.0` exactly: `rotation_x(0.0)`'s `±0`/`1` entries
    /// make it a bit-exact no-op inside the chain.
    Untilted,
    /// `sin(tilt)`/`cos(tilt)` both comfortably nonzero.
    Tilted {
        /// `sin(tilt)` as `Mat4::rotation_x` computes it.
        st: f32,
        /// `cos(tilt)`.
        ct: f32,
        /// `-sin(tilt)` — the negated entry of `rotation_x`'s col 2.
        mst: f32,
    },
    /// Degenerate constants: always use the generic matrix chain.
    Generic,
}

/// Frame-invariant per-class state: the draw-call skeleton (everything
/// but the transform), the constant tail matrices of the transform
/// chain (for the generic path), and the constants feeding the
/// specialized kernels. Caching the *construction* of
/// `rotation_x`/`scale` is exact: the same inputs produce the same
/// bits, and the multiply chain still evaluates in the seed generator's
/// left-associated order.
#[derive(Debug, Clone)]
struct ClassStatic {
    base: DrawCall,
    tilt: Mat4,
    scale: Mat4,
    /// Uniform scale factor (`class.size`).
    k: f32,
    kind: FastKind,
    /// 2-D tilted col1.z / col2.z: `st * k`, `ct * k`.
    stk: f32,
    ctk: f32,
    /// 3-D tilted col1.y / col2.y: `(p1 * ct) * k`, `(p1 * -st) * k`.
    p1ctk: f32,
    p1mstk: f32,
    /// 3-D untilted col1.y: `p1 * k`.
    p1k: f32,
}

/// The per-workload memoized geometry-template cache.
#[derive(Debug, Clone)]
struct GeometryTemplates {
    /// `[template][class]` static draw state.
    class_static: Vec<Vec<ClassStatic>>,
    /// `[class index][instance]` placement triples, sized by a
    /// conservative peak-count bound; indices beyond the bound fall
    /// back to [`Placement::compute`].
    placements: Vec<Vec<Placement>>,
    /// The shared 3-D projection (`Mat4::perspective(1.05, 2, 0.5,
    /// 120)` in the seed generator, rebuilt per instance there).
    proj: Mat4,
    /// The projection's nonzero entries, as the specialized 3-D kernel
    /// consumes them: `cols[0].x`, `cols[1].y`, `cols[2].z`,
    /// `cols[3].z`.
    p0: f32,
    p1: f32,
    p2: f32,
    p3: f32,
}

/// A complete synthetic game workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Full game name (e.g. `"Beach Buggy Racing"`).
    pub name: String,
    /// Short alias used in the paper's tables (e.g. `"bbr1"`).
    pub alias: String,
    /// 2-D or 3-D.
    pub game_type: GameType,
    pub(crate) shaders: ShaderTable,
    pub(crate) textures: Vec<TextureDesc>,
    pub(crate) meshes: Vec<Arc<Mesh>>,
    pub(crate) templates: Vec<SegmentTemplate>,
    pub(crate) timeline: Vec<Segment>,
    pub(crate) frames: usize,
    pub(crate) seed: u64,
    /// Relative per-frame count noise (e.g. 0.05 = ±5 %).
    pub(crate) noise: f64,
    /// Probability a frame doubles one class's count (explosions …).
    pub(crate) spike_probability: f64,
    /// Load multiplier of the first frames of each segment (scene
    /// build, asset instantiation, full-screen fades). Decays over the
    /// first few frames; 1.0 disables the effect.
    pub(crate) transition_boost: f64,
    /// Memoized frame-invariant geometry/draw state.
    cache: GeometryTemplates,
}

/// Frames per chunk in [`Workload::generate_frames`]. Fixed (never
/// derived from the thread count) so chunk boundaries — and therefore
/// the output — are identical at any pool size.
const GENERATION_CHUNK: usize = 16;

/// Builder-style constructor input for [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Full game name.
    pub name: String,
    /// Table II alias.
    pub alias: String,
    /// 2-D or 3-D.
    pub game_type: GameType,
    /// Shader library.
    pub shaders: ShaderTable,
    /// Texture library.
    pub textures: Vec<TextureDesc>,
    /// Mesh library.
    pub meshes: Vec<Arc<Mesh>>,
    /// Segment templates.
    pub templates: Vec<SegmentTemplate>,
    /// Timeline as (template index, frame count) pairs.
    pub timeline: Vec<(usize, usize)>,
    /// Master seed.
    pub seed: u64,
    /// Per-frame relative noise.
    pub noise: f64,
    /// Spike probability per frame.
    pub spike_probability: f64,
    /// Load multiplier of segment-transition frames (≥ 1.0).
    pub transition_boost: f64,
}

impl Workload {
    /// Builds a workload from its spec.
    ///
    /// # Panics
    ///
    /// Panics if the timeline references unknown templates, a class
    /// references an unknown mesh/texture/shader, or the timeline is
    /// empty.
    pub fn new(spec: WorkloadSpec) -> Self {
        assert!(!spec.timeline.is_empty(), "timeline must not be empty");
        for t in &spec.templates {
            for c in &t.classes {
                assert!(c.mesh < spec.meshes.len(), "unknown mesh index");
                if let Some(tx) = c.texture {
                    assert!(tx < spec.textures.len(), "unknown texture index");
                }
                assert!(
                    (c.vertex_shader.0 as usize) < spec.shaders.vertex_count(),
                    "unknown vertex shader"
                );
                assert!(
                    (c.fragment_shader.0 as usize) < spec.shaders.fragment_count(),
                    "unknown fragment shader"
                );
            }
        }
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xC0FF_EE00);
        let mut timeline = Vec::with_capacity(spec.timeline.len());
        let mut start = 0usize;
        for &(template, len) in &spec.timeline {
            assert!(template < spec.templates.len(), "unknown template index");
            timeline.push(Segment {
                template,
                start,
                len,
                intensity: 1.0 + rng.gen_range(-0.06..0.06),
            });
            start += len;
        }
        let transition_boost = spec.transition_boost.max(1.0);
        let cache = Self::build_cache(&spec, &timeline, transition_boost);
        Self {
            name: spec.name,
            alias: spec.alias,
            game_type: spec.game_type,
            shaders: spec.shaders,
            textures: spec.textures,
            meshes: spec.meshes,
            templates: spec.templates,
            timeline,
            frames: start,
            seed: spec.seed,
            noise: spec.noise,
            spike_probability: spec.spike_probability,
            transition_boost,
            cache,
        }
    }

    /// Builds the memoized geometry-template cache: static draw
    /// skeletons, constant matrices and per-instance placements.
    fn build_cache(spec: &WorkloadSpec, timeline: &[Segment], boost: f64) -> GeometryTemplates {
        let proj = Mat4::perspective(1.05, 2.0, 0.5, 120.0);
        let (p0, p1) = (proj.cols[0].x, proj.cols[1].y);
        let (p2, p3) = (proj.cols[2].z, proj.cols[3].z);
        let class_static = spec
            .templates
            .iter()
            .map(|t| {
                t.classes
                    .iter()
                    .map(|c| {
                        let k = c.size;
                        let (st, ct) = c.tilt.sin_cos();
                        let kind = if k <= TRIG_EPS {
                            FastKind::Generic
                        } else if c.tilt.to_bits() == 0.0f32.to_bits() {
                            FastKind::Untilted
                        } else if st.abs() > TRIG_EPS && ct.abs() > TRIG_EPS {
                            FastKind::Tilted { st, ct, mst: -st }
                        } else {
                            FastKind::Generic
                        };
                        ClassStatic {
                            base: DrawCall {
                                mesh: Arc::clone(&spec.meshes[c.mesh]),
                                transform: Mat4::IDENTITY,
                                vertex_shader: c.vertex_shader,
                                fragment_shader: c.fragment_shader,
                                texture: c.texture.map(|i| spec.textures[i]),
                                blend: c.blend,
                                depth_test: c.depth_test,
                            },
                            tilt: Mat4::rotation_x(c.tilt),
                            scale: Mat4::scale(Vec3::splat(c.size)),
                            k,
                            kind,
                            stk: st * k,
                            ctk: ct * k,
                            p1ctk: (p1 * ct) * k,
                            p1mstk: (p1 * -st) * k,
                            p1k: p1 * k,
                        }
                    })
                    .collect()
            })
            .collect();

        // Conservative per-class peak instance count: base count at the
        // loudest segment intensity, full wobble amplitude, peak
        // transition boost, peak noise, and a ×2 spike — plus slack.
        // The bound only sizes the placement cache; `placement()` falls
        // back to on-the-fly computation past it, so correctness never
        // depends on this estimate.
        let mut max_intensity = vec![0.0f64; spec.templates.len()];
        for s in timeline {
            max_intensity[s.template] = max_intensity[s.template].max(s.intensity);
        }
        let class_columns = spec
            .templates
            .iter()
            .map(|t| t.classes.len())
            .max()
            .unwrap_or(0);
        let placements = (0..class_columns)
            .map(|ci| {
                let bound = spec
                    .templates
                    .iter()
                    .enumerate()
                    .filter_map(|(ti, t)| {
                        t.classes.get(ci).map(|c| {
                            let peak = (c.base_count * max_intensity[ti] + c.count_amplitude.abs())
                                * boost
                                * (1.0 + spec.noise.abs())
                                * 2.0;
                            peak.max(0.0).round() as usize + 2
                        })
                    })
                    .max()
                    .unwrap_or(0);
                (0..bound)
                    .map(|j| Placement::compute(spec.seed, ci, j))
                    .collect()
            })
            .collect();

        GeometryTemplates {
            class_static,
            placements,
            proj,
            p0,
            p1,
            p2,
            p3,
        }
    }

    /// Number of frames in the sequence.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The game's shader library.
    pub fn shaders(&self) -> &ShaderTable {
        &self.shaders
    }

    /// The game's texture library.
    pub fn textures(&self) -> &[TextureDesc] {
        &self.textures
    }

    /// The game's mesh library.
    pub fn meshes(&self) -> &[Arc<Mesh>] {
        &self.meshes
    }

    /// The segment templates (for reporting).
    pub fn templates(&self) -> &[SegmentTemplate] {
        &self.templates
    }

    /// The timeline (for reporting).
    pub fn timeline(&self) -> &[Segment] {
        &self.timeline
    }

    /// The segment active at frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.frames()`.
    pub fn segment_at(&self, i: usize) -> &Segment {
        assert!(i < self.frames, "frame index out of range");
        let pos = self.timeline.partition_point(|s| s.start + s.len <= i);
        &self.timeline[pos]
    }

    /// Generates frame `i` deterministically.
    ///
    /// Bit-identical to the seed generator (retained as
    /// [`crate::reference::ReferenceWorkload`]): the frame RNG draws in
    /// the seed's exact order — spike coin, spike class, one noise draw
    /// per class — and the per-instance placement/matrix work replays
    /// the seed's exact arithmetic against the memoized cache.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.frames()`.
    pub fn frame(&self, i: usize) -> Frame {
        let segment = *self.segment_at(i);
        let template = &self.templates[segment.template];
        let statics = &self.cache.class_static[segment.template];
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let t = i as f32 * 0.03;
        let spike_class = if rng.gen_bool(self.spike_probability) {
            Some(rng.gen_range(0..template.classes.len().max(1)))
        } else {
            None
        };
        // Segment transitions are expensive: the first frames carry the
        // scene build / fade-in load, decaying geometrically. The window
        // scales with the segment (1 frame for short test segments, up
        // to 3 for full-length ones) so scaled-down sequences keep the
        // same transition *fraction* as paper-sized ones.
        let offset = i - segment.start;
        let window = (segment.len / 12).clamp(1, 3);
        let transition = if offset < window {
            1.0 + (self.transition_boost - 1.0) * 0.5f64.powi(offset as i32)
        } else {
            1.0
        };
        // Per-class instance counts first (the seed generator's per-
        // instance work never touches the frame RNG, so hoisting the
        // count loop preserves the draw order exactly) — this sizes the
        // draw list in one allocation instead of growth doublings.
        let mut counts = Vec::with_capacity(template.classes.len());
        let mut total = 0usize;
        for (ci, class) in template.classes.iter().enumerate() {
            let wobble = (t as f64 * class.wobble_freq + ci as f64 * 1.7).sin();
            let mut count = (class.base_count * segment.intensity + class.count_amplitude * wobble)
                * transition;
            count *= 1.0 + self.noise * rng.gen_range(-1.0..1.0);
            if spike_class == Some(ci) {
                count *= 2.0;
            }
            let count = count.round().max(0.0) as usize;
            counts.push(count);
            total += count;
        }
        let mut frame = Frame {
            draws: Vec::with_capacity(total),
        };
        for ((class, st), (ci, &count)) in template
            .classes
            .iter()
            .zip(statics)
            .zip(counts.iter().enumerate())
        {
            for j in 0..count {
                frame.draws.push(self.instance(class, st, ci, j, t));
            }
        }
        frame
    }

    /// Iterates over all frames of the sequence.
    pub fn iter_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.frames).map(move |i| self.frame(i))
    }

    /// Generates the whole sequence, fanning out across the
    /// `megsim-exec` worker pool in fixed [`GENERATION_CHUNK`]-frame
    /// chunks. Bit-identical to collecting [`Workload::iter_frames`] at
    /// every thread count.
    pub fn generate_frames(&self) -> Vec<Frame> {
        self.generate_range(0..self.frames)
    }

    /// Generates the frames of `range` in parallel, in index order.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > self.frames()`.
    pub fn generate_range(&self, range: std::ops::Range<usize>) -> Vec<Frame> {
        assert!(range.end <= self.frames, "frame range out of bounds");
        let start = range.start;
        megsim_exec::par_flat_map_chunks(range.len(), GENERATION_CHUNK, |r| {
            r.map(|k| self.frame(start + k)).collect()
        })
    }

    /// The placement triple of instance `j` of class column `ci` —
    /// cached, with an exact on-the-fly fallback past the cache bound.
    #[inline]
    fn placement(&self, ci: usize, j: usize) -> Placement {
        match self.cache.placements.get(ci).and_then(|v| v.get(j)) {
            Some(p) => *p,
            None => Placement::compute(self.seed, ci, j),
        }
    }

    fn instance(
        &self,
        class: &ObjectClass,
        st: &ClassStatic,
        class_index: usize,
        j: usize,
        t: f32,
    ) -> DrawCall {
        // Stable per-(class, instance) placement that drifts with time:
        // instances keep their identity across frames of a segment.
        let Placement { px, py, phase } = self.placement(class_index, j);
        let drift_x = (t * 0.8 + phase).sin() * 0.12;
        let drift_y = (t * 0.5 + phase).cos() * 0.08;
        let transform = match self.game_type {
            GameType::TwoD => {
                // Orthographic: place directly in NDC; layer by class.
                let layer = class_index as f32 * 0.01 + j as f32 * 1e-4;
                let (tx, ty, tz) = (px + drift_x, py + drift_y, -layer);
                let angle = (t + phase) * 0.3;
                // `Mat4::rotation_z` draws its entries from `sin_cos`;
                // calling the same intrinsic here keeps the bits equal.
                let (s, c) = angle.sin_cos();
                self.fast_2d(st, tx, ty, tz, s, c).unwrap_or_else(|| {
                    Mat4::translation(Vec3::new(tx, ty, tz))
                        * Mat4::rotation_z(angle)
                        * st.tilt
                        * st.scale
                })
            }
            GameType::ThreeD => {
                let dist = class.distance * (1.0 + 0.3 * (t * 0.4 + phase).sin());
                let tx = (px + drift_x) * dist * 0.9;
                let ty = (py + drift_y) * dist * 0.55;
                let tz = -dist;
                let angle = t * 0.7 + phase;
                let (sy, cy) = angle.sin_cos();
                self.fast_3d(st, tx, ty, tz, sy, cy).unwrap_or_else(|| {
                    self.cache.proj
                        * Mat4::translation(Vec3::new(tx, ty, tz))
                        * Mat4::rotation_y(angle)
                        * st.tilt
                        * st.scale
                })
            }
        };
        let mut draw = st.base.clone();
        draw.transform = transform;
        draw
    }

    /// Specialized 2-D transform: the exact bits of
    /// `translation(tx,ty,tz) * rotation_z(θ) * tilt * scale` under
    /// `Mat4::mul`'s left-associated component sums, with every
    /// statically-absorbed term skipped. Returns `None` (→ generic
    /// chain) whenever a skipped `±0.0` term could have controlled a
    /// result sign: zero translations, near-zero sin/cos, or a class
    /// that failed the constant audit.
    fn fast_2d(&self, st: &ClassStatic, tx: f32, ty: f32, tz: f32, s: f32, c: f32) -> Option<Mat4> {
        if s.abs() <= TRIG_EPS || c.abs() <= TRIG_EPS || tx == 0.0 || ty == 0.0 || tz == 0.0 {
            return None;
        }
        let k = st.k;
        let col3 = Vec4::new(tx, ty, tz, 1.0);
        match st.kind {
            FastKind::Generic => None,
            FastKind::Untilted => Some(Mat4::from_cols(
                Vec4::new(c * k, s * k, 0.0, 0.0),
                Vec4::new(-s * k, c * k, 0.0, 0.0),
                Vec4::new(0.0, 0.0, k, 0.0),
                col3,
            )),
            FastKind::Tilted { ct, mst, .. } => {
                let ms = -s;
                Some(Mat4::from_cols(
                    Vec4::new(c * k, s * k, 0.0, 0.0),
                    Vec4::new((ms * ct) * k, (c * ct) * k, st.stk, 0.0),
                    Vec4::new((ms * mst) * k, (c * mst) * k, st.ctk, 0.0),
                    col3,
                ))
            }
        }
    }

    /// Specialized 3-D transform: the exact bits of
    /// `proj * translation(tx,ty,tz) * rotation_y(θ) * tilt * scale`,
    /// same contract as [`Workload::fast_2d`].
    fn fast_3d(
        &self,
        st: &ClassStatic,
        tx: f32,
        ty: f32,
        tz: f32,
        sy: f32,
        cy: f32,
    ) -> Option<Mat4> {
        if sy.abs() <= TRIG_EPS || cy.abs() <= TRIG_EPS || tx == 0.0 || ty == 0.0 {
            return None;
        }
        let (p0, p1, p2, p3) = (self.cache.p0, self.cache.p1, self.cache.p2, self.cache.p3);
        let z3 = p2 * tz + p3;
        if z3 == 0.0 {
            return None;
        }
        let k = st.k;
        let col3 = Vec4::new(p0 * tx, p1 * ty, z3, -tz);
        let nsy = -sy;
        let ncy = -cy;
        let col0 = Vec4::new((p0 * cy) * k, 0.0, (p2 * nsy) * k, sy * k);
        match st.kind {
            FastKind::Generic => None,
            FastKind::Untilted => Some(Mat4::from_cols(
                col0,
                Vec4::new(0.0, st.p1k, 0.0, 0.0),
                Vec4::new((p0 * sy) * k, 0.0, (p2 * cy) * k, ncy * k),
                col3,
            )),
            FastKind::Tilted { st: stt, ct, .. } => {
                let q = p0 * sy;
                let r = p2 * cy;
                Some(Mat4::from_cols(
                    col0,
                    Vec4::new((q * stt) * k, st.p1ctk, (r * stt) * k, (ncy * stt) * k),
                    Vec4::new((q * ct) * k, st.p1mstk, (r * ct) * k, (ncy * ct) * k),
                    col3,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meshes::unit_quad;
    use megsim_gfx::shader::ShaderProgram;

    fn tiny_workload(frames_per_segment: usize) -> Workload {
        let mut shaders = ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "v0", 10));
        shaders.add(ShaderProgram::vertex(1, "v1", 20));
        shaders.add(ShaderProgram::fragment(0, "f0", 8, vec![]));
        shaders.add(ShaderProgram::fragment(1, "f1", 16, vec![]));
        let class = |vs: u32, fs: u32, base: f64| ObjectClass {
            mesh: 0,
            vertex_shader: ShaderId(vs),
            fragment_shader: ShaderId(fs),
            texture: None,
            blend: BlendMode::Opaque,
            depth_test: true,
            base_count: base,
            count_amplitude: 1.0,
            wobble_freq: 0.5,
            size: 0.2,
            tilt: 0.0,
            distance: 5.0,
        };
        Workload::new(WorkloadSpec {
            name: "Test Game".into(),
            alias: "tst".into(),
            game_type: GameType::TwoD,
            shaders,
            textures: vec![],
            meshes: vec![unit_quad(0)],
            templates: vec![
                SegmentTemplate {
                    label: "menu".into(),
                    classes: vec![class(0, 0, 3.0)],
                },
                SegmentTemplate {
                    label: "play".into(),
                    classes: vec![class(1, 1, 10.0), class(0, 1, 4.0)],
                },
            ],
            timeline: vec![
                (0, frames_per_segment),
                (1, frames_per_segment),
                (0, frames_per_segment),
            ],
            seed: 42,
            noise: 0.05,
            spike_probability: 0.0,
            transition_boost: 1.0,
        })
    }

    #[test]
    fn frame_count_is_timeline_total() {
        let w = tiny_workload(10);
        assert_eq!(w.frames(), 30);
    }

    #[test]
    fn segments_resolve_by_frame_index() {
        let w = tiny_workload(10);
        assert_eq!(w.segment_at(0).template, 0);
        assert_eq!(w.segment_at(10).template, 1);
        assert_eq!(w.segment_at(19).template, 1);
        assert_eq!(w.segment_at(29).template, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_at_rejects_overflow() {
        let w = tiny_workload(10);
        let _ = w.segment_at(30);
    }

    #[test]
    fn frames_are_deterministic() {
        let w = tiny_workload(10);
        let a = w.frame(5);
        let b = w.frame(5);
        assert_eq!(a.draws.len(), b.draws.len());
        for (x, y) in a.draws.iter().zip(&b.draws) {
            assert_eq!(x.transform, y.transform);
            assert_eq!(x.vertex_shader, y.vertex_shader);
        }
    }

    #[test]
    fn different_segments_use_different_shaders() {
        let w = tiny_workload(10);
        let menu = w.frame(2);
        let play = w.frame(15);
        assert!(menu.draws.iter().all(|d| d.vertex_shader == ShaderId(0)));
        assert!(play.draws.iter().any(|d| d.vertex_shader == ShaderId(1)));
        assert!(play.draws.len() > menu.draws.len());
    }

    #[test]
    fn same_template_segments_are_similar() {
        let w = tiny_workload(10);
        // Frames 2 and 22 are both "menu": draw counts within noise.
        let a = w.frame(2).draws.len() as f64;
        let b = w.frame(22).draws.len() as f64;
        assert!((a - b).abs() <= 3.0, "a = {a}, b = {b}");
    }

    #[test]
    fn iter_frames_covers_sequence() {
        let w = tiny_workload(5);
        assert_eq!(w.iter_frames().count(), 15);
    }

    #[test]
    #[should_panic(expected = "unknown mesh")]
    fn spec_validation_catches_bad_mesh() {
        let mut w = tiny_workload(1);
        let mut spec_template = w.templates()[0].clone();
        spec_template.classes[0].mesh = 99;
        // Rebuild with a corrupted template.
        let mut shaders = ShaderTable::new();
        shaders.add(ShaderProgram::vertex(0, "v0", 10));
        shaders.add(ShaderProgram::fragment(0, "f0", 8, vec![]));
        w = Workload::new(WorkloadSpec {
            name: "x".into(),
            alias: "x".into(),
            game_type: GameType::TwoD,
            shaders,
            textures: vec![],
            meshes: vec![unit_quad(0)],
            templates: vec![spec_template],
            timeline: vec![(0, 1)],
            seed: 0,
            noise: 0.0,
            spike_probability: 0.0,
            transition_boost: 1.0,
        });
        let _ = w;
    }
}
