//! Design-space exploration with MEGsim — the use-case the paper's
//! introduction motivates: sweeping a GPU design space would normally
//! require hundreds of full cycle-accurate runs; with MEGsim each
//! configuration only simulates the representative frames.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```
//!
//! The sweep varies the L2 capacity and the number of Fragment
//! Processors, evaluating each design point on the representative
//! frames selected *once* from the architecture-independent
//! characterization (the paper stresses that MEGsim's inputs do not
//! depend on the simulated microarchitecture, §III-B).

use megsim_core::evaluate::{characterize_sequence, simulate_representatives};
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_mem::CacheConfig;
use megsim_timing::{FrameStats, GpuConfig};
use megsim_workloads::by_alias;

fn main() {
    let workload = by_alias("hcr", 0.1, 7).expect("known benchmark alias"); // 200 frames
    let baseline = GpuConfig::mali450_like();
    let config = MegsimConfig::default();

    // Characterize once — valid for every design point.
    println!("characterizing {} frames once...", workload.frames());
    let matrix = characterize_sequence(
        workload.iter_frames(),
        workload.shaders(),
        &baseline,
        &config,
    );
    let selection = select_representatives(&matrix, &config);
    println!(
        "selected {} representatives ({:.1}x fewer frames per design point)\n",
        selection.k(),
        selection.reduction_factor()
    );

    println!(
        "{:>8} {:>4} {:>16} {:>12} {:>10}",
        "L2 KiB", "FPs", "est. cycles", "DRAM acc.", "IPC"
    );
    for l2_kib in [128u64, 256, 512] {
        for fps in [2usize, 4, 8] {
            let mut gpu = baseline.clone();
            gpu.l2 = CacheConfig::new("L2", l2_kib * 1024, 64, 2, 8, 18);
            gpu.fragment_processors = fps;
            let rep_stats = simulate_representatives(
                |i| workload.frame(i),
                &selection,
                workload.shaders(),
                &gpu,
            );
            // Scale representative statistics to full-sequence totals.
            let mut total = FrameStats::default();
            for (stats, rep) in rep_stats.iter().zip(&selection.representatives) {
                total.merge(&stats.scaled(rep.cluster_size as u64));
            }
            println!(
                "{:>8} {:>4} {:>16} {:>12} {:>10.2}",
                l2_kib,
                fps,
                total.cycles,
                total.dram_accesses(),
                total.ipc()
            );
        }
    }
    println!(
        "\neach design point simulated {} frames instead of {}",
        selection.k(),
        workload.frames()
    );
}
