//! Ordered bounded producer/consumer pipeline.
//!
//! [`ordered_pipeline`] decouples a parallelizable *produce* stage from
//! an order-dependent *consume* stage: producers fan out across the
//! worker pool and run ahead by at most `capacity` items, while the
//! consumer runs **on the caller thread, strictly in index order**.
//! This is the shape of warm-sequence GPU simulation — frame `N + 1`
//! renders (stateless, parallel) while frame `N` runs through the
//! timing model (stateful, sequential) — and of any other
//! stateful-fold-over-parallel-map stage.
//!
//! ## Determinism
//!
//! The consume stage observes items in index order on a single thread,
//! and each `produce(i)` depends only on `i` (the same contract as
//! [`crate::par_map_range`]), so the fold's result is bit-identical to
//! the plain sequential loop at every thread count and capacity.
//!
//! ## Backpressure
//!
//! At most `capacity` produced items are buffered at once: a producer
//! that claims index `i` blocks until `i < consumed + capacity`. A
//! slow consumer therefore bounds memory to `capacity` items plus the
//! (at most one per worker) items currently being produced.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crossbeam::thread::scope;

use crate::{in_pool, thread_count, IN_POOL};

/// Shared pipeline state: a ring of `capacity` slots plus the number of
/// items the consumer has retired.
struct Shared<T> {
    ring: Vec<Option<T>>,
    consumed: usize,
    /// Set when a producer panicked, so the consumer stops waiting and
    /// lets the scope propagate the panic instead of deadlocking.
    failed: bool,
}

/// Re-arms `failed` if a producer unwinds mid-`produce`.
struct FailGuard<'a, T> {
    state: &'a Mutex<Shared<T>>,
    ready: &'a Condvar,
    space: &'a Condvar,
    armed: bool,
}

impl<T> Drop for FailGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            if let Ok(mut st) = self.state.lock() {
                st.failed = true;
            }
            self.ready.notify_all();
            self.space.notify_all();
        }
    }
}

/// Runs a cleanup closure on drop unless disarmed — used to mark the
/// pipeline failed (waking every blocked stage) when the caller-thread
/// consume stage unwinds, so the scope join can propagate the panic
/// instead of deadlocking.
struct UnwindGuard<F: Fn()> {
    on_unwind: F,
    armed: bool,
}

impl<F: Fn()> Drop for UnwindGuard<F> {
    fn drop(&mut self) {
        if self.armed {
            (self.on_unwind)();
        }
    }
}

/// Runs `produce(0..n)` on the worker pool and feeds the results to
/// `consume(i, item)` on the caller thread in strict index order, with
/// producers running at most `capacity` items ahead of the consumer.
///
/// Falls back to the plain `produce → consume` loop when the pool would
/// not help (one thread, nested inside a pool worker, `capacity == 0`,
/// or `n <= 1`), so it is always safe to call unconditionally.
///
/// Panics in `produce` or `consume` propagate to the caller.
pub fn ordered_pipeline<T, P, C>(n: usize, capacity: usize, produce: P, mut consume: C)
where
    T: Send,
    P: Fn(usize) -> T + Sync,
    C: FnMut(usize, T),
{
    let threads = thread_count().saturating_sub(1).min(n);
    if threads == 0 || in_pool() || capacity == 0 || n <= 1 {
        for i in 0..n {
            let item = produce(i);
            consume(i, item);
        }
        return;
    }
    let state: Mutex<Shared<T>> = Mutex::new(Shared {
        ring: (0..capacity).map(|_| None).collect(),
        consumed: 0,
        failed: false,
    });
    let space = Condvar::new();
    let ready = Condvar::new();
    let next = AtomicUsize::new(0);
    scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Backpressure: wait until index `i` fits in the
                    // window the consumer has opened.
                    {
                        let mut st = state.lock().expect("pipeline state");
                        while i >= st.consumed + capacity && !st.failed {
                            st = space.wait(st).expect("pipeline state");
                        }
                        if st.failed {
                            break;
                        }
                    }
                    let mut guard = FailGuard {
                        state: &state,
                        ready: &ready,
                        space: &space,
                        armed: true,
                    };
                    let item = produce(i);
                    guard.armed = false;
                    drop(guard);
                    let mut st = state.lock().expect("pipeline state");
                    let slot = i % capacity;
                    debug_assert!(st.ring[slot].is_none(), "slot reused before consumption");
                    st.ring[slot] = Some(item);
                    // The consumer only ever waits for one specific
                    // slot, so notify_all is one wakeup.
                    ready.notify_all();
                }
            });
        }
        // Consumer: the caller thread folds items in index order. The
        // guard marks the pipeline failed if `consume` unwinds, so
        // producers blocked on the window wake up and exit.
        let mut guard = UnwindGuard {
            on_unwind: || {
                if let Ok(mut st) = state.lock() {
                    st.failed = true;
                }
                space.notify_all();
                ready.notify_all();
            },
            armed: true,
        };
        for i in 0..n {
            let item = {
                let slot = i % capacity;
                let mut st = state.lock().expect("pipeline state");
                while st.ring[slot].is_none() && !st.failed {
                    st = ready.wait(st).expect("pipeline state");
                }
                if st.failed {
                    // A producer panicked; stop consuming and let the
                    // scope join propagate its panic.
                    break;
                }
                let item = st.ring[slot].take().expect("slot filled");
                st.consumed = i + 1;
                space.notify_all();
                item
            };
            consume(i, item);
        }
        guard.armed = false;
    });
}

/// Input-side state of [`iter_pipeline`]: items pulled off the source
/// iterator, tagged with their sequence index, waiting for a map
/// worker.
struct SourceQueue<T> {
    queue: std::collections::VecDeque<(usize, T)>,
    /// Set when the source iterator is exhausted.
    done: bool,
    failed: bool,
}

/// Output-side state of [`iter_pipeline`]: the ordered ring plus the
/// total item count, known only once the source is exhausted.
struct StreamShared<U> {
    ring: Vec<Option<U>>,
    consumed: usize,
    total: Option<usize>,
    failed: bool,
}

/// Three-stage streaming pipeline over a sequential source of unknown
/// length: a dedicated thread pulls `source` in order, the worker pool
/// maps items concurrently, and `consume(i, mapped)` runs on the caller
/// thread in strict index order.
///
/// This is the decode → render → timing shape of streaming trace
/// replay: the source stage decodes frame `N + 2` off the trace reader
/// while workers render frame `N + 1` and the caller's stateful timing
/// model consumes frame `N`. It generalizes [`ordered_pipeline`] to
/// producers that cannot be indexed randomly (an iterator is the only
/// way to observe a streaming decoder).
///
/// ## Determinism
///
/// Items are tagged with their pull order, `map(i, item)` must depend
/// only on its arguments (plus shared read-only captures), and the
/// consumer observes results in index order on one thread — so the
/// fold is bit-identical to the plain sequential
/// `for` loop at every thread count and capacity.
///
/// ## Backpressure
///
/// At most `capacity` un-mapped items and `capacity` mapped-but-
/// unconsumed items are buffered; the source blocks when its queue is
/// full and a worker blocks until its index fits the consumer's
/// window. Peak memory is therefore bounded by `2 × capacity` items
/// (plus one per worker in flight and one held by the blocked source)
/// regardless of stream length.
///
/// Falls back to the inline sequential loop when the pool would not
/// help (one thread, nested inside a pool worker, or `capacity == 0`).
/// Panics in `source`, `map` or `consume` propagate to the caller.
pub fn iter_pipeline<I, T, U, M, C>(source: I, capacity: usize, map: M, mut consume: C)
where
    I: Iterator<Item = T> + Send,
    T: Send,
    U: Send,
    M: Fn(usize, T) -> U + Sync,
    C: FnMut(usize, U),
{
    let workers = thread_count().saturating_sub(1);
    if workers == 0 || in_pool() || capacity == 0 {
        for (i, item) in source.enumerate() {
            let mapped = map(i, item);
            consume(i, mapped);
        }
        return;
    }
    let input: Mutex<SourceQueue<T>> = Mutex::new(SourceQueue {
        queue: std::collections::VecDeque::with_capacity(capacity),
        done: false,
        failed: false,
    });
    let in_ready = Condvar::new(); // workers wait for items
    let in_space = Condvar::new(); // source waits for queue space
    let output: Mutex<StreamShared<U>> = Mutex::new(StreamShared {
        ring: (0..capacity).map(|_| None).collect(),
        consumed: 0,
        total: None,
        failed: false,
    });
    let out_ready = Condvar::new(); // consumer waits for its slot
    let out_space = Condvar::new(); // workers wait for the window
                                    // Marks both sides failed and wakes every waiter, so a panic in any
                                    // stage unblocks the others and the scope join can propagate it.
    let fail_all = || {
        if let Ok(mut st) = input.lock() {
            st.failed = true;
        }
        if let Ok(mut st) = output.lock() {
            st.failed = true;
        }
        in_ready.notify_all();
        in_space.notify_all();
        out_ready.notify_all();
        out_space.notify_all();
    };
    scope(|s| {
        // Source stage: one thread pulls the iterator in order. Runs a
        // fail-guard so an iterator panic releases the other stages.
        s.spawn(|| {
            IN_POOL.with(|flag| flag.set(true));
            let mut n = 0usize;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for item in source {
                    let mut st = input.lock().expect("stream input state");
                    while st.queue.len() >= capacity && !st.failed {
                        st = in_space.wait(st).expect("stream input state");
                    }
                    if st.failed {
                        return;
                    }
                    st.queue.push_back((n, item));
                    n += 1;
                    drop(st);
                    in_ready.notify_all();
                }
            }));
            match result {
                Ok(()) => {
                    input.lock().expect("stream input state").done = true;
                    output.lock().expect("stream output state").total = Some(n);
                    in_ready.notify_all();
                    out_ready.notify_all();
                }
                Err(payload) => {
                    fail_all();
                    std::panic::resume_unwind(payload);
                }
            }
        });
        // Map stage: pool workers pull tagged items and fill the ring.
        for _ in 0..workers {
            s.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                loop {
                    let (i, item) = {
                        let mut st = input.lock().expect("stream input state");
                        loop {
                            if st.failed {
                                return;
                            }
                            if let Some(pair) = st.queue.pop_front() {
                                break pair;
                            }
                            if st.done {
                                return;
                            }
                            st = in_ready.wait(st).expect("stream input state");
                        }
                    };
                    in_space.notify_all();
                    // Backpressure: wait until index `i` fits in the
                    // window the consumer has opened.
                    {
                        let mut st = output.lock().expect("stream output state");
                        while i >= st.consumed + capacity && !st.failed {
                            st = out_space.wait(st).expect("stream output state");
                        }
                        if st.failed {
                            return;
                        }
                    }
                    let mapped =
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            map(i, item)
                        })) {
                            Ok(mapped) => mapped,
                            Err(payload) => {
                                fail_all();
                                std::panic::resume_unwind(payload);
                            }
                        };
                    let mut st = output.lock().expect("stream output state");
                    let slot = i % capacity;
                    debug_assert!(st.ring[slot].is_none(), "slot reused before consumption");
                    st.ring[slot] = Some(mapped);
                    drop(st);
                    out_ready.notify_all();
                }
            });
        }
        // Consume stage: the caller thread folds in index order. The
        // guard marks both sides failed if `consume` unwinds, so the
        // source and workers wake up and exit instead of deadlocking
        // the scope join.
        let mut guard = UnwindGuard {
            on_unwind: &fail_all,
            armed: true,
        };
        let mut i = 0usize;
        loop {
            let item = {
                let slot = i % capacity;
                let mut st = output.lock().expect("stream output state");
                loop {
                    if st.failed || st.total.is_some_and(|t| i >= t) {
                        break None;
                    }
                    if st.ring[slot].is_some() {
                        let item = st.ring[slot].take().expect("slot filled");
                        st.consumed = i + 1;
                        break Some(item);
                    }
                    st = out_ready.wait(st).expect("stream output state");
                }
            };
            let Some(item) = item else {
                break;
            };
            out_space.notify_all();
            consume(i, item);
            i += 1;
        }
        guard.armed = false;
    });
}

/// [`iter_pipeline`] folding into an accumulator: the source thread
/// pulls the iterator in order, the pool maps, and `fold(&mut acc, i,
/// mapped)` runs on the caller thread in strict index order — the
/// single-pass shape of a fused characterize → online-cluster pipeline,
/// where the accumulator is a streaming clusterer consuming one mapped
/// frame at a time.
///
/// Because the fold observes items in index order on one thread, the
/// result is bit-identical to the plain sequential loop at every
/// thread count and capacity (same contract as [`iter_pipeline`]).
/// Panics in any stage propagate to the caller.
pub fn iter_fold<I, T, U, A, M, F>(source: I, capacity: usize, map: M, init: A, mut fold: F) -> A
where
    I: Iterator<Item = T> + Send,
    T: Send,
    U: Send,
    M: Fn(usize, T) -> U + Sync,
    F: FnMut(&mut A, usize, U),
{
    let mut acc = init;
    iter_pipeline(source, capacity, map, |i, item| fold(&mut acc, i, item));
    acc
}

/// Shards `0..n` into fixed `chunk`-sized ranges, maps each range on
/// the worker pool, and merges the results **in shard order** on the
/// caller thread — the record/replay shape of intra-frame parallel
/// timing: shard workers record independent per-tile logs while the
/// caller replays completed shards against shared stateful machinery
/// (caches, DRAM), with producers running at most `capacity` shards
/// ahead of the merge.
///
/// Shard boundaries depend only on `n` and `chunk`, and the merge
/// observes shards in ascending index order on one thread, so the
/// merged result is bit-identical to the sequential
/// `map → merge` loop at every thread count *and* every chunk size
/// whose per-shard map is itself chunk-independent (a pure map over
/// the range's items). Built on [`ordered_pipeline`], so the map stage
/// overlaps the merge of earlier shards instead of barriering.
///
/// # Panics
///
/// Panics if `chunk` is zero; panics in `map`/`merge` propagate.
pub fn shard_merge<T, M, F>(n: usize, chunk: usize, capacity: usize, map: M, mut merge: F)
where
    T: Send,
    M: Fn(std::ops::Range<usize>) -> T + Sync,
    F: FnMut(std::ops::Range<usize>, T),
{
    assert!(chunk > 0, "shard size must be positive");
    let shards = n.div_ceil(chunk);
    let range_of = |s: usize| s * chunk..((s + 1) * chunk).min(n);
    ordered_pipeline(
        shards,
        capacity,
        |s| map(range_of(s)),
        |s, item| merge(range_of(s), item),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_threads;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that touch the global thread override (shared
    /// with the lib.rs tests via an independent lock — the override is
    /// process-global, so tests here also take their own guard).
    static OVERRIDE_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    fn collect(n: usize, capacity: usize) -> Vec<u64> {
        let mut out = Vec::new();
        ordered_pipeline(
            n,
            capacity,
            |i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7,
            |_, v| out.push(v),
        );
        out
    }

    #[test]
    fn consumes_in_index_order_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock();
        let baseline = {
            set_threads(1);
            collect(257, 4)
        };
        for threads in [2, 3, 8] {
            set_threads(threads);
            assert_eq!(collect(257, 4), baseline, "threads = {threads}");
        }
        set_threads(0);
    }

    #[test]
    fn iter_fold_matches_sequential_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock();
        // An order-sensitive accumulator over a sequential source: the
        // streaming-clusterer shape (push rows in arrival order).
        let run = || {
            iter_fold(
                (0..311u64).map(|x| x.wrapping_mul(0x2545_F491_4F6C_DD1D)),
                4,
                |i, x| x.rotate_left((i % 29) as u32),
                (0u64, Vec::new()),
                |acc: &mut (u64, Vec<u64>), i, v| {
                    acc.0 = acc.0.wrapping_mul(31).wrapping_add(v ^ i as u64);
                    acc.1.push(v);
                },
            )
        };
        set_threads(1);
        let baseline = run();
        assert_eq!(baseline.1.len(), 311);
        for threads in [2, 3, 8] {
            set_threads(threads);
            assert_eq!(run(), baseline, "threads = {threads}");
        }
        set_threads(0);
    }

    #[test]
    fn capacity_bounds_buffered_items() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(8);
        let produced = AtomicU64::new(0);
        let mut consumed = 0u64;
        let capacity = 3u64;
        let threads = 7u64; // workers = thread_count() - 1
        ordered_pipeline(
            200,
            capacity as usize,
            |i| {
                produced.fetch_add(1, Ordering::SeqCst);
                i
            },
            |_, _| {
                consumed += 1;
                let in_flight = produced.load(Ordering::SeqCst) - consumed;
                // Buffered items are capped at `capacity`; up to one
                // more per worker may be mid-produce.
                assert!(
                    in_flight <= capacity + threads,
                    "{in_flight} items outstanding"
                );
            },
        );
        set_threads(0);
        assert_eq!(consumed, 200);
    }

    #[test]
    fn stateful_fold_matches_sequential() {
        let _guard = OVERRIDE_LOCK.lock();
        // A deliberately order-sensitive fold: the warm-GPU shape.
        let fold = |acc: u64, i: usize, v: u64| acc.rotate_left((i % 13) as u32) ^ v;
        set_threads(1);
        let mut expect = 0u64;
        ordered_pipeline(
            500,
            8,
            |i| i as u64 * 31,
            |i, v| expect = fold(expect, i, v),
        );
        set_threads(6);
        let mut got = 0u64;
        ordered_pipeline(500, 8, |i| i as u64 * 31, |i, v| got = fold(got, i, v));
        set_threads(0);
        assert_eq!(got, expect);
    }

    #[test]
    fn tiny_inputs_and_capacities_work() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        assert_eq!(collect(0, 4), Vec::<u64>::new());
        assert_eq!(collect(1, 4).len(), 1);
        assert_eq!(collect(64, 1).len(), 64); // capacity 1: lock-step
        set_threads(0);
    }

    #[test]
    fn shard_merge_covers_ranges_in_order_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock();
        let run = |threads: usize| {
            set_threads(threads);
            // Order-sensitive merge over per-shard partial sums: the
            // stateful-replay shape of sharded timing.
            let mut folded = 0u64;
            let mut seen: Vec<std::ops::Range<usize>> = Vec::new();
            shard_merge(
                103,
                8,
                4,
                |r| r.map(|i| (i as u64).wrapping_mul(31)).sum::<u64>(),
                |r, sum: u64| {
                    folded = folded.rotate_left(7) ^ sum;
                    seen.push(r);
                },
            );
            set_threads(0);
            (folded, seen)
        };
        let (baseline, ranges) = run(1);
        assert_eq!(ranges.len(), 13);
        assert_eq!(ranges[0], 0..8);
        assert_eq!(ranges[12], 96..103);
        for threads in [2, 8] {
            assert_eq!(run(threads).0, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn shard_merge_handles_empty_and_single() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let mut calls = 0;
        shard_merge(0, 4, 2, |r| r.len(), |_, _| calls += 1);
        assert_eq!(calls, 0);
        shard_merge(
            3,
            8,
            2,
            |r| r.len(),
            |r, len| {
                calls += 1;
                assert_eq!(r, 0..3);
                assert_eq!(len, 3);
            },
        );
        assert_eq!(calls, 1);
        set_threads(0);
    }

    #[test]
    fn iter_pipeline_consumes_in_order_at_any_thread_count() {
        let _guard = OVERRIDE_LOCK.lock();
        let run = |threads: usize| {
            set_threads(threads);
            // Order-sensitive fold over a mapped stream: the streamed
            // decode -> render -> timing shape.
            let mut folded = 0u64;
            let mut order = Vec::new();
            iter_pipeline(
                (0..257u64).map(|i| i * 3),
                4,
                |i, v| v.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64,
                |i, v| {
                    folded = folded.rotate_left((i % 11) as u32) ^ v;
                    order.push(i);
                },
            );
            set_threads(0);
            (folded, order)
        };
        let (baseline, order) = run(1);
        assert_eq!(order, (0..257).collect::<Vec<_>>());
        for threads in [2, 3, 8] {
            assert_eq!(run(threads).0, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn iter_pipeline_bounds_buffered_items() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(8);
        let pulled = AtomicU64::new(0);
        let mut consumed = 0u64;
        let capacity = 3u64;
        let workers = 7u64; // thread_count() - 1 map workers
        iter_pipeline(
            (0..200u64).inspect(|_| {
                pulled.fetch_add(1, Ordering::SeqCst);
            }),
            capacity as usize,
            |_, v| v,
            |_, _| {
                consumed += 1;
                let in_flight = pulled.load(Ordering::SeqCst) - consumed;
                // Source queue + ordered ring are each capped at
                // `capacity`; up to one more item per worker may be
                // mid-map, and the source holds one pulled item while
                // it waits for queue space.
                assert!(
                    in_flight <= 2 * capacity + workers + 1,
                    "{in_flight} items outstanding"
                );
            },
        );
        set_threads(0);
        assert_eq!(consumed, 200);
    }

    #[test]
    fn iter_pipeline_handles_empty_and_tiny_streams() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let mut calls = 0;
        iter_pipeline(std::iter::empty::<u32>(), 4, |_, v| v, |_, _| calls += 1);
        assert_eq!(calls, 0);
        let mut seen = Vec::new();
        iter_pipeline(std::iter::once(41u32), 4, |_, v| v + 1, |_, v| seen.push(v));
        assert_eq!(seen, vec![42]);
        // Capacity 1: full lock-step, still complete and ordered.
        let mut n = 0usize;
        iter_pipeline(
            0..64usize,
            1,
            |_, v| v,
            |i, v| {
                assert_eq!(i, v);
                n += 1;
            },
        );
        assert_eq!(n, 64);
        set_threads(0);
    }

    #[test]
    fn iter_pipeline_nested_inside_pool_runs_inline() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let out = crate::par_map_range(4, |i| {
            let mut inner = Vec::new();
            iter_pipeline(0..5usize, 2, |_, j| i * 10 + j, |_, v| inner.push(v));
            inner
        });
        set_threads(0);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_inside_pool_runs_inline() {
        let _guard = OVERRIDE_LOCK.lock();
        set_threads(4);
        let out = crate::par_map_range(4, |i| {
            let mut inner = Vec::new();
            ordered_pipeline(5, 2, |j| i * 10 + j, |_, v| inner.push(v));
            inner
        });
        set_threads(0);
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(*inner, (0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }
}
