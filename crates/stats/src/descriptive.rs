//! Descriptive statistics over `f64` slices.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; `0.0` for slices shorter than 1.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample (Bessel-corrected) variance; `0.0` for slices shorter than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Covariance of two equally-long series.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance requires equal lengths");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// The `q`-quantile (0 ≤ q ≤ 1) using linear interpolation between order
/// statistics. Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5-quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Relative error `|estimate - truth| / |truth|`, as a fraction.
///
/// Returns `0.0` when both are zero and `f64::INFINITY` when only the
/// truth is zero, so a missing denominator is loud rather than silent.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_series() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_population_vs_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn covariance_of_correlated_series() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((covariance(&xs, &ys) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn covariance_rejects_mismatched_lengths() {
        let _ = covariance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_order_independent() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&xs), 2.5);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert_eq!(relative_error(90.0, -100.0), 1.9);
    }
}
