//! Offline vendored mini property-testing framework.
//!
//! The build container cannot reach crates.io, so this crate
//! reimplements the slice of the `proptest` 1.x API the workspace's
//! tests use: the [`proptest!`] macro (including the
//! `#![proptest_config(...)]` header), range/tuple/collection
//! strategies, `prop_map`/`prop_flat_map`, `any::<T>()`,
//! `prop::bool::ANY`, `prop::sample::select`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number and
//!   seed so it can be reproduced, but is not minimized.
//! * **Deterministic seeding.** Cases derive from a hash of the test's
//!   module path and name, so runs are reproducible by construction
//!   (the real crate defaults to OS entropy + a persistence file).
//! * Rejections from `prop_assume!` are resampled with a bounded
//!   retry budget instead of the real global rejection accounting.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `bool`-valued strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy, as `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a test file needs, glob-imported as
/// `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror of the upstream `prop::` module tree.
    pub mod prop {
        pub use crate::{bool, collection, sample, strategy};
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (at {}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a
/// precondition; the runner draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Declares property tests. Each `fn` body runs against many sampled
/// inputs; see the crate docs for the supported surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal tt-muncher behind [`proptest!`]; expands one test fn per
/// step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            let strategy = ($($strategy,)+);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
