//! Banked DRAM timing model (DRAMsim2 substitute).
//!
//! Models the Table I main memory: 8 banks with an open-page (row-buffer)
//! policy, a 50–100-cycle latency band (row hit vs row miss), 64-byte
//! transfers at 4 bytes/cycle of bus bandwidth. Latencies are expressed in
//! *GPU* cycles — the paper's 600 MHz core vs 400 MHz LPDDR3 clock ratio
//! is folded into the latency constants, as TEAPOT's tables do.

use serde::{Deserialize, Serialize};

/// Static DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of banks (Table I: 8).
    pub banks: u32,
    /// Row-buffer size in bytes per bank.
    pub row_bytes: u64,
    /// Latency of a row-buffer hit, in GPU cycles (Table I lower bound).
    pub row_hit_latency: u64,
    /// Latency of a row-buffer miss (precharge + activate), upper bound.
    pub row_miss_latency: u64,
    /// Bus bandwidth in bytes per GPU cycle (Table I: 4, dual channel).
    pub bytes_per_cycle: u64,
    /// Transfer granularity in bytes (cache line, Table I: 64).
    pub line_size: u64,
}

impl DramConfig {
    /// The Table I LPDDR3-like part.
    pub const fn lpddr3_baseline() -> Self {
        Self {
            banks: 8,
            row_bytes: 2048,
            row_hit_latency: 50,
            row_miss_latency: 100,
            bytes_per_cycle: 4,
            line_size: 64,
        }
    }

    /// Bus cycles needed to move one line.
    pub const fn transfer_cycles(&self) -> u64 {
        self.line_size / self.bytes_per_cycle
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr3_baseline()
    }
}

/// Access counters of the DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Line reads serviced.
    pub reads: u64,
    /// Line writes serviced.
    pub writes: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that had to open a new row.
    pub row_misses: u64,
    /// Total cycles the data bus was occupied.
    pub bus_busy_cycles: u64,
}

impl DramStats {
    /// Total line transfers (the paper's "number of main memory
    /// accesses" metric).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit ratio in `[0, 1]`.
    pub fn row_hit_ratio(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.bus_busy_cycles += other.bus_busy_cycles;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycle at which the data is available (read) or committed (write).
    pub ready_at: u64,
    /// End-to-end latency observed by the requester.
    pub latency: u64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
}

/// Precomputed address decomposition. When the line size, bank count and
/// row span are all powers of two (every shipped configuration), the
/// divide/modulo chain in [`Dram::bank_and_row`] reduces to shifts and a
/// mask with bit-identical results; otherwise the division form is kept.
#[derive(Debug, Clone, Copy)]
enum AddrMap {
    /// `line = addr >> line_shift`, `bank = line & bank_mask`,
    /// `row = addr >> row_shift`.
    Shift {
        line_shift: u32,
        bank_mask: u64,
        row_shift: u32,
    },
    /// General divide/modulo decomposition for non-power-of-two geometry.
    Divide,
}

impl AddrMap {
    fn for_config(config: &DramConfig) -> Self {
        let banks = u64::from(config.banks);
        let row_span = config.row_bytes * banks;
        if config.line_size.is_power_of_two()
            && banks.is_power_of_two()
            && row_span.is_power_of_two()
        {
            Self::Shift {
                line_shift: config.line_size.trailing_zeros(),
                bank_mask: banks - 1,
                row_shift: row_span.trailing_zeros(),
            }
        } else {
            Self::Divide
        }
    }
}

/// The banked DRAM device.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    addr_map: AddrMap,
    transfer: u64,
    banks: Vec<Bank>,
    bus_free_at: u64,
    stats: DramStats,
}

impl Dram {
    /// Builds an idle DRAM with all rows closed.
    pub fn new(config: DramConfig) -> Self {
        Self {
            banks: vec![Bank::default(); config.banks as usize],
            addr_map: AddrMap::for_config(&config),
            transfer: config.transfer_cycles(),
            bus_free_at: 0,
            stats: DramStats::default(),
            config,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets counters (per-frame attribution); bank state persists.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    #[inline]
    fn bank_and_row(&self, addr: u64) -> (usize, u64) {
        match self.addr_map {
            AddrMap::Shift {
                line_shift,
                bank_mask,
                row_shift,
            } => (
                ((addr >> line_shift) & bank_mask) as usize,
                addr >> row_shift,
            ),
            AddrMap::Divide => {
                let line = addr / self.config.line_size;
                let bank = (line % u64::from(self.config.banks)) as usize;
                let row = addr / (self.config.row_bytes * u64::from(self.config.banks));
                (bank, row)
            }
        }
    }

    /// Performs one line-sized access starting no earlier than `now`.
    #[inline]
    pub fn access(&mut self, addr: u64, now: u64, is_write: bool) -> DramAccess {
        let (bank_idx, row) = self.bank_and_row(addr);
        let bank = &mut self.banks[bank_idx];
        let row_hit = bank.open_row == Some(row);
        let latency_core = if row_hit {
            self.config.row_hit_latency
        } else {
            self.config.row_miss_latency
        };
        // The bank is tied up for the access latency; the shared data
        // bus only for the burst transfer. Banks pipeline behind each
        // other, so concurrent accesses to different banks overlap.
        let start = now.max(bank.busy_until);
        let transfer = self.transfer;
        let bus_start = (start + latency_core).max(self.bus_free_at);
        let ready_at = bus_start + transfer;
        bank.open_row = Some(row);
        bank.busy_until = bus_start;
        self.bus_free_at = ready_at;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.bus_busy_cycles += transfer;
        DramAccess {
            ready_at,
            latency: ready_at - now,
            row_hit,
        }
    }

    /// Services `count` back-to-back accesses to `addr`, all issued at
    /// cycle `now`, replaying the scalar loop bit-for-bit.
    ///
    /// After the first access the row is open and nothing closes it
    /// inside the run, so accesses `2..=count` are guaranteed row hits;
    /// their bank/bus serialization is replayed without re-deriving the
    /// bank, row or hit/miss branch. Returns the **last** access's
    /// result (the cycle the whole streak drains).
    pub fn access_run(&mut self, addr: u64, now: u64, is_write: bool, count: u64) -> DramAccess {
        debug_assert!(count >= 1, "a run needs at least one access");
        let first = self.access(addr, now, is_write);
        if count == 1 {
            return first;
        }
        let (bank_idx, _) = self.bank_and_row(addr);
        let transfer = self.transfer;
        let hit_latency = self.config.row_hit_latency;
        let bank = &mut self.banks[bank_idx];
        for _ in 1..count {
            let start = now.max(bank.busy_until);
            let bus_start = (start + hit_latency).max(self.bus_free_at);
            bank.busy_until = bus_start;
            self.bus_free_at = bus_start + transfer;
        }
        if is_write {
            self.stats.writes += count - 1;
        } else {
            self.stats.reads += count - 1;
        }
        self.stats.row_hits += count - 1;
        self.stats.bus_busy_cycles += transfer * (count - 1);
        DramAccess {
            ready_at: self.bus_free_at,
            latency: self.bus_free_at - now,
            row_hit: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = DramConfig::lpddr3_baseline();
        assert_eq!(c.banks, 8);
        assert_eq!(c.bytes_per_cycle, 4);
        assert_eq!(c.line_size, 64);
        assert_eq!(c.transfer_cycles(), 16);
        assert_eq!((c.row_hit_latency, c.row_miss_latency), (50, 100));
    }

    #[test]
    fn shift_decomposition_matches_divide_form() {
        let config = DramConfig::lpddr3_baseline();
        let d = Dram::new(config);
        assert!(matches!(d.addr_map, AddrMap::Shift { .. }));
        for addr in (0u64..1 << 20).step_by(37) {
            let line = addr / config.line_size;
            let bank = (line % u64::from(config.banks)) as usize;
            let row = addr / (config.row_bytes * u64::from(config.banks));
            assert_eq!(d.bank_and_row(addr), (bank, row));
        }
        // Non-power-of-two geometry keeps the general divide form.
        let odd = DramConfig { banks: 6, ..config };
        assert!(matches!(Dram::new(odd).addr_map, AddrMap::Divide));
    }

    #[test]
    fn first_access_is_row_miss_second_is_hit() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(0, 0, false);
        assert!(!a.row_hit);
        assert_eq!(a.latency, 100 + 16);
        // Same bank (line 0 and line 8 map to bank 0), same row.
        let b = d.access(8 * 64, a.ready_at, false);
        assert!(b.row_hit);
        assert_eq!(b.latency, 50 + 16);
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(0, 0, false); // bank 0
        let b = d.access(64, 0, false); // bank 1, issued same cycle
                                        // Bank 1's activate overlaps bank 0's; only the 16-cycle burst
                                        // serializes on the shared bus.
        assert!(b.ready_at > a.ready_at);
        assert_eq!(b.ready_at, a.ready_at + 16);
    }

    #[test]
    fn same_bank_accesses_serialize_on_the_bank() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(0, 0, false);
        let b = d.access(0, 0, false); // same bank, row hit but queued
        assert!(b.latency > 50 + 16);
        assert!(b.ready_at > a.ready_at);
    }

    #[test]
    fn stats_count_reads_writes_and_bus() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0, false);
        d.access(64, 0, true);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().accesses(), 2);
        assert_eq!(d.stats().bus_busy_cycles, 32);
    }

    #[test]
    fn access_run_matches_scalar_loop() {
        let mut run = Dram::new(DramConfig::default());
        let mut scalar = Dram::new(DramConfig::default());
        // Warm up one bank so the run starts on an open row.
        run.access(0, 0, false);
        scalar.access(0, 0, false);
        let a = run.access_run(8 * 64, 500, true, 5);
        let mut last = None;
        for _ in 0..5 {
            last = Some(scalar.access(8 * 64, 500, true));
        }
        assert_eq!(Some(a), last);
        assert_eq!(run.stats(), scalar.stats());
        // State converged: the next access agrees too.
        assert_eq!(run.access(64, 2000, false), scalar.access(64, 2000, false));
    }

    #[test]
    fn access_run_cold_row_misses_once() {
        let mut run = Dram::new(DramConfig::default());
        let mut scalar = Dram::new(DramConfig::default());
        let a = run.access_run(0, 0, false, 3);
        let mut last = None;
        for _ in 0..3 {
            last = Some(scalar.access(0, 0, false));
        }
        assert_eq!(Some(a), last);
        assert_eq!(run.stats().row_misses, 1);
        assert_eq!(run.stats().row_hits, 2);
        assert_eq!(run.stats(), scalar.stats());
    }

    #[test]
    fn row_hit_ratio_reflects_locality() {
        let mut d = Dram::new(DramConfig::default());
        let mut now = 0;
        for i in 0..64 {
            // Sequential lines cycle through banks; each bank sees
            // consecutive lines of the same row -> high hit ratio.
            now = d.access(i * 64, now, false).ready_at;
        }
        assert!(d.stats().row_hit_ratio() > 0.8);
    }
}
