//! Cross-crate integration tests: the full MEGsim stack on miniature
//! workloads, checking the invariants that tie the crates together.

use megsim_core::evaluate::{
    characterize_sequence, evaluate_megsim, simulate_representatives, simulate_sequence,
};
use megsim_core::pipeline::MegsimConfig;
use megsim_core::sequence_totals;
use megsim_funcsim::{RenderConfig, Renderer};
use megsim_timing::{Gpu, GpuConfig};
use megsim_workloads::{build, by_alias, BENCHMARKS};

fn small_gpu() -> GpuConfig {
    GpuConfig::small(256, 256)
}

#[test]
fn trace_and_activity_agree_for_every_benchmark() {
    let gpu = small_gpu();
    for info in &BENCHMARKS {
        let w = build(info, 0.003, 5);
        let renderer = Renderer::new(RenderConfig::tbr(gpu.viewport));
        for i in (0..w.frames()).step_by(7) {
            let frame = w.frame(i);
            let trace = renderer.render_frame(&frame, w.shaders());
            assert_eq!(
                trace.visible_fragments(),
                trace.activity.fragments_shaded,
                "{} frame {i}: trace quads disagree with counters",
                info.alias
            );
            let vs_total: u64 = trace.activity.vertex_shader_invocations.iter().sum();
            assert_eq!(vs_total, trace.activity.vertices_shaded);
            let fs_total: u64 = trace.activity.fragment_shader_invocations.iter().sum();
            assert_eq!(fs_total, trace.activity.fragments_shaded);
            assert!(trace.activity.fragments_rasterized >= trace.activity.fragments_shaded);
            assert!(trace.activity.tile_bin_entries >= trace.activity.primitives_emitted.min(1));
        }
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let gpu = small_gpu();
    let w = by_alias("pvz", 0.01, 3).expect("known alias");
    let cfg = MegsimConfig::default().with_seed(17);
    let run = |seed_offset: u64| {
        let w2 = by_alias("pvz", 0.01, 3 + seed_offset).expect("known alias");
        let m = characterize_sequence(w2.iter_frames(), w2.shaders(), &gpu, &cfg);
        let pf = simulate_sequence(w2.iter_frames(), w2.shaders(), &gpu);
        evaluate_megsim(&m, &pf, &cfg)
    };
    let a = run(0);
    let b = run(0);
    assert_eq!(a.selection, b.selection);
    assert_eq!(a.estimated.cycles, b.estimated.cycles);
    assert_eq!(a.actual.cycles, b.actual.cycles);
    let _ = w;
}

#[test]
fn megsim_estimate_tracks_ground_truth_on_every_benchmark() {
    let gpu = small_gpu();
    for info in &BENCHMARKS {
        // ~40-75 frames per benchmark keeps this test quick.
        let w = build(info, 0.012, 21);
        let cfg = MegsimConfig::default().with_seed(1);
        let m = characterize_sequence(w.iter_frames(), w.shaders(), &gpu, &cfg);
        let pf = simulate_sequence(w.iter_frames(), w.shaders(), &gpu);
        let run = evaluate_megsim(&m, &pf, &cfg);
        assert!(
            run.errors.cycles < 0.10,
            "{}: cycles error {:.3}",
            info.alias,
            run.errors.cycles
        );
        assert!(run.frames_simulated() <= w.frames());
        assert!(run.frames_simulated() >= 1);
        // Cluster sizes partition the sequence.
        let total: usize = run
            .selection
            .representatives
            .iter()
            .map(|r| r.cluster_size)
            .sum();
        assert_eq!(total, w.frames(), "{}", info.alias);
    }
}

#[test]
fn standalone_representative_simulation_matches_full_run_closely() {
    let gpu = small_gpu();
    let w = by_alias("hcr", 0.02, 9).expect("known alias");
    let cfg = MegsimConfig::default();
    let m = characterize_sequence(w.iter_frames(), w.shaders(), &gpu, &cfg);
    let pf = simulate_sequence(w.iter_frames(), w.shaders(), &gpu);
    let run = evaluate_megsim(&m, &pf, &cfg);
    let rep_stats = simulate_representatives(|i| w.frame(i), &run.selection, w.shaders(), &gpu);
    assert_eq!(rep_stats.len(), run.frames_simulated());
    for (standalone, rep) in rep_stats.iter().zip(&run.selection.representatives) {
        let in_full = &pf[rep.frame_index];
        let ratio = standalone.cycles as f64 / in_full.cycles as f64;
        // Cache/DRAM state differs between the two runs (cold standalone
        // GPU vs mid-sequence state), so per-frame cycles legitimately
        // differ by tens of percent; they must stay the same order.
        assert!(
            (0.5..2.0).contains(&ratio),
            "frame {}: standalone {} vs in-sequence {}",
            rep.frame_index,
            standalone.cycles,
            in_full.cycles
        );
    }
}

#[test]
fn sequence_totals_equal_sum_of_frames() {
    let gpu = small_gpu();
    let w = by_alias("jjo", 0.005, 2).expect("known alias");
    let pf = simulate_sequence(w.iter_frames(), w.shaders(), &gpu);
    let totals = sequence_totals(&pf);
    assert_eq!(totals.cycles, pf.iter().map(|f| f.cycles).sum::<u64>());
    assert_eq!(
        totals.dram_accesses(),
        pf.iter().map(|f| f.dram_accesses()).sum::<u64>()
    );
}

#[test]
fn gpu_clock_equals_sum_of_frame_cycles() {
    let gpu_config = small_gpu();
    let w = by_alias("pvz", 0.004, 8).expect("known alias");
    let renderer = Renderer::new(RenderConfig::tbr(gpu_config.viewport));
    let mut gpu = Gpu::new(gpu_config);
    let mut sum = 0u64;
    for frame in w.iter_frames() {
        let trace = renderer.render_frame(&frame, w.shaders());
        sum += gpu.simulate_frame(&trace, w.shaders()).cycles;
    }
    assert_eq!(gpu.now(), sum);
}
