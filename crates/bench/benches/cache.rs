//! Frame-cache tier benchmark: one characterize + simulate campaign
//! timed cold, warm from the in-process memory tier, and warm from the
//! persistent disk store (a fresh-process start simulated by clearing
//! memory and reopening the store), plus the batch service's in-flight
//! dedup factor when identical campaigns race.
//!
//! Readings merge into `BENCH_8.json` at the repo root. The acceptance
//! bar pinned by `tests/persistent_cache.rs` is warm-disk ≥ 3× cold
//! with bit-identical results; this bench records the actual ratio.

use std::time::Instant;

use megsim_bench::report::{available_cores, merge_bench_json};
use megsim_core::evaluate::{characterize_sequence, simulate_sequence};
use megsim_core::pipeline::MegsimConfig;
use megsim_core::{frame_cache, run_batch, BatchJob, BatchOp};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

/// Best-of-three wall-clock seconds for `f`, running `prepare` before
/// every rep (outside the timed region) to pin the starting tier state.
fn secs(mut prepare: impl FnMut(), mut f: impl FnMut()) -> f64 {
    (0..3)
        .map(|_| {
            prepare();
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let cores = available_cores();
    let workload = by_alias("pvz", 0.02, 42).expect("known alias"); // 100 frames
    let gpu = GpuConfig::small(192, 192);
    let config = MegsimConfig::default();
    let n = workload.frames() as f64 * 2.0; // two passes per campaign
    let campaign = || {
        let matrix =
            characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
        std::hint::black_box(matrix);
        let stats = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu);
        std::hint::black_box(stats);
    };

    frame_cache::set_enabled(true);
    frame_cache::detach_store();
    let mut entries: Vec<(String, f64)> =
        vec![("cache_available_parallelism".to_string(), cores as f64)];

    // Cold: memory cleared before every rep, no store attached.
    let cold = secs(frame_cache::clear, campaign);
    entries.push(("cache_cold_frames_per_sec".to_string(), n / cold));
    println!("cache cold: {:.1} frames/s", n / cold);

    // Warm memory: the cold reps left the cache populated; don't clear.
    let warm_mem = secs(|| {}, campaign);
    entries.push(("cache_warm_memory_frames_per_sec".to_string(), n / warm_mem));
    entries.push(("cache_warm_memory_speedup".to_string(), cold / warm_mem));
    println!(
        "cache warm-memory: {:.1} frames/s ({:.1}x over cold)",
        n / warm_mem,
        cold / warm_mem
    );

    // Warm disk: populate a store, then time with the memory tier
    // cleared before every rep so every hit is a disk read + decode.
    let dir = std::env::temp_dir().join(format!("megsim_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    frame_cache::set_store_dir(&dir).expect("open bench store");
    frame_cache::clear();
    campaign();
    frame_cache::flush_store().expect("seal bench store");
    frame_cache::detach_store();
    frame_cache::set_store_dir(&dir).expect("reopen bench store");
    let warm_disk = secs(frame_cache::clear, campaign);
    frame_cache::clear();
    campaign(); // one counted run for the hit rate
    let report = frame_cache::report();
    let disk_hits = report.activity_disk_hits + report.stats_disk_hits;
    let disk_rate =
        disk_hits as f64 / (disk_hits + report.activity_misses + report.stats_misses).max(1) as f64;
    frame_cache::detach_store();
    let _ = std::fs::remove_dir_all(&dir);
    entries.push(("cache_warm_disk_frames_per_sec".to_string(), n / warm_disk));
    entries.push(("cache_warm_disk_speedup".to_string(), cold / warm_disk));
    entries.push(("cache_warm_disk_hit_rate".to_string(), disk_rate));
    println!(
        "cache warm-disk: {:.1} frames/s ({:.1}x over cold, {:.0}% disk hits)",
        n / warm_disk,
        cold / warm_disk,
        disk_rate * 100.0
    );

    // Batch dedup: identical campaigns racing on the pool share
    // in-flight results instead of recomputing.
    megsim_exec::set_threads(cores.clamp(2, 4));
    frame_cache::clear();
    let jobs: Vec<BatchJob> = (0..4)
        .map(|i| BatchJob {
            name: format!("race{i}"),
            op: BatchOp::Characterize,
            trace: String::new(),
            seed: 42,
            out: None,
            ground_truth: false,
        })
        .collect();
    let batch = run_batch(&jobs, |_| {
        let matrix =
            characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
        std::hint::black_box(matrix);
        Ok(String::new())
    });
    megsim_exec::set_threads(0);
    frame_cache::clear();
    entries.push(("cache_batch_dedup_factor".to_string(), batch.dedup_factor()));
    println!(
        "cache batch: {} identical campaigns, dedup {:.2}x on {} core(s)",
        jobs.len(),
        batch.dedup_factor(),
        cores
    );

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    if let Err(e) = merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
