//! Silhouette scoring — an alternative cluster-quality criterion to the
//! BIC used by the paper, provided for the ablation study.
//!
//! The silhouette of a point is `(b − a) / max(a, b)` where `a` is its
//! mean distance to its own cluster and `b` the smallest mean distance
//! to any other cluster; the score of a clustering is the mean
//! silhouette over all points, in `[-1, 1]` (higher is better).

use crate::kmeans::{euclidean_distance, KMeansResult};
use crate::matrix::PointMatrix;

/// Mean silhouette coefficient of a clustering.
///
/// Returns `0.0` for a single cluster (the coefficient is undefined) —
/// the conventional "no structure measurable" value. Singleton clusters
/// contribute a silhouette of `0` per the standard definition.
///
/// # Panics
///
/// Panics if labels and points disagree in length.
pub fn silhouette_score(data: &PointMatrix, result: &KMeansResult) -> f64 {
    assert_eq!(data.len(), result.labels.len(), "labels/points mismatch");
    let k = result.k();
    if k < 2 || data.len() < 2 {
        return 0.0;
    }
    let sizes = result.cluster_sizes();
    let mut total = 0.0;
    for (i, point) in data.iter_rows().enumerate() {
        let own = result.labels[i];
        if sizes[own] <= 1 {
            continue; // silhouette of a singleton is 0
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        for (j, other) in data.iter_rows().enumerate() {
            if i == j {
                continue;
            }
            sums[result.labels[j]] += euclidean_distance(point, other);
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / data.len() as f64
}

/// Picks the `k` in `[2, max_k]` with the best silhouette — the
/// alternative to the §III-F BIC search used in the ablation study.
///
/// Returns the best clustering and its score.
///
/// # Panics
///
/// Panics if `data` is empty or `max_k < 2`.
pub fn best_by_silhouette(
    data: &PointMatrix,
    max_k: usize,
    seed: u64,
) -> (KMeansResult, f64) {
    use crate::kmeans::{kmeans, KMeansConfig};
    assert!(!data.is_empty(), "cannot cluster an empty dataset");
    assert!(max_k >= 2, "silhouette selection needs at least k = 2");
    let mut best: Option<(KMeansResult, f64)> = None;
    for k in 2..=max_k.min(data.len()) {
        let result = kmeans(data, &KMeansConfig::new(k).with_seed(seed ^ k as u64));
        let score = silhouette_score(data, &result);
        #[allow(clippy::unnecessary_map_or)]
        let better = best.as_ref().map_or(true, |(_, s)| score > *s);
        if better {
            best = Some((result, score));
        }
    }
    best.expect("max_k >= 2 and data non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::{kmeans, KMeansConfig};

    fn blobs() -> PointMatrix {
        let mut pts = Vec::new();
        for i in 0..12 {
            let j = (i as f64 * 0.9).sin() * 0.3;
            pts.push(vec![j, j * 0.5]);
            pts.push(vec![10.0 + j, 10.0 - j]);
        }
        PointMatrix::from_rows(pts)
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        let s = silhouette_score(&data, &r);
        assert!(s > 0.9, "silhouette = {s}");
    }

    #[test]
    fn overclustered_fit_scores_lower() {
        let data = blobs();
        let good = kmeans(&data, &KMeansConfig::new(2).with_seed(1));
        let over = kmeans(&data, &KMeansConfig::new(8).with_seed(1));
        assert!(silhouette_score(&data, &good) > silhouette_score(&data, &over));
    }

    #[test]
    fn single_cluster_scores_zero() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(1));
        assert_eq!(silhouette_score(&data, &r), 0.0);
    }

    #[test]
    fn score_is_bounded() {
        let data = PointMatrix::from_rows(
            (0..20)
                .map(|i| vec![((i * 13) % 17) as f64, ((i * 7) % 11) as f64])
                .collect(),
        );
        for k in 2..6 {
            let r = kmeans(&data, &KMeansConfig::new(k).with_seed(2));
            let s = silhouette_score(&data, &r);
            assert!((-1.0..=1.0).contains(&s), "k={k}: {s}");
        }
    }

    #[test]
    fn best_by_silhouette_finds_two_blobs() {
        let data = blobs();
        let (result, score) = best_by_silhouette(&data, 6, 3);
        assert_eq!(result.k(), 2, "score = {score}");
        assert!(score > 0.9);
    }

    #[test]
    #[should_panic(expected = "at least k = 2")]
    fn best_by_silhouette_rejects_max_k_one() {
        let data = PointMatrix::from_rows(vec![vec![0.0], vec![1.0]]);
        let _ = best_by_silhouette(&data, 1, 0);
    }
}
