//! # megsim-gfx
//!
//! Graphics-pipeline data types shared by the MEGsim reproduction: linear
//! algebra, shader cost descriptors, textures, meshes/primitives, draw
//! calls and tile math.
//!
//! These types model the *inputs* of a mobile tile-based-rendering GPU
//! (see Fig. 1 of the paper): a workload is a sequence of [`draw::Frame`]s,
//! each an ordered list of [`draw::DrawCall`]s referencing meshes, shader
//! programs from a [`shader::ShaderTable`] and textures.
//!
//! ```
//! use std::sync::Arc;
//! use megsim_gfx::prelude::*;
//!
//! // A one-triangle frame drawn with shader pair (vs0, fs0).
//! let mesh = Arc::new(Mesh::new(
//!     vec![
//!         Vertex::at(Vec3::new(-1.0, -1.0, 0.0)),
//!         Vertex::at(Vec3::new(1.0, -1.0, 0.0)),
//!         Vertex::at(Vec3::new(0.0, 1.0, 0.0)),
//!     ],
//!     vec![0, 1, 2],
//!     0x1000,
//! ));
//! let mut frame = Frame::new();
//! frame.draws.push(DrawCall {
//!     mesh,
//!     transform: Mat4::IDENTITY,
//!     vertex_shader: ShaderId(0),
//!     fragment_shader: ShaderId(0),
//!     texture: None,
//!     blend: BlendMode::Opaque,
//!     depth_test: true,
//! });
//! assert_eq!(frame.submitted_triangles(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod draw;
pub mod geometry;
pub mod math;
pub mod shader;
pub mod texture;

/// Convenient glob import of the most-used types.
pub mod prelude {
    pub use crate::draw::{BlendMode, DrawCall, Frame, Viewport};
    pub use crate::geometry::{Mesh, Primitive, ScreenVertex, Vertex};
    pub use crate::math::{Mat4, Vec2, Vec3, Vec4};
    pub use crate::shader::{ShaderId, ShaderKind, ShaderProgram, ShaderTable, TextureFilter};
    pub use crate::texture::{TextureDesc, TextureId};
}
