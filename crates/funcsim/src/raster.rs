//! The Raster Pipeline: Rasterizer, Early Z-Test, Fragment Processors
//! and Blending (right half of Fig. 1).
//!
//! Three rendering modes are modeled (paper §II-A and §IV-A):
//!
//! * **TBR** — tile-based rendering (the paper's baseline): tiles are
//!   processed one at a time against an on-chip depth buffer; occluded
//!   fragments that arrive *before* their occluder are still shaded
//!   (overdraw).
//! * **TBDR** — tile-based *deferred* rendering with Hidden Surface
//!   Removal (the PowerVR-style extension the paper names): opaque
//!   geometry is depth-resolved per tile first, and only the final
//!   visible fragment of each pixel is shaded.
//! * **IMR** — immediate-mode rendering: primitives are rasterized in
//!   submission order against a full-screen depth buffer; there is no
//!   Tiling Engine, and every shaded color goes to the frame buffer in
//!   memory immediately (the off-chip-traffic problem §II-A describes).

use megsim_gfx::draw::{DrawCall, Frame, Viewport};
use megsim_gfx::geometry::Primitive;
use megsim_gfx::math::{edge_function, Vec2};
use megsim_gfx::shader::ShaderTable;

use crate::activity::FrameActivity;
use crate::binning::TileBins;
use crate::geometry::TransformedDraw;
use crate::renderer::RenderMode;
use crate::trace::{QuadTrace, TilePrim, TileTrace};

/// Scratch depth (+ HSR winner) buffer, reused across tiles. On-chip in
/// real TBR hardware; in DRAM (behind caches) for IMR.
struct DepthBuffer {
    depth: Vec<f32>,
    /// Sequence number of the currently-winning opaque primitive per
    /// pixel (TBDR only; `u32::MAX` = none).
    winner: Vec<u32>,
    width: u32,
}

impl DepthBuffer {
    fn new(width: u32, height: u32) -> Self {
        let n = (width * height) as usize;
        Self {
            depth: vec![f32::INFINITY; n],
            winner: vec![u32::MAX; n],
            width,
        }
    }

    fn clear(&mut self) {
        self.depth.fill(f32::INFINITY);
        self.winner.fill(u32::MAX);
    }

    #[inline]
    fn index(&self, lx: u32, ly: u32) -> usize {
        (ly * self.width + lx) as usize
    }
}

/// How a primitive interacts with the depth buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepthPolicy {
    /// Test and write (opaque, depth-tested geometry).
    TestWrite,
    /// Test without writing (blended geometry).
    TestOnly,
    /// Always pass (UI layers with depth testing disabled).
    Always,
}

impl DepthPolicy {
    fn of(draw: &DrawCall) -> Self {
        if !draw.depth_test {
            DepthPolicy::Always
        } else if draw.blend.reads_destination() {
            DepthPolicy::TestOnly
        } else {
            DepthPolicy::TestWrite
        }
    }
}

/// Rasterizes a frame in the requested mode, updating `activity` and —
/// when `collect_trace` is set — returning per-tile (or, for IMR, one
/// whole-screen pseudo-tile) quad traces for the timing model.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_frame(
    frame: &Frame,
    draws: &[TransformedDraw],
    bins: &TileBins,
    viewport: Viewport,
    shaders: &ShaderTable,
    mode: RenderMode,
    activity: &mut FrameActivity,
    collect_trace: bool,
) -> Vec<TileTrace> {
    match mode {
        RenderMode::TileBased | RenderMode::TileBasedDeferred => rasterize_tiles(
            frame,
            bins,
            viewport,
            shaders,
            mode == RenderMode::TileBasedDeferred,
            activity,
            collect_trace,
        ),
        RenderMode::Immediate => {
            rasterize_immediate(frame, draws, viewport, shaders, activity, collect_trace)
        }
    }
}

/// TBR / TBDR path: rasterize tile by tile in bin order.
fn rasterize_tiles(
    frame: &Frame,
    bins: &TileBins,
    viewport: Viewport,
    shaders: &ShaderTable,
    hidden_surface_removal: bool,
    activity: &mut FrameActivity,
    collect_trace: bool,
) -> Vec<TileTrace> {
    let mut tiles_out = Vec::new();
    let mut depth = DepthBuffer::new(viewport.tile_size, viewport.tile_size);
    let tiles_x = viewport.tiles_x();
    for (tile_index, prim_indices) in bins.touched_tiles() {
        let tx = tile_index % tiles_x;
        let ty = tile_index / tiles_x;
        let rect = viewport.tile_rect(tx, ty);
        let origin = (rect.0, rect.1);
        depth.clear();
        // Pass 1: rasterize every primitive. Opaque prims resolve depth
        // (and, under HSR, the per-pixel winner); others test only.
        let mut pending: Vec<(u32, Vec<QuadTrace>)> = Vec::new(); // (prim idx, quads)
        let mut deferred: Vec<u32> = Vec::new(); // non-opaque prims (HSR)
        for &pi in prim_indices {
            let binned = &bins.prims[pi as usize];
            let draw = &frame.draws[binned.draw_index as usize];
            let policy = DepthPolicy::of(draw);
            if hidden_surface_removal && policy != DepthPolicy::TestWrite {
                // Transparent/UI geometry is shaded after the opaque
                // resolve in a deferred pipeline.
                deferred.push(pi);
                continue;
            }
            let winner_seq = if hidden_surface_removal { Some(pi) } else { None };
            let mut quads = Vec::new();
            rasterize_prim(
                &binned.prim,
                rect,
                origin,
                policy,
                winner_seq,
                &mut depth,
                &mut quads,
            );
            if !quads.is_empty() {
                pending.push((pi, quads));
            }
        }
        // Pass 2 (HSR only): keep only the winning fragments of opaque
        // prims, then shade deferred geometry against the final depth.
        if hidden_surface_removal {
            for (pi, quads) in &mut pending {
                for quad in quads.iter_mut() {
                    let mut visible = 0u8;
                    for (bit, (dx, dy)) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().enumerate()
                    {
                        if quad.coverage & (1 << bit) == 0 {
                            continue;
                        }
                        let lx = u32::from(quad.x) + dx - origin.0;
                        let ly = u32::from(quad.y) + dy - origin.1;
                        if depth.winner[depth.index(lx, ly)] == *pi {
                            visible |= 1 << bit;
                        }
                    }
                    let culled = quad.visible.count_ones() - (quad.visible & visible).count_ones();
                    activity.fragments_hsr_culled += u64::from(culled);
                    quad.visible &= visible;
                }
            }
            for &pi in &deferred {
                let binned = &bins.prims[pi as usize];
                let draw = &frame.draws[binned.draw_index as usize];
                let mut quads = Vec::new();
                rasterize_prim(
                    &binned.prim,
                    rect,
                    origin,
                    DepthPolicy::of(draw),
                    None,
                    &mut depth,
                    &mut quads,
                );
                if !quads.is_empty() {
                    pending.push((pi, quads));
                }
            }
            // Restore submission order after the deferred append.
            pending.sort_by_key(|(pi, _)| *pi);
        }
        // Counters + trace emission.
        let mut prims_out = Vec::new();
        for (pi, quads) in pending {
            let binned = &bins.prims[pi as usize];
            let draw = &frame.draws[binned.draw_index as usize];
            count_prim(draw, &quads, shaders, activity);
            if collect_trace {
                let lod = draw
                    .texture
                    .map(|t| texture_lod(&binned.prim, t.width, t.height))
                    .unwrap_or(0);
                prims_out.push(tile_prim(draw, binned.draw_index, lod, quads));
            }
        }
        if collect_trace && !prims_out.is_empty() {
            tiles_out.push(TileTrace {
                tile_index,
                prims: prims_out,
            });
        }
    }
    tiles_out
}

/// IMR path: full-screen depth buffer, strict submission order, one
/// whole-screen pseudo-tile in the trace.
fn rasterize_immediate(
    frame: &Frame,
    draws: &[TransformedDraw],
    viewport: Viewport,
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
    collect_trace: bool,
) -> Vec<TileTrace> {
    let mut depth = DepthBuffer::new(viewport.width, viewport.height);
    let rect = (0, 0, viewport.width, viewport.height);
    let mut prims_out = Vec::new();
    for transformed in draws {
        let draw = &frame.draws[transformed.geometry.draw_index as usize];
        let policy = DepthPolicy::of(draw);
        for prim in &transformed.prims {
            let mut quads = Vec::new();
            rasterize_prim(prim, rect, (0, 0), policy, None, &mut depth, &mut quads);
            if quads.is_empty() {
                continue;
            }
            count_prim(draw, &quads, shaders, activity);
            if collect_trace {
                let lod = draw
                    .texture
                    .map(|t| texture_lod(prim, t.width, t.height))
                    .unwrap_or(0);
                prims_out.push(tile_prim(draw, transformed.geometry.draw_index, lod, quads));
            }
        }
    }
    if collect_trace && !prims_out.is_empty() {
        vec![TileTrace {
            tile_index: 0,
            prims: prims_out,
        }]
    } else {
        Vec::new()
    }
}

/// Updates the activity counters for one primitive's quads.
fn count_prim(
    draw: &DrawCall,
    quads: &[QuadTrace],
    shaders: &ShaderTable,
    activity: &mut FrameActivity,
) {
    let fs = shaders.fragment_shader(draw.fragment_shader);
    let mut covered = 0u64;
    let mut visible = 0u64;
    for q in quads {
        covered += u64::from(q.covered_count());
        visible += u64::from(q.visible_count());
    }
    activity.quads_rasterized += quads.len() as u64;
    activity.fragments_rasterized += covered;
    if draw.depth_test {
        activity.fragments_early_z_culled += covered - visible;
    }
    activity.fragments_shaded += visible;
    activity.fragment_shader_invocations[draw.fragment_shader.0 as usize] += visible;
    activity.fragment_instructions += visible * u64::from(fs.instruction_count());
    if draw.texture.is_some() {
        for filter in &fs.texture_samples {
            let idx = match filter {
                megsim_gfx::shader::TextureFilter::Nearest => 0,
                megsim_gfx::shader::TextureFilter::Linear => 1,
                megsim_gfx::shader::TextureFilter::Bilinear => 2,
                megsim_gfx::shader::TextureFilter::Trilinear => 3,
            };
            activity.texture_samples[idx] += visible;
        }
    }
    activity.blend_ops += visible;
}

/// Builds the trace record of one primitive.
fn tile_prim(draw: &DrawCall, draw_index: u32, lod: u32, quads: Vec<QuadTrace>) -> TilePrim {
    TilePrim {
        draw_index,
        fragment_shader: draw.fragment_shader,
        texture: draw.texture,
        blend: draw.blend,
        depth_test: draw.depth_test,
        // position(2) + depth + 1/w + uv(2) interpolants.
        attributes: 6,
        lod,
        quads,
    }
}

/// Mip level keeping the texel:pixel ratio near one, from the screen-
/// space UV gradient of the primitive (constant under affine
/// interpolation).
pub(crate) fn texture_lod(prim: &Primitive, tex_w: u32, tex_h: u32) -> u32 {
    let area2 = prim.signed_area2();
    if area2.abs() < 1e-6 {
        return 0;
    }
    let inv = 1.0 / area2;
    let [v0, v1, v2] = &prim.v;
    // Barycentric weight gradients (constant per primitive).
    let dw0 = Vec2::new(v1.y - v2.y, v2.x - v1.x) * inv;
    let dw1 = Vec2::new(v2.y - v0.y, v0.x - v2.x) * inv;
    let dw2 = Vec2::new(v0.y - v1.y, v1.x - v0.x) * inv;
    let dudx = v0.uv.x * dw0.x + v1.uv.x * dw1.x + v2.uv.x * dw2.x;
    let dudy = v0.uv.x * dw0.y + v1.uv.x * dw1.y + v2.uv.x * dw2.y;
    let dvdx = v0.uv.y * dw0.x + v1.uv.y * dw1.x + v2.uv.y * dw2.x;
    let dvdy = v0.uv.y * dw0.y + v1.uv.y * dw1.y + v2.uv.y * dw2.y;
    let texels_per_px = (dudx.abs().max(dudy.abs()) * tex_w as f32)
        .max(dvdx.abs().max(dvdy.abs()) * tex_h as f32);
    if texels_per_px <= 1.0 {
        0
    } else {
        (texels_per_px.log2().round() as u32).min(16)
    }
}

/// Rasterizes one primitive clipped to `rect`, appending the produced
/// quads. Depth is resolved immediately against `depth` (whose local
/// coordinates start at `origin`); when `winner_seq` is set, passing
/// opaque fragments record their primitive in the winner buffer (HSR).
fn rasterize_prim(
    prim: &Primitive,
    (rx0, ry0, rx1, ry1): (u32, u32, u32, u32),
    origin: (u32, u32),
    policy: DepthPolicy,
    winner_seq: Option<u32>,
    depth: &mut DepthBuffer,
    quads: &mut Vec<QuadTrace>,
) {
    let a = prim.v[0].pos2();
    let b = prim.v[1].pos2();
    let c = prim.v[2].pos2();
    let area2 = prim.signed_area2();
    debug_assert!(area2 > 0.0, "backfaces culled in geometry");
    let inv_area2 = 1.0 / area2;
    // Clamp the primitive bbox to the rect and snap to even pixels so we
    // walk whole quads (rect corners are even: tiles are 32-aligned and
    // the IMR rect starts at 0).
    let (min_x, min_y, max_x, max_y) = prim.bounds();
    let x0 = (min_x.floor().max(rx0 as f32) as u32) & !1;
    let y0 = (min_y.floor().max(ry0 as f32) as u32) & !1;
    let x1 = (max_x.ceil().min(rx1 as f32) as u32).min(rx1);
    let y1 = (max_y.ceil().min(ry1 as f32) as u32).min(ry1);
    if x0 >= x1 || y0 >= y1 {
        return;
    }
    // Top-left fill rule flags per edge.
    let top_left = |p: Vec2, q: Vec2| (p.y == q.y && q.x < p.x) || q.y > p.y;
    let tl = [top_left(a, b), top_left(b, c), top_left(c, a)];
    let mut qy = y0;
    while qy < y1 {
        let mut qx = x0;
        while qx < x1 {
            let mut coverage = 0u8;
            let mut visible = 0u8;
            let mut uv_sum = Vec2::default();
            let mut covered_px = 0u32;
            for (bit, (dx, dy)) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().enumerate() {
                let px = qx + dx;
                let py = qy + dy;
                if px >= x1 || py >= y1 {
                    continue;
                }
                let p = Vec2::new(px as f32 + 0.5, py as f32 + 0.5);
                let e0 = edge_function(a, b, p);
                let e1 = edge_function(b, c, p);
                let e2 = edge_function(c, a, p);
                let inside = (e0 > 0.0 || (e0 == 0.0 && tl[0]))
                    && (e1 > 0.0 || (e1 == 0.0 && tl[1]))
                    && (e2 > 0.0 || (e2 == 0.0 && tl[2]));
                if !inside {
                    continue;
                }
                coverage |= 1 << bit;
                covered_px += 1;
                // Affine barycentric interpolation (e0 spans edge a→b and
                // therefore weights vertex 2, etc.).
                let w2 = e0 * inv_area2;
                let w0 = e1 * inv_area2;
                let w1 = e2 * inv_area2;
                let z = prim.v[0].z * w0 + prim.v[1].z * w1 + prim.v[2].z * w2;
                let uv = prim.v[0].uv * w0 + prim.v[1].uv * w1 + prim.v[2].uv * w2;
                uv_sum = uv_sum + uv;
                let idx = depth.index(px - origin.0, py - origin.1);
                let passes = match policy {
                    DepthPolicy::Always => true,
                    DepthPolicy::TestOnly | DepthPolicy::TestWrite => z < depth.depth[idx],
                };
                if passes {
                    visible |= 1 << bit;
                    if policy == DepthPolicy::TestWrite {
                        depth.depth[idx] = z;
                        if let Some(seq) = winner_seq {
                            depth.winner[idx] = seq;
                        }
                    }
                }
            }
            if coverage != 0 {
                quads.push(QuadTrace {
                    x: qx as u16,
                    y: qy as u16,
                    coverage,
                    visible,
                    uv: uv_sum / covered_px.max(1) as f32,
                });
            }
            qx += 2;
        }
        qy += 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::bin_primitives;
    use crate::trace::DrawGeometry;
    use megsim_gfx::draw::BlendMode;
    use megsim_gfx::geometry::{Mesh, ScreenVertex, Vertex};
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::{ShaderId, ShaderProgram, TextureFilter};
    use megsim_gfx::texture::TextureDesc;
    use std::sync::Arc;

    fn sv(x: f32, y: f32, z: f32) -> ScreenVertex {
        ScreenVertex {
            x,
            y,
            z,
            inv_w: 1.0,
            uv: Vec2::new(x / 64.0, y / 64.0),
        }
    }

    fn shaders() -> ShaderTable {
        let mut t = ShaderTable::new();
        t.add(ShaderProgram::vertex(0, "vs", 8));
        t.add(ShaderProgram::fragment(
            0,
            "fs",
            6,
            vec![TextureFilter::Bilinear],
        ));
        t
    }

    fn dummy_draw(blend: BlendMode, depth_test: bool, textured: bool) -> DrawCall {
        DrawCall {
            mesh: Arc::new(Mesh::new(vec![Vertex::at(Vec3::ZERO); 3], vec![0, 1, 2], 0)),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: textured.then(|| TextureDesc::new(0, 64, 64, 4, 0x1000)),
            blend,
            depth_test,
        }
    }

    fn transformed(prims: Vec<Primitive>, draw_index: u32) -> TransformedDraw {
        TransformedDraw {
            geometry: DrawGeometry {
                draw_index,
                vertex_shader: ShaderId(0),
                vertex_shader_instructions: 8,
                vertex_fetch_addresses: vec![],
                vertices_shaded: 3,
                primitives_assembled: prims.len() as u32,
                primitives_emitted: prims.len() as u32,
            },
            prims,
        }
    }

    /// A screen-aligned right triangle covering roughly half of a square
    /// with corner `(x, y)` and size `s`.
    fn tri_at(x: f32, y: f32, s: f32, z: f32) -> Primitive {
        Primitive {
            v: [sv(x, y, z), sv(x + s, y, z), sv(x, y + s, z)],
        }
    }

    fn run_mode(
        prims_per_draw: Vec<(Vec<Primitive>, DrawCall)>,
        viewport: Viewport,
        mode: RenderMode,
    ) -> (FrameActivity, Vec<TileTrace>) {
        let mut frame = Frame::new();
        let mut draws = Vec::new();
        let mut act = FrameActivity::new(1, 1);
        for (i, (prims, draw)) in prims_per_draw.into_iter().enumerate() {
            frame.draws.push(draw);
            draws.push(transformed(prims, i as u32));
        }
        let bins = bin_primitives(&draws, viewport, &mut act);
        let tiles = rasterize_frame(
            &frame, &draws, &bins, viewport, &shaders(), mode, &mut act, true,
        );
        (act, tiles)
    }

    #[test]
    fn tbr_counts_match_covered_area() {
        let viewport = Viewport::new(64, 64, 32);
        let (act, tiles) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 32.0, 0.5)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBased,
        );
        assert!((act.fragments_rasterized as i64 - 512).abs() <= 32);
        assert_eq!(act.fragments_shaded, act.fragments_rasterized);
        assert_eq!(act.fragments_early_z_culled, 0);
        assert_eq!(tiles.len(), 1);
    }

    #[test]
    fn tbr_early_z_culls_only_back_to_front_overdraw() {
        let viewport = Viewport::new(32, 32, 32);
        // Near first, then far: far is culled by early-Z.
        let (act, _) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 16.0, 0.2), tri_at(0.0, 0.0, 16.0, 0.8)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBased,
        );
        assert_eq!(act.fragments_early_z_culled * 2, act.fragments_rasterized);
        // Far first, then near: both are shaded (overdraw).
        let (act2, _) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 16.0, 0.8), tri_at(0.0, 0.0, 16.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBased,
        );
        assert_eq!(act2.fragments_early_z_culled, 0);
        assert_eq!(act2.fragments_shaded, act2.fragments_rasterized);
    }

    #[test]
    fn tbdr_removes_overdraw_regardless_of_order() {
        let viewport = Viewport::new(32, 32, 32);
        // Far first, then near — the worst case for TBR.
        let (act, _) = run_mode(
            vec![(
                vec![tri_at(0.0, 0.0, 16.0, 0.8), tri_at(0.0, 0.0, 16.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::TileBasedDeferred,
        );
        // Only the near triangle's fragments are shaded.
        assert_eq!(act.fragments_shaded * 2, act.fragments_rasterized);
        assert!(act.fragments_hsr_culled > 0);
    }

    #[test]
    fn tbdr_still_shades_transparents_on_top() {
        let viewport = Viewport::new(32, 32, 32);
        let (act, _) = run_mode(
            vec![
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.5)],
                    dummy_draw(BlendMode::Opaque, true, false),
                ),
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.2)],
                    dummy_draw(BlendMode::AlphaBlend, true, false),
                ),
            ],
            viewport,
            RenderMode::TileBasedDeferred,
        );
        // Opaque + transparent both visible: 2 layers shaded.
        assert_eq!(act.fragments_shaded, act.fragments_rasterized);
        assert_eq!(act.fragments_hsr_culled, 0);
    }

    #[test]
    fn tbdr_occludes_transparent_behind_opaque() {
        let viewport = Viewport::new(32, 32, 32);
        let (act, _) = run_mode(
            vec![
                // Transparent submitted first but *behind* the opaque.
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.8)],
                    dummy_draw(BlendMode::AlphaBlend, true, false),
                ),
                (
                    vec![tri_at(0.0, 0.0, 16.0, 0.2)],
                    dummy_draw(BlendMode::Opaque, true, false),
                ),
            ],
            viewport,
            RenderMode::TileBasedDeferred,
        );
        // Only the opaque layer is shaded: the transparent fails the
        // deferred depth test.
        assert_eq!(act.fragments_shaded * 2, act.fragments_rasterized);
    }

    #[test]
    fn imr_produces_single_pseudo_tile_spanning_screen() {
        let viewport = Viewport::new(128, 128, 32);
        // A triangle crossing several tile boundaries.
        let (act, tiles) = run_mode(
            vec![(
                vec![tri_at(10.0, 10.0, 100.0, 0.5)],
                dummy_draw(BlendMode::Opaque, true, false),
            )],
            viewport,
            RenderMode::Immediate,
        );
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].tile_index, 0);
        assert!(act.fragments_shaded > 0);
        // One primitive = one trace entry (no per-tile splitting).
        assert_eq!(tiles[0].prims.len(), 1);
    }

    #[test]
    fn imr_and_tbr_shade_the_same_fragments() {
        let viewport = Viewport::new(64, 64, 32);
        let scene = || {
            vec![(
                vec![tri_at(4.0, 4.0, 48.0, 0.5), tri_at(10.0, 10.0, 20.0, 0.2)],
                dummy_draw(BlendMode::Opaque, true, false),
            )]
        };
        let (tbr, _) = run_mode(scene(), viewport, RenderMode::TileBased);
        let (imr, _) = run_mode(scene(), viewport, RenderMode::Immediate);
        assert_eq!(tbr.fragments_rasterized, imr.fragments_rasterized);
        assert_eq!(tbr.fragments_shaded, imr.fragments_shaded);
    }

    #[test]
    fn trace_quads_agree_with_counters_in_all_modes() {
        let viewport = Viewport::new(64, 64, 32);
        for mode in [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ] {
            let (act, tiles) = run_mode(
                vec![(
                    vec![tri_at(3.0, 5.0, 20.0, 0.4), tri_at(6.0, 7.0, 18.0, 0.3)],
                    dummy_draw(BlendMode::Opaque, true, true),
                )],
                viewport,
                mode,
            );
            let visible: u64 = tiles
                .iter()
                .flat_map(|t| &t.prims)
                .flat_map(|p| &p.quads)
                .map(|q| u64::from(q.visible_count()))
                .sum();
            assert_eq!(visible, act.fragments_shaded, "{mode:?}");
        }
    }

    #[test]
    fn lod_selection_scales_with_screen_size() {
        // A triangle whose UVs span [0, 1] regardless of screen size: a
        // tiny one compresses many texels per pixel (high mip), a big
        // one approaches 1 texel/pixel (level 0).
        let unit_uv_tri = |s: f32| {
            let mut p = tri_at(0.0, 0.0, s, 0.5);
            p.v[0].uv = Vec2::new(0.0, 0.0);
            p.v[1].uv = Vec2::new(1.0, 0.0);
            p.v[2].uv = Vec2::new(0.0, 1.0);
            p
        };
        let small = unit_uv_tri(4.0);
        let big = unit_uv_tri(512.0);
        assert!(texture_lod(&small, 512, 512) > texture_lod(&big, 512, 512));
        assert_eq!(texture_lod(&big, 512, 512), 0);
    }
}
