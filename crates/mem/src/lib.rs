//! # megsim-mem
//!
//! Memory-system substrate of the MEGsim reproduction: set-associative
//! write-back caches, a banked open-page DRAM model (the DRAMsim2
//! substitute of the paper's evaluation stack) and the shared L2 + DRAM
//! hierarchy that every first-level cache of the Fig. 1 GPU refills
//! through.
//!
//! ```
//! use megsim_mem::{CacheConfig, MemoryHierarchy, DramConfig};
//!
//! let mut mem = MemoryHierarchy::mali450_baseline();
//! let miss = mem.access(0x1000, 0, false);
//! let hit = mem.access(0x1000, miss.ready_at, false);
//! assert!(!miss.l2_hit);
//! assert!(hit.l2_hit);
//! assert!(hit.latency < miss.latency);
//! # let _ = (CacheConfig::new("x", 1024, 64, 2, 1, 1), DramConfig::default());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod cache;
#[cfg(any(test, feature = "reference"))]
pub mod cache_reference;
pub mod dram;
pub mod hierarchy;
#[cfg(any(test, feature = "reference"))]
pub mod hierarchy_reference;
pub mod interconnect;
pub mod runlog;
pub mod topology;

pub use addr::AddressSpace;
pub use cache::{Cache, CacheAccess, CacheConfig, CacheStats};
#[cfg(any(test, feature = "reference"))]
pub use cache_reference::ReferenceCache;
pub use dram::{Dram, DramAccess, DramConfig, DramStats};
pub use hierarchy::{HierarchyAccess, MemoryHierarchy, MemoryStats};
#[cfg(any(test, feature = "reference"))]
pub use hierarchy_reference::{ReferenceDram, ReferenceMemoryHierarchy};
pub use interconnect::{Link, LinkConfig, LinkStats, LinkTransfer};
pub use runlog::RunCoalescer;
pub use topology::{MemoryPool, Topology};
