//! End-to-end drivers tying the whole toolchain together: functional
//! characterization, full cycle-level simulation, MEGsim selection and
//! accuracy evaluation — the §IV/§V experimental flow.
//!
//! Frames are embarrassingly parallel once each one gets its own GPU
//! state, so the heavy passes ([`characterize_sequence`],
//! [`simulate_sequence`], [`simulate_representatives`]) fan out across
//! frames on the `megsim-exec` worker pool. Every frame's result
//! depends only on its index, so outputs are bit-identical at any
//! thread count. The warm-cache ground truth
//! ([`simulate_sequence_warm`]) is order-dependent but still overlaps
//! rendering with timing through a bounded ordered pipeline.
//!
//! The sequence passes consume their frames through a bounded
//! [`megsim_exec::iter_pipeline`] rather than collecting them first, so
//! a streaming source — `megsim-gl`'s frame-granular trace
//! decoder — flows through decode → render → timing with only a
//! window of frames resident, regardless of trace length.
//!
//! The same independence makes per-frame results memoizable: the
//! parallel passes consult the content-addressed [`crate::frame_cache`]
//! so a frame that reappears — across random-sampling trials, repeated
//! sweeps, or representative re-simulation — is simulated once.
//! `simulate_sequence_warm` never uses the cache (its results depend on
//! simulation order, not just frame content).

use megsim_funcsim::{RenderConfig, Renderer};
use megsim_gfx::draw::Frame;
use megsim_gfx::shader::ShaderTable;
use megsim_timing::{FrameStats, Gpu, GpuConfig, MultiGpu, MultiGpuConfig, MultiGpuReport};

use megsim_cluster::StreamClusterer;

use crate::estimate::{estimate_totals, metric_errors, sequence_totals, MetricErrors};
use crate::features::{characterize_frame_into, feature_matrix, FeatureMatrix};
use crate::frame_cache;
use crate::normalize::RunningGroupMass;
use crate::pipeline::{
    finish_stream, select_representatives, MegsimConfig, Selection, StreamClusterConfig,
    StreamSelection,
};

/// How many frames the streaming passes let the source (e.g. a trace
/// decoder) run ahead of the slowest stage. Frames are the large
/// buffered intermediate, so the window stays modest while still
/// keeping every worker fed.
const STREAM_PIPELINE_DEPTH: usize = 16;

/// Fast functional characterization pass (paper §III-B): renders every
/// frame functionally (in parallel across frames) and returns the
/// `N × D` feature matrix.
///
/// Frames are pulled off the iterator incrementally and never
/// materialized as a whole sequence: a streaming source (a trace
/// decoder) is characterized in O(window) frame memory via
/// [`megsim_exec::iter_pipeline`].
pub fn characterize_sequence(
    frames: impl Iterator<Item = Frame> + Send,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
    config: &MegsimConfig,
) -> FeatureMatrix {
    let render_config = RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    };
    let renderer = Renderer::new(render_config);
    let config_fp = frame_cache::activity_config_fingerprint(&render_config, shaders);
    let mut activities = Vec::new();
    megsim_exec::iter_pipeline(
        frames,
        STREAM_PIPELINE_DEPTH,
        |_, f: Frame| {
            frame_cache::activity_or_else(config_fp, &f, || renderer.frame_activity(&f, shaders))
        },
        |_, activity| activities.push(activity),
    );
    feature_matrix(activities.iter(), shaders, &config.characterization)
}

/// True single-pass MEGsim selection: frames flow decoder → functional
/// characterization → online clusterer in one bounded pipeline, and the
/// whole-sequence barrier of the two-pass flow (materialize the feature
/// matrix, then cluster it) disappears.
///
/// Characterization fans out on the worker pool
/// ([`megsim_exec::iter_fold`]); the caller thread folds each frame's
/// feature row — in strict arrival order — into the running §III-C
/// group masses and the [`StreamClusterer`]. Peak feature memory is the
/// clusterer's reservoir plus one mini-batch plus the pipeline window,
/// independent of sequence length.
///
/// With `stream.reservoir_capacity == 0` the returned selection is
/// **bitwise** what [`characterize_sequence`] +
/// [`crate::pipeline::select_representatives`] produce, at any thread
/// count — the oracle the proptest suite and the CI determinism matrix
/// pin.
///
/// # Panics
///
/// Panics if the sequence is empty.
pub fn characterize_stream(
    frames: impl Iterator<Item = Frame> + Send,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
    config: &MegsimConfig,
    stream: &StreamClusterConfig,
) -> StreamSelection {
    let render_config = RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    };
    let renderer = Renderer::new(render_config);
    let config_fp = frame_cache::activity_config_fingerprint(&render_config, shaders);
    let dim = shaders.vertex_count() + shaders.fragment_count() + 1;
    let clusterer = StreamClusterer::new(dim, stream.to_stream_config(&config.search));
    let characterization = config.characterization;
    struct Fold {
        clusterer: StreamClusterer,
        mass: RunningGroupMass,
        scales: Vec<f64>,
    }
    let fold = megsim_exec::iter_fold(
        frames,
        STREAM_PIPELINE_DEPTH,
        // Map stage: render + characterize, pure per frame (cache hits
        // are content-addressed, so results are order-independent).
        |_, f: Frame| {
            let activity = frame_cache::activity_or_else(config_fp, &f, || {
                renderer.frame_activity(&f, shaders)
            });
            let mut row = Vec::with_capacity(dim);
            characterize_frame_into(&activity, shaders, &characterization, &mut row);
            row
        },
        Fold {
            clusterer,
            mass: RunningGroupMass::new(shaders.vertex_count(), shaders.fragment_count()),
            scales: Vec::new(),
        },
        // Fold stage: strict arrival order on the caller thread — the
        // exact FP fold of the batch normalization pass.
        |state, _, row| {
            state.mass.add_row(&row);
            state
                .mass
                .column_scales_into(&config.weights, &mut state.scales);
            state.clusterer.set_scales(&state.scales);
            state.clusterer.push(&row);
        },
    );
    finish_stream(fold.clusterer)
}

/// Full cycle-level simulation of a sequence (the paper's ground truth),
/// returning per-frame statistics.
///
/// Every frame is simulated on its own freshly reset GPU (cold caches),
/// which makes frames independent and lets them fan out across the
/// worker pool — and makes a frame's statistics identical whether it is
/// simulated here or standalone via [`simulate_representatives`]. For
/// the old warm-cache sequential semantics use
/// [`simulate_sequence_warm`].
pub fn simulate_sequence(
    frames: impl Iterator<Item = Frame> + Send,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
) -> Vec<FrameStats> {
    let renderer = Renderer::new(RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    });
    let config_fp = frame_cache::stats_config_fingerprint(gpu_config, shaders);
    let mut stats = Vec::new();
    megsim_exec::iter_pipeline(
        frames,
        STREAM_PIPELINE_DEPTH,
        |_, f: Frame| {
            frame_cache::stats_or_else(config_fp, &f, || {
                let trace = renderer.render_frame(&f, shaders);
                let mut gpu = Gpu::new(gpu_config.clone());
                gpu.simulate_frame(&trace, shaders)
            })
        },
        |_, s| stats.push(s),
    );
    stats
}

/// How many rendered traces the warm pipeline buffers ahead of the
/// timing model. Traces are the large intermediate here, so the window
/// is kept smaller than [`STREAM_PIPELINE_DEPTH`]; it only needs to
/// cover render-time jitter.
const WARM_PIPELINE_DEPTH: usize = 4;

/// Cycle-level simulation with memory-hierarchy state warmed across
/// frames — the ground-truth semantics for cache-warm-up studies.
///
/// Timing is inherently order-dependent (one GPU state threads through
/// every frame), but functional rendering is not: the source stage
/// pulls (e.g. decodes) frame `N + 2` while frame `N + 1` renders on
/// the worker pool and frame `N` runs through the timing model, via
/// [`megsim_exec::iter_pipeline`]. The timing model consumes traces
/// strictly in frame order on the caller thread, so the results are
/// bit-identical to [`simulate_sequence_warm_sequential`] at every
/// thread count — and the frame sequence is never materialized, so a
/// streaming trace decoder replays in O(window) frame memory.
///
/// At the end of the sequence the device goes idle and the L2 drains:
/// its remaining dirty lines are written back and counted on the last
/// frame's L2 counters (idle-time writebacks).
pub fn simulate_sequence_warm(
    frames: impl Iterator<Item = Frame> + Send,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
) -> Vec<FrameStats> {
    let renderer = Renderer::new(RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    });
    let mut gpu = Gpu::new(gpu_config.clone());
    let mut stats = Vec::new();
    megsim_exec::iter_pipeline(
        frames,
        WARM_PIPELINE_DEPTH,
        |_, f: Frame| renderer.render_frame(&f, shaders),
        |_, trace| stats.push(gpu.simulate_frame(&trace, shaders)),
    );
    drain_idle_l2(&mut gpu, &mut stats);
    stats
}

/// The plain single-threaded warm loop — the pipelined
/// [`simulate_sequence_warm`] is asserted bit-identical to this.
pub fn simulate_sequence_warm_sequential(
    frames: impl Iterator<Item = Frame>,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
) -> Vec<FrameStats> {
    let renderer = Renderer::new(RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    });
    let mut gpu = Gpu::new(gpu_config.clone());
    let mut stats: Vec<FrameStats> = frames
        .map(|f| {
            let trace = renderer.render_frame(&f, shaders);
            gpu.simulate_frame(&trace, shaders)
        })
        .collect();
    drain_idle_l2(&mut gpu, &mut stats);
    stats
}

/// End-of-sequence L2 drain: attributes the writebacks of the lines
/// still dirty when the device goes idle to the last frame.
fn drain_idle_l2(gpu: &mut Gpu, stats: &mut [FrameStats]) {
    let writebacks = gpu.drain_l2();
    if let Some(last) = stats.last_mut() {
        last.memory.l2.writebacks += writebacks;
    }
}

/// Warm-state cycle-level simulation of a sequence on an N-GPU rig
/// ([`MultiGpu`]): frames are dispatched whole (alternate-frame) or as
/// tile bands (split-frame) across `multi.gpus` instances over a shared
/// or private memory topology, with interconnect transfers to the
/// display GPU modeled per link.
///
/// Rendering overlaps timing through the same bounded ordered pipeline
/// as [`simulate_sequence_warm`]; the rig consumes traces strictly in
/// frame order on the caller thread, so results are bit-identical at
/// every thread count — and a single-GPU rig is bit-identical to
/// [`simulate_sequence_warm`] itself. At the end of the sequence every
/// back end's L2 drains onto the last frame's counters, and the rig's
/// cumulative [`MultiGpuReport`] (frames per GPU, link traffic) is
/// returned alongside the per-frame statistics.
pub fn simulate_sequence_multi(
    frames: impl Iterator<Item = Frame> + Send,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
    multi: MultiGpuConfig,
) -> (Vec<FrameStats>, MultiGpuReport) {
    let renderer = Renderer::new(RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    });
    let mut rig = MultiGpu::new(gpu_config.clone(), multi);
    let mut stats = Vec::new();
    megsim_exec::iter_pipeline(
        frames,
        WARM_PIPELINE_DEPTH,
        |_, f: Frame| renderer.render_frame(&f, shaders),
        |_, trace| stats.push(rig.simulate_frame(&trace, shaders)),
    );
    let writebacks = rig.drain_l2();
    if let Some(last) = stats.last_mut() {
        last.memory.l2.writebacks += writebacks;
    }
    (stats, rig.report())
}

/// Simulates only the selected representative frames on *fresh* N-GPU
/// rigs — the MEGsim deployment story on a multi-GPU scenario: each
/// representative frame is dispatched through the rig exactly as frame
/// 0 of a sequence would be, and its statistics are scaled by cluster
/// size to estimate the full-sequence totals.
///
/// Unlike [`simulate_representatives`], results are **not** routed
/// through the content-addressed frame cache: the cache key fingerprints
/// only the GPU configuration, not the rig shape, and a cached
/// single-GPU result must never be returned for a split-frame rig (or
/// vice versa).
pub fn simulate_representatives_multi(
    frame_of: impl Fn(usize) -> Frame + Sync,
    selection: &Selection,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
    multi: MultiGpuConfig,
) -> Vec<FrameStats> {
    let renderer = Renderer::new(RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    });
    megsim_exec::par_map_indexed(&selection.representatives, |_, rep| {
        let trace = renderer.render_frame(&frame_of(rep.frame_index), shaders);
        let mut rig = MultiGpu::new(gpu_config.clone(), multi);
        rig.simulate_frame(&trace, shaders)
    })
}

/// Simulates only the selected representative frames, each on a *fresh*
/// GPU — what a real MEGsim deployment runs instead of the full
/// sequence. Representatives are independent, so they fan out on the
/// worker pool. Returns each representative's statistics, in selection
/// order.
pub fn simulate_representatives(
    frame_of: impl Fn(usize) -> Frame + Sync,
    selection: &Selection,
    shaders: &ShaderTable,
    gpu_config: &GpuConfig,
) -> Vec<FrameStats> {
    let renderer = Renderer::new(RenderConfig {
        viewport: gpu_config.viewport,
        mode: gpu_config.render_mode,
    });
    let config_fp = frame_cache::stats_config_fingerprint(gpu_config, shaders);
    megsim_exec::par_map_indexed(&selection.representatives, |_, rep| {
        let frame = frame_of(rep.frame_index);
        frame_cache::stats_or_else(config_fp, &frame, || {
            let trace = renderer.render_frame(&frame, shaders);
            let mut gpu = Gpu::new(gpu_config.clone());
            gpu.simulate_frame(&trace, shaders)
        })
    })
}

/// Result of one full MEGsim accuracy experiment on one workload.
#[derive(Debug, Clone)]
pub struct MegsimRun {
    /// The clustering outcome.
    pub selection: Selection,
    /// MEGsim's estimated sequence totals.
    pub estimated: FrameStats,
    /// Ground-truth sequence totals.
    pub actual: FrameStats,
    /// Relative errors of the four Fig. 7 metrics.
    pub errors: MetricErrors,
}

impl MegsimRun {
    /// Frames MEGsim simulates.
    pub fn frames_simulated(&self) -> usize {
        self.selection.k()
    }

    /// Table III reduction factor.
    pub fn reduction_factor(&self) -> f64 {
        self.selection.reduction_factor()
    }
}

/// Evaluates MEGsim against an already-simulated ground truth: selects
/// representatives from `matrix`, estimates totals from the per-frame
/// statistics and computes the Fig. 7 errors.
///
/// # Panics
///
/// Panics if `matrix` and `per_frame` disagree in length.
pub fn evaluate_megsim(
    matrix: &FeatureMatrix,
    per_frame: &[FrameStats],
    config: &MegsimConfig,
) -> MegsimRun {
    assert_eq!(
        matrix.frames(),
        per_frame.len(),
        "feature matrix and statistics disagree in frame count"
    );
    let selection = select_representatives(matrix, config);
    let estimated = estimate_totals(&selection.representatives, |i| &per_frame[i]);
    let actual = sequence_totals(per_frame);
    let errors = metric_errors(&estimated, &actual);
    MegsimRun {
        selection,
        estimated,
        actual,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_workloads::{build, BENCHMARKS};

    /// End-to-end smoke test on a miniature benchmark.
    #[test]
    fn megsim_beats_one_percent_error_on_a_small_sequence() {
        let info = &BENCHMARKS[5]; // jjo (cheap 2-D game)
        let workload = build(info, 0.04, 11); // 200 frames
        let gpu_config = GpuConfig::small(256, 256);
        let megsim = MegsimConfig::default().with_seed(3);
        let matrix = characterize_sequence(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            &megsim,
        );
        let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu_config);
        let run = evaluate_megsim(&matrix, &per_frame, &megsim);
        assert!(run.frames_simulated() < workload.frames() / 2);
        assert!(run.reduction_factor() > 2.0);
        assert!(
            run.errors.cycles < 0.05,
            "cycles error = {}",
            run.errors.cycles
        );
        // At this miniature scale (200 frames, 256x256 target) the DRAM
        // counts are small and cache-state dependent, so the memory
        // metrics carry more noise than the full-scale Fig. 7 runs.
        assert!(run.errors.max() < 0.30, "max error = {:?}", run.errors);
    }

    #[test]
    fn single_gpu_rig_sequence_is_the_warm_ground_truth() {
        use megsim_timing::{DispatchMode, MultiGpuConfig, Topology};
        let info = &BENCHMARKS[5]; // jjo
        let workload = build(info, 0.01, 4); // 50 frames
        let gpu_config = GpuConfig::small(192, 192);
        let warm = simulate_sequence_warm(workload.iter_frames(), workload.shaders(), &gpu_config);
        for dispatch in [DispatchMode::AlternateFrame, DispatchMode::SplitFrame] {
            for topology in [Topology::Shared, Topology::Private] {
                let (stats, report) = simulate_sequence_multi(
                    workload.iter_frames(),
                    workload.shaders(),
                    &gpu_config,
                    MultiGpuConfig::new(1, dispatch, topology),
                );
                assert_eq!(stats, warm, "{dispatch:?} {topology:?} N=1");
                assert_eq!(report.transfers(), 0);
            }
        }
    }

    #[test]
    fn multi_gpu_representative_estimate_tracks_the_rig_ground_truth() {
        use megsim_timing::{DispatchMode, MultiGpuConfig, Topology};
        let info = &BENCHMARKS[5]; // jjo
        let workload = build(info, 0.02, 8); // 100 frames
        let gpu_config = GpuConfig::small(192, 192);
        let megsim = MegsimConfig::default().with_seed(3);
        let matrix = characterize_sequence(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            &megsim,
        );
        let selection = select_representatives(&matrix, &megsim);
        let multi = MultiGpuConfig::new(2, DispatchMode::SplitFrame, Topology::Shared);
        let (per_frame, report) = simulate_sequence_multi(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            multi,
        );
        assert!(report.transfers() > 0, "worker band pixels must cross");
        let rep_stats = simulate_representatives_multi(
            |i| workload.frame(i),
            &selection,
            workload.shaders(),
            &gpu_config,
            multi,
        );
        let estimated = {
            let mut est = FrameStats::default();
            for (stats, rep) in rep_stats.iter().zip(&selection.representatives) {
                est.merge(&stats.scaled(rep.cluster_size as u64));
            }
            est
        };
        let actual = sequence_totals(&per_frame);
        let errors = metric_errors(&estimated, &actual);
        // Cold representative rigs vs a warm, shared-topology striped
        // sequence: the reps miss both cache warm-up and cross-GPU
        // contention, so the error is far looser than the single-GPU
        // bound — the PR 10 accuracy table quantifies this gap per
        // topology. The assertion only fences the regime.
        assert!(errors.cycles < 0.6, "cycles error = {}", errors.cycles);
        assert!(estimated.cycles > 0 && actual.cycles > 0);
    }

    #[test]
    fn single_pass_exact_stream_matches_the_two_pass_pipeline() {
        let info = &BENCHMARKS[5]; // jjo
        let workload = build(info, 0.02, 8); // 100 frames
        let gpu_config = GpuConfig::small(192, 192);
        let megsim = MegsimConfig::default().with_seed(13);
        let matrix = characterize_sequence(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            &megsim,
        );
        let batch = select_representatives(&matrix, &megsim);
        let streamed = characterize_stream(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            &megsim,
            &StreamClusterConfig::exact(),
        );
        assert_eq!(streamed.selection, batch);
    }

    #[test]
    fn single_pass_bounded_stream_is_fenced_and_sane() {
        let info = &BENCHMARKS[5]; // jjo
        let workload = build(info, 0.02, 8); // 100 frames
        let gpu_config = GpuConfig::small(192, 192);
        let megsim = MegsimConfig::default().with_seed(13);
        let streamed = characterize_stream(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            &megsim,
            &StreamClusterConfig::default()
                .with_reservoir_capacity(40)
                .with_batch_size(20),
        );
        assert!(
            streamed.peak_rows_retained <= 40 + 20,
            "peak = {}",
            streamed.peak_rows_retained
        );
        assert_eq!(streamed.selection.labels.len(), workload.frames());
        let total: usize = streamed
            .selection
            .representatives
            .iter()
            .map(|r| r.cluster_size)
            .sum();
        assert_eq!(total, workload.frames());
    }

    #[test]
    fn representative_resimulation_is_close_to_full_run_values() {
        let info = &BENCHMARKS[6]; // pvz
        let workload = build(info, 0.01, 4); // 50 frames
        let gpu_config = GpuConfig::small(192, 192);
        let megsim = MegsimConfig::default();
        let matrix = characterize_sequence(
            workload.iter_frames(),
            workload.shaders(),
            &gpu_config,
            &megsim,
        );
        let per_frame = simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu_config);
        let run = evaluate_megsim(&matrix, &per_frame, &megsim);
        let rep_stats = simulate_representatives(
            |i| workload.frame(i),
            &run.selection,
            workload.shaders(),
            &gpu_config,
        );
        // Each frame now gets a fresh GPU in both the full run and the
        // standalone representative run, so the two estimates agree
        // exactly, not just approximately.
        let mut est = FrameStats::default();
        for (stats, rep) in rep_stats.iter().zip(&run.selection.representatives) {
            est.merge(&stats.scaled(rep.cluster_size as u64));
        }
        assert_eq!(est, run.estimated);
        let errors = metric_errors(&est, &run.actual);
        assert!(errors.cycles < 0.10, "cycles error = {}", errors.cycles);
    }
}
