//! Draw calls and frames — the simulator's equivalent of the OpenGL
//! command trace that TEAPOT captures from the Android emulator.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::geometry::Mesh;
use crate::math::Mat4;
use crate::shader::ShaderId;
use crate::texture::TextureDesc;

/// How fragment output combines with the tile's color buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BlendMode {
    /// Overwrite the destination (opaque geometry).
    #[default]
    Opaque,
    /// Read-modify-write alpha blending (transparent geometry).
    AlphaBlend,
    /// Additive blending (particles, glows).
    Additive,
}

impl BlendMode {
    /// True when the blend reads the destination color (extra tile-buffer
    /// traffic in the Blending Unit).
    pub const fn reads_destination(self) -> bool {
        !matches!(self, BlendMode::Opaque)
    }
}

/// One draw call: a mesh drawn with a transform and a shader pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DrawCall {
    /// Geometry to draw. `Arc` so the thousands of frames of a workload
    /// can share the mesh library without cloning vertex data.
    pub mesh: Arc<Mesh>,
    /// Model-view-projection transform applied by the vertex shader.
    pub transform: Mat4,
    /// Vertex shader executed per vertex.
    pub vertex_shader: ShaderId,
    /// Fragment shader executed per visible fragment.
    pub fragment_shader: ShaderId,
    /// Texture bound to the fragment shader's samplers, if any.
    pub texture: Option<TextureDesc>,
    /// Blending mode of the output.
    pub blend: BlendMode,
    /// Whether fragments are depth-tested/depth-written.
    pub depth_test: bool,
}

impl DrawCall {
    /// Number of vertices the Vertex Fetcher loads for this call.
    pub fn vertex_count(&self) -> usize {
        self.mesh.indices.len()
    }

    /// Number of triangles sent to Primitive Assembly.
    pub fn triangle_count(&self) -> usize {
        self.mesh.triangle_count()
    }
}

/// One frame of the workload: an ordered list of draw calls.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Frame {
    /// Draw calls in submission order.
    pub draws: Vec<DrawCall>,
}

impl Frame {
    /// Creates an empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total triangles submitted this frame (pre-culling).
    pub fn submitted_triangles(&self) -> usize {
        self.draws.iter().map(DrawCall::triangle_count).sum()
    }

    /// Total vertices fetched this frame.
    pub fn submitted_vertices(&self) -> usize {
        self.draws.iter().map(DrawCall::vertex_count).sum()
    }
}

/// Render-target description shared by the functional and timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Viewport {
    /// Render-target width in pixels.
    pub width: u32,
    /// Render-target height in pixels.
    pub height: u32,
    /// Tile edge length in pixels (square tiles).
    pub tile_size: u32,
}

impl Viewport {
    /// The paper's baseline target: 1440×720 with 32×32 tiles (Table I).
    pub const MALI450_BASELINE: Self = Self {
        width: 1440,
        height: 720,
        tile_size: 32,
    };

    /// Creates a viewport.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(width: u32, height: u32, tile_size: u32) -> Self {
        assert!(
            width > 0 && height > 0 && tile_size > 0,
            "viewport dimensions must be non-zero"
        );
        Self {
            width,
            height,
            tile_size,
        }
    }

    /// Number of tile columns.
    pub fn tiles_x(&self) -> u32 {
        self.width.div_ceil(self.tile_size)
    }

    /// Number of tile rows.
    pub fn tiles_y(&self) -> u32 {
        self.height.div_ceil(self.tile_size)
    }

    /// Total number of tiles on screen.
    pub fn tile_count(&self) -> u32 {
        self.tiles_x() * self.tiles_y()
    }

    /// Flattened tile index for a tile coordinate.
    pub fn tile_index(&self, tx: u32, ty: u32) -> u32 {
        ty * self.tiles_x() + tx
    }

    /// Pixel rectangle `(x0, y0, x1, y1)` of a tile (exclusive max),
    /// clamped to the render target.
    pub fn tile_rect(&self, tx: u32, ty: u32) -> (u32, u32, u32, u32) {
        let x0 = tx * self.tile_size;
        let y0 = ty * self.tile_size;
        (
            x0,
            y0,
            (x0 + self.tile_size).min(self.width),
            (y0 + self.tile_size).min(self.height),
        )
    }

    /// Tile range `(tx0, ty0, tx1, ty1)` (inclusive) overlapped by a
    /// screen-space bounding box, or `None` if fully off-screen.
    pub fn tiles_overlapping(
        &self,
        min_x: f32,
        min_y: f32,
        max_x: f32,
        max_y: f32,
    ) -> Option<(u32, u32, u32, u32)> {
        if max_x < 0.0 || max_y < 0.0 || min_x >= self.width as f32 || min_y >= self.height as f32 {
            return None;
        }
        let clamp = |v: f32, hi: u32| (v.max(0.0) as u32).min(hi - 1);
        let ts = self.tile_size;
        Some((
            clamp(min_x, self.width) / ts,
            clamp(min_y, self.height) / ts,
            clamp(max_x, self.width) / ts,
            clamp(max_y, self.height) / ts,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vertex;
    use crate::math::Vec3;

    fn mesh() -> Arc<Mesh> {
        Arc::new(Mesh::new(
            vec![Vertex::at(Vec3::ZERO); 4],
            vec![0, 1, 2, 0, 2, 3],
            0,
        ))
    }

    #[test]
    fn draw_call_counts() {
        let d = DrawCall {
            mesh: mesh(),
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: None,
            blend: BlendMode::Opaque,
            depth_test: true,
        };
        assert_eq!(d.vertex_count(), 6);
        assert_eq!(d.triangle_count(), 2);
        let mut f = Frame::new();
        f.draws.push(d.clone());
        f.draws.push(d);
        assert_eq!(f.submitted_triangles(), 4);
        assert_eq!(f.submitted_vertices(), 12);
    }

    #[test]
    fn blend_destination_reads() {
        assert!(!BlendMode::Opaque.reads_destination());
        assert!(BlendMode::AlphaBlend.reads_destination());
        assert!(BlendMode::Additive.reads_destination());
    }

    #[test]
    fn baseline_viewport_matches_table1() {
        let v = Viewport::MALI450_BASELINE;
        assert_eq!((v.width, v.height, v.tile_size), (1440, 720, 32));
        assert_eq!(v.tiles_x(), 45);
        assert_eq!(v.tiles_y(), 23);
        assert_eq!(v.tile_count(), 45 * 23);
    }

    #[test]
    fn tile_rect_clamps_to_target() {
        let v = Viewport::new(100, 50, 32);
        assert_eq!(v.tile_rect(3, 1), (96, 32, 100, 50));
    }

    #[test]
    fn tiles_overlapping_offscreen_is_none() {
        let v = Viewport::new(100, 100, 32);
        assert!(v.tiles_overlapping(-50.0, 0.0, -1.0, 10.0).is_none());
        assert!(v.tiles_overlapping(100.0, 0.0, 120.0, 10.0).is_none());
    }

    #[test]
    fn tiles_overlapping_clamps_partially_visible() {
        let v = Viewport::new(100, 100, 32);
        let r = v.tiles_overlapping(-10.0, -10.0, 200.0, 5.0).unwrap();
        assert_eq!(r, (0, 0, 3, 0));
    }

    #[test]
    fn tile_index_is_row_major() {
        let v = Viewport::new(128, 128, 32);
        assert_eq!(v.tile_index(1, 2), 2 * 4 + 1);
    }
}
