//! Prints Fig. 4 (power fraction per pipeline phase).
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    print!("{}", megsim_bench::experiments::fig4(&data));
}
