//! Offline vendored stub of the `parking_lot` locking API.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s nicer surface:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, recovering from poisoning the way `parking_lot` never
//! poisons in the first place. Performance is std's — fine for the
//! coarse, low-contention locking `megsim-exec` does (one lock per
//! worker at batch merge time).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
