//! Rank statistics: Spearman's rank correlation, a robustness companion
//! to the Pearson coefficient of the Fig. 3 study (monotone-but-
//! nonlinear relationships between activity counts and cycles show up
//! here even when Pearson understates them).

use crate::correlation::pearson;

/// Fractional ranks of a series (ties get the average rank).
///
/// # Panics
///
/// Panics if any value is NaN.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the tie group [i, j).
        let mut j = i + 1;
        while j < n && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        // Average rank of the group (1-based ranks).
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            out[idx] = avg;
        }
        i = j;
    }
    out
}

/// Spearman's rank correlation coefficient ρₛ in `[-1, 1]`.
///
/// Returns `0.0` when either series is constant.
///
/// # Panics
///
/// Panics if the series differ in length.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman requires equal lengths");
    if xs.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(xs), &ranks(ys))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_of_distinct_values() {
        assert_eq!(ranks(&[30.0, 10.0, 20.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_average_ties() {
        // 10 and 10 occupy ranks 1 and 2 -> each gets 1.5.
        assert_eq!(ranks(&[10.0, 10.0, 20.0]), vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn spearman_detects_monotone_nonlinear_relation() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(5)).collect();
        let rho_s = spearman(&xs, &ys);
        assert!((rho_s - 1.0).abs() < 1e-12);
        // Pearson understates the same relationship.
        assert!(pearson(&xs, &ys) < rho_s);
    }

    #[test]
    fn spearman_perfect_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [8.0, 6.0, 4.0, 2.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_constant_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(spearman(&[], &[]), 0.0);
    }
}
