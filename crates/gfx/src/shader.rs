//! Shader program descriptions.
//!
//! MEGsim characterizes frames by the number of times each *program
//! shader* executes, weighted by its instruction count (paper §III-B).
//! The simulator therefore models shaders as cost descriptors — an ALU
//! instruction count plus a list of texture sampling operations — rather
//! than as executable ISA programs. This is exactly the information the
//! paper extracts from its instrumented Softpipe functional renderer.

use serde::{Deserialize, Serialize};

/// Identifies a shader program within one workload.
///
/// Vertex and fragment shaders live in separate ID spaces, mirroring the
/// paper's separate VSCV/FSCV vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShaderId(pub u32);

impl std::fmt::Display for ShaderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The pipeline stage a shader runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShaderKind {
    /// Runs in the Vertex Processors of the Geometry Pipeline.
    Vertex,
    /// Runs in the Fragment Processors of the Raster Pipeline.
    Fragment,
}

/// Texture filtering mode of a sampling instruction.
///
/// The paper weights texture accesses by the number of memory accesses
/// each filter performs: linear = 2, bilinear = 4, trilinear = 8
/// (§III-B). `Nearest` (a single texel fetch) completes the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TextureFilter {
    /// Single texel fetch.
    Nearest,
    /// Two texel fetches.
    Linear,
    /// Four texel fetches (2×2 footprint).
    Bilinear,
    /// Eight texel fetches (2×2 footprint on two mip levels).
    Trilinear,
}

impl TextureFilter {
    /// All filter modes, in increasing cost order.
    pub const ALL: [TextureFilter; 4] = [
        TextureFilter::Nearest,
        TextureFilter::Linear,
        TextureFilter::Bilinear,
        TextureFilter::Trilinear,
    ];

    /// Number of texture-memory accesses one sample performs.
    ///
    /// These are the weights of paper §III-B.
    pub const fn memory_accesses(self) -> u32 {
        match self {
            TextureFilter::Nearest => 1,
            TextureFilter::Linear => 2,
            TextureFilter::Bilinear => 4,
            TextureFilter::Trilinear => 8,
        }
    }
}

/// A cost-model description of one shader program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaderProgram {
    /// Program identifier (unique per kind within a workload).
    pub id: ShaderId,
    /// Stage this program runs on.
    pub kind: ShaderKind,
    /// Human-readable name (e.g. `"skinned_car_vs"`).
    pub name: String,
    /// Number of non-texture ALU/control instructions per invocation.
    pub alu_instructions: u32,
    /// Texture sampling instructions, one entry per sample operation.
    pub texture_samples: Vec<TextureFilter>,
}

impl ShaderProgram {
    /// Creates a vertex shader with no texture samples.
    pub fn vertex(id: u32, name: impl Into<String>, alu_instructions: u32) -> Self {
        Self {
            id: ShaderId(id),
            kind: ShaderKind::Vertex,
            name: name.into(),
            alu_instructions,
            texture_samples: Vec::new(),
        }
    }

    /// Creates a fragment shader.
    pub fn fragment(
        id: u32,
        name: impl Into<String>,
        alu_instructions: u32,
        texture_samples: Vec<TextureFilter>,
    ) -> Self {
        Self {
            id: ShaderId(id),
            kind: ShaderKind::Fragment,
            name: name.into(),
            alu_instructions,
            texture_samples,
        }
    }

    /// Total dynamic instructions per invocation, with texture
    /// instructions counted once each (the raw instruction count).
    pub fn instruction_count(&self) -> u32 {
        self.alu_instructions + self.texture_samples.len() as u32
    }

    /// Instruction count with texture samples weighted by the number of
    /// memory accesses they generate, per paper §III-B.
    ///
    /// This is the per-invocation weight used when building the vector of
    /// characteristics.
    pub fn weighted_instruction_count(&self) -> u64 {
        let tex: u64 = self
            .texture_samples
            .iter()
            .map(|f| u64::from(f.memory_accesses()))
            .sum();
        u64::from(self.alu_instructions) + tex
    }

    /// Number of texture-memory accesses one invocation performs.
    pub fn texture_memory_accesses(&self) -> u32 {
        self.texture_samples
            .iter()
            .map(|f| f.memory_accesses())
            .sum()
    }
}

/// The shader library of one workload: `p` vertex + `q` fragment shaders.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShaderTable {
    vertex: Vec<ShaderProgram>,
    fragment: Vec<ShaderProgram>,
}

impl ShaderTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shader program to the table.
    ///
    /// # Panics
    ///
    /// Panics if the program's ID does not equal its insertion index
    /// within its kind — the contiguous-ID invariant keeps the
    /// characteristic-vector layout of Fig. 2 trivially indexable.
    pub fn add(&mut self, program: ShaderProgram) -> ShaderId {
        let list = match program.kind {
            ShaderKind::Vertex => &mut self.vertex,
            ShaderKind::Fragment => &mut self.fragment,
        };
        assert_eq!(
            program.id.0 as usize,
            list.len(),
            "shader ids must be contiguous per kind"
        );
        let id = program.id;
        list.push(program);
        id
    }

    /// Number of vertex shaders (`p` in Fig. 2).
    pub fn vertex_count(&self) -> usize {
        self.vertex.len()
    }

    /// Number of fragment shaders (`q` in Fig. 2).
    pub fn fragment_count(&self) -> usize {
        self.fragment.len()
    }

    /// Looks up a vertex shader.
    ///
    /// # Panics
    ///
    /// Panics if the ID is unknown.
    pub fn vertex_shader(&self, id: ShaderId) -> &ShaderProgram {
        &self.vertex[id.0 as usize]
    }

    /// Looks up a fragment shader.
    ///
    /// # Panics
    ///
    /// Panics if the ID is unknown.
    pub fn fragment_shader(&self, id: ShaderId) -> &ShaderProgram {
        &self.fragment[id.0 as usize]
    }

    /// Iterates over the vertex shaders in ID order.
    pub fn vertex_shaders(&self) -> impl Iterator<Item = &ShaderProgram> {
        self.vertex.iter()
    }

    /// Iterates over the fragment shaders in ID order.
    pub fn fragment_shaders(&self) -> impl Iterator<Item = &ShaderProgram> {
        self.fragment.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_weights_match_paper() {
        assert_eq!(TextureFilter::Nearest.memory_accesses(), 1);
        assert_eq!(TextureFilter::Linear.memory_accesses(), 2);
        assert_eq!(TextureFilter::Bilinear.memory_accesses(), 4);
        assert_eq!(TextureFilter::Trilinear.memory_accesses(), 8);
    }

    #[test]
    fn weighted_instruction_count_includes_texture_weights() {
        let fs = ShaderProgram::fragment(
            0,
            "lit",
            10,
            vec![TextureFilter::Bilinear, TextureFilter::Trilinear],
        );
        assert_eq!(fs.instruction_count(), 12);
        assert_eq!(fs.weighted_instruction_count(), 10 + 4 + 8);
        assert_eq!(fs.texture_memory_accesses(), 12);
    }

    #[test]
    fn vertex_shader_weight_equals_alu_count() {
        let vs = ShaderProgram::vertex(0, "xform", 25);
        assert_eq!(vs.weighted_instruction_count(), 25);
    }

    #[test]
    fn table_tracks_kinds_separately() {
        let mut table = ShaderTable::new();
        table.add(ShaderProgram::vertex(0, "v0", 10));
        table.add(ShaderProgram::vertex(1, "v1", 20));
        table.add(ShaderProgram::fragment(0, "f0", 5, vec![]));
        assert_eq!(table.vertex_count(), 2);
        assert_eq!(table.fragment_count(), 1);
        assert_eq!(table.vertex_shader(ShaderId(1)).alu_instructions, 20);
        assert_eq!(table.fragment_shader(ShaderId(0)).name, "f0");
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn table_rejects_non_contiguous_ids() {
        let mut table = ShaderTable::new();
        table.add(ShaderProgram::vertex(3, "bad", 1));
    }
}
