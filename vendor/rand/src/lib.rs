//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors the exact slice of `rand` it uses as a path
//! dependency. The algorithms are faithful reimplementations of the
//! upstream ones so that seeded streams are stable and of the same
//! statistical quality:
//!
//! * [`rngs::SmallRng`] — Xoshiro256++ (the 64-bit `SmallRng` of
//!   rand 0.8), seeded via SplitMix64 in
//!   [`SeedableRng::seed_from_u64`].
//! * [`Rng::gen_range`] — Lemire widening-multiply rejection sampling
//!   for integers, the `[1, 2)` mantissa trick for floats.
//! * [`Rng::gen_bool`] — 64-bit fixed-point Bernoulli.
//!
//! Only the surface this workspace calls is provided; it is not a
//! general-purpose replacement.

#![forbid(unsafe_code)]

pub mod rngs;

use core::ops::Range;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanded with SplitMix64
    /// exactly as rand 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: guarantees distinct, well-mixed stream words
            // even for adjacent integer seeds.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // Fixed-point threshold with 64 fractional bits.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a half-open range.
///
/// The single blanket `SampleRange` impl below ties the range's item
/// type to the sampled type the same way upstream rand does, which is
/// what lets integer-literal ranges (`rng.gen_range(0..4)`) infer
/// their type from the surrounding expression.
pub trait SampleUniform: Sized {
    /// Draws a sample from `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

macro_rules! uniform_int_impl {
    ($($ty:ty => $uty:ty, $wide:ty, $method:ident);+ $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let range = high.wrapping_sub(low) as $uty;
                // Lemire's method: multiply a full-width word by the
                // range and keep the high half; reject the low half
                // when it falls in the biased zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$method() as $uty;
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let lo = m as $uty;
                    if lo <= zone {
                        let hi = (m >> <$uty>::BITS) as $uty;
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    )+};
}

uniform_int_impl! {
    u8    => u8,  u16,  next_u32;
    u16   => u16, u32,  next_u32;
    u32   => u32, u64,  next_u32;
    u64   => u64, u128, next_u64;
    usize => u64, u128, next_u64;
    i8    => u8,  u16,  next_u32;
    i16   => u16, u32,  next_u32;
    i32   => u32, u64,  next_u32;
    i64   => u64, u128, next_u64;
    isize => u64, u128, next_u64;
}

macro_rules! uniform_float_impl {
    ($($ty:ty => $bits_to_discard:expr, $exponent_bits:expr, $method:ident);+ $(;)?) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    // Mantissa bits with a fixed exponent give a
                    // uniform value in [1, 2); rescale into the range.
                    let frac = rng.$method() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(frac | $exponent_bits);
                    let res = value1_2 * scale + (low - scale);
                    if res < high {
                        return res;
                    }
                }
            }
        }
    )+};
}

uniform_float_impl! {
    f32 => 9u32, 127u32 << 23, next_u32;
    f64 => 12u64, 1023u64 << 52, next_u64;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 7 values hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let v = rng.gen_range(-0.85f32..0.85);
            assert!((-0.85..0.85).contains(&v));
            let w = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&w));
            sum += w;
        }
        let mean = sum / 4000.0;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean} far from 2.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits} hits for p=0.3");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
