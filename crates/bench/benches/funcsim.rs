//! Functional-simulator benchmarks: per-frame characterization cost
//! across the three rendering architectures, and whole-sequence
//! characterization fanned out on the `megsim-exec` worker pool across
//! a thread sweep (the cost MEGsim pays on *every* frame, so its
//! throughput bounds the end-to-end speedup).

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use megsim_funcsim::raster_reference::render_frame_reference;
use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
use megsim_gfx::draw::Viewport;
use megsim_workloads::by_alias;

fn bench_render_modes(c: &mut Criterion) {
    let workload = by_alias("bbr1", 0.02, 7).expect("known alias");
    let shaders = workload.shaders();
    let frame = workload.frame(workload.frames() / 2);

    let mut group = c.benchmark_group("funcsim_frame_activity_modes");
    for (name, mode) in [
        ("tbr", RenderMode::TileBased),
        ("tbdr", RenderMode::TileBasedDeferred),
        ("imr", RenderMode::Immediate),
    ] {
        let renderer = Renderer::new(RenderConfig {
            viewport: Viewport::MALI450_BASELINE,
            mode,
        });
        group.bench_function(name, |b| {
            b.iter(|| renderer.frame_activity(&frame, shaders));
        });
    }
    group.finish();
}

fn bench_sequence_characterization(c: &mut Criterion) {
    let workload = by_alias("jjo", 0.05, 7).expect("known alias");
    let shaders = workload.shaders();
    let renderer = Renderer::new(RenderConfig::default());
    let frames: Vec<_> = workload.iter_frames().collect();

    let max = std::thread::available_parallelism().map_or(1, usize::from);
    let mut sweep = vec![1];
    if max >= 2 {
        sweep.push(2);
    }
    if max > 2 {
        sweep.push(max);
    }

    let mut group = c.benchmark_group("funcsim_sequence_characterization_jjo");
    group.sample_size(10);
    for threads in sweep {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                megsim_exec::set_threads(threads);
                b.iter(|| {
                    megsim_exec::par_map_indexed(&frames, |_, f| {
                        renderer.frame_activity(f, shaders)
                    })
                });
            },
        );
    }
    group.finish();
    megsim_exec::set_threads(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_render_modes, bench_sequence_characterization
}

/// Best-of-three wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures single-thread frames/sec of the retained scalar reference
/// rasterizer vs the optimized incremental path (activity-only, the
/// characterization hot loop) over a small bundled-workload suite, and
/// merges the numbers into `BENCH_2.json` at the repo root.
fn write_bench_summary() {
    let suite: Vec<_> = ["bbr1", "jjo", "pvz"]
        .iter()
        .map(|alias| by_alias(alias, 0.02, 7).expect("known alias"))
        .collect();
    let frame_count: usize = suite.iter().map(megsim_workloads::Workload::frames).sum();
    let mut entries: Vec<(String, f64)> = Vec::new();
    let mut total_reference = 0.0;
    let mut total_optimized = 0.0;
    for (name, mode) in [
        ("tbr", RenderMode::TileBased),
        ("tbdr", RenderMode::TileBasedDeferred),
        ("imr", RenderMode::Immediate),
    ] {
        let config = RenderConfig {
            viewport: Viewport::MALI450_BASELINE,
            mode,
        };
        let renderer = Renderer::new(config);
        let reference = secs(|| {
            for w in &suite {
                for f in w.iter_frames() {
                    black_box(render_frame_reference(config, &f, w.shaders(), false).activity);
                }
            }
        });
        let optimized = secs(|| {
            for w in &suite {
                for f in w.iter_frames() {
                    black_box(renderer.frame_activity(&f, w.shaders()));
                }
            }
        });
        total_reference += reference;
        total_optimized += optimized;
        let n = frame_count as f64;
        println!(
            "funcsim {name}: reference {:.1} frames/s, optimized {:.1} frames/s ({:.2}x)",
            n / reference,
            n / optimized,
            reference / optimized
        );
        entries.push((
            format!("funcsim_{name}_reference_frames_per_sec"),
            n / reference,
        ));
        entries.push((
            format!("funcsim_{name}_optimized_frames_per_sec"),
            n / optimized,
        ));
        entries.push((format!("funcsim_{name}_speedup"), reference / optimized));
    }
    let overall = total_reference / total_optimized;
    println!("funcsim overall single-thread speedup: {overall:.2}x");
    entries.push(("funcsim_overall_speedup".to_string(), overall));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_2.json");
    if let Err(e) = megsim_bench::report::merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn main() {
    benches();
    write_bench_summary();
}
