//! Cross-process warm start: a second `megsim` process pointed at the
//! same `--cache-dir` must serve its frame results from the disk tier
//! (>=90% disk hits) and produce byte-identical output — and a
//! corrupted store must degrade to recompute, never fail the run or
//! change a byte of it.
//!
//! Runs the real binary via `CARGO_BIN_EXE_megsim`, so each invocation
//! is a genuinely separate process with a cold memory tier.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn megsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_megsim"))
        .args(args)
        .env_remove("MEGSIM_CACHE_DIR")
        .output()
        .expect("megsim binary runs")
}

fn megsim_ok(args: &[&str]) -> Output {
    let out = megsim(args);
    assert!(
        out.status.success(),
        "megsim {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Parses the per-invocation cache summary line
/// `frame cache: activity mem A disk B shared C computed D, stats ...`
/// into (disk_hits, computed) summed over both kinds.
fn parse_cache_line(stderr: &[u8]) -> (u64, u64) {
    let text = String::from_utf8_lossy(stderr);
    let line = text
        .lines()
        .find(|l| l.starts_with("frame cache:"))
        .unwrap_or_else(|| panic!("no cache summary in stderr:\n{text}"));
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let value_after = |key: &str| -> u64 {
        tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == key)
            .map(|(i, _)| {
                tokens[i + 1]
                    .trim_end_matches(',')
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad {key} value in: {line}"))
            })
            .sum()
    };
    (value_after("disk"), value_after("computed"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("megsim_warm_start_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn second_process_starts_warm_from_disk_and_survives_corruption() {
    let dir = temp_dir("main");
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("utf-8");
    let trace = dir.join("trace.mglt");
    let trace = trace.to_str().expect("utf-8");
    megsim_ok(&[
        "record",
        "--benchmark",
        "pvz",
        "--scale",
        "0.01",
        "--seed",
        "42",
        "--out",
        trace,
    ]);

    // Process 1: cold — everything computes, then persists.
    let cold_csv = dir.join("cold.csv");
    let out = megsim_ok(&[
        "characterize",
        trace,
        "--cache-dir",
        cache,
        "--out",
        cold_csv.to_str().unwrap(),
    ]);
    let (disk, computed) = parse_cache_line(&out.stderr);
    assert_eq!(disk, 0, "first process cannot hit disk");
    assert!(computed > 0);

    // Process 2: warm — served from the store the first process sealed.
    let warm_csv = dir.join("warm.csv");
    let out = megsim_ok(&[
        "characterize",
        trace,
        "--cache-dir",
        cache,
        "--out",
        warm_csv.to_str().unwrap(),
    ]);
    let (disk, computed) = parse_cache_line(&out.stderr);
    assert!(
        disk >= 9 * (disk + computed) / 10 && disk > 0,
        "warm process should be >=90% disk hits, got disk {disk} computed {computed}"
    );
    assert_eq!(
        read(&cold_csv),
        read(&warm_csv),
        "disk-tier hits changed the output"
    );

    // Corrupt every segment (bit-flip mid-file) plus one pure-garbage
    // file: process 3 must still succeed with byte-identical output.
    for entry in std::fs::read_dir(cache).expect("list cache") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|x| x == "seg") {
            let mut bytes = read(&path);
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, bytes).expect("rewrite segment");
        }
    }
    std::fs::write(Path::new(cache).join("zz-junk.seg"), b"garbage").expect("junk");
    let corrupt_csv = dir.join("corrupt.csv");
    megsim_ok(&[
        "characterize",
        trace,
        "--cache-dir",
        cache,
        "--out",
        corrupt_csv.to_str().unwrap(),
    ]);
    assert_eq!(
        read(&cold_csv),
        read(&corrupt_csv),
        "corrupt store changed the output"
    );

    // And with the store gone entirely, `--no-persist` + env var is a
    // plain cold run with identical output.
    let nocache_csv = dir.join("nocache.csv");
    let out = Command::new(env!("CARGO_BIN_EXE_megsim"))
        .args([
            "characterize",
            trace,
            "--no-persist",
            "--out",
            nocache_csv.to_str().unwrap(),
        ])
        .env("MEGSIM_CACHE_DIR", cache)
        .output()
        .expect("megsim runs");
    assert!(out.status.success());
    let (disk, _) = parse_cache_line(&out.stderr);
    assert_eq!(disk, 0, "--no-persist must ignore MEGSIM_CACHE_DIR");
    assert_eq!(read(&cold_csv), read(&nocache_csv));

    let _ = std::fs::remove_dir_all(&dir);
}
