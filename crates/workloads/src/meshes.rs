//! Procedural mesh library for the synthetic games.
//!
//! All meshes are unit-sized (fit in `[-0.5, 0.5]³`), wound
//! counter-clockwise when viewed from +Z (sprites) or from outside
//! (solids), and carry UVs derived from their parameterization.

use std::sync::Arc;

use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Vec2, Vec3};

fn v(x: f32, y: f32, z: f32, u: f32, w: f32) -> Vertex {
    Vertex {
        position: Vec3::new(x, y, z),
        normal: Vec3::new(0.0, 0.0, 1.0),
        uv: Vec2::new(u, w),
    }
}

/// A unit quad in the XY plane facing +Z (sprites, UI, billboards).
pub fn unit_quad(base_address: u64) -> Arc<Mesh> {
    Arc::new(Mesh::new(
        vec![
            v(-0.5, -0.5, 0.0, 0.0, 0.0),
            v(0.5, -0.5, 0.0, 1.0, 0.0),
            v(0.5, 0.5, 0.0, 1.0, 1.0),
            v(-0.5, 0.5, 0.0, 0.0, 1.0),
        ],
        vec![0, 1, 2, 0, 2, 3],
        base_address,
    ))
}

/// A unit cube wound CCW from outside (vehicles, crates, buildings).
pub fn unit_cube(base_address: u64) -> Arc<Mesh> {
    let p = [
        (-0.5, -0.5, 0.5),
        (0.5, -0.5, 0.5),
        (0.5, 0.5, 0.5),
        (-0.5, 0.5, 0.5),
        (-0.5, -0.5, -0.5),
        (0.5, -0.5, -0.5),
        (0.5, 0.5, -0.5),
        (-0.5, 0.5, -0.5),
    ];
    let vertices = p
        .iter()
        .map(|&(x, y, z)| v(x, y, z, x + 0.5, y + 0.5))
        .collect();
    // CCW when viewed from outside each face.
    let indices = vec![
        0, 1, 2, 0, 2, 3, // +Z
        5, 4, 7, 5, 7, 6, // -Z
        1, 5, 6, 1, 6, 2, // +X
        4, 0, 3, 4, 3, 7, // -X
        3, 2, 6, 3, 6, 7, // +Y
        4, 5, 1, 4, 1, 0, // -Y
    ];
    Arc::new(Mesh::new(vertices, indices, base_address))
}

/// An `n × m` grid strip in the XZ plane facing +Y tilted toward the
/// camera (roads, terrain, water). `2 * n * m` triangles.
///
/// # Panics
///
/// Panics if `n` or `m` is zero.
pub fn grid(n: u32, m: u32, base_address: u64) -> Arc<Mesh> {
    assert!(n > 0 && m > 0, "grid dimensions must be non-zero");
    let mut vertices = Vec::with_capacity(((n + 1) * (m + 1)) as usize);
    for j in 0..=m {
        for i in 0..=n {
            let u = i as f32 / n as f32;
            let w = j as f32 / m as f32;
            // Slight height ripple makes the strip non-degenerate when
            // viewed edge-on.
            let h = ((i * 3 + j * 5) as f32 * 0.7).sin() * 0.02;
            vertices.push(v(u - 0.5, h, w - 0.5, u, w));
        }
    }
    let mut indices = Vec::with_capacity((n * m * 6) as usize);
    for j in 0..m {
        for i in 0..n {
            let a = j * (n + 1) + i;
            let b = a + 1;
            let c = a + (n + 1);
            let d = c + 1;
            // CCW viewed from +Y (looking down).
            indices.extend_from_slice(&[a, c, b, b, c, d]);
        }
    }
    Arc::new(Mesh::new(vertices, indices, base_address))
}

/// A triangle fan approximating a disc facing +Z (particles, coins,
/// explosion bursts). `n` triangles.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn disc(n: u32, base_address: u64) -> Arc<Mesh> {
    assert!(n >= 3, "a disc needs at least 3 segments");
    let mut vertices = vec![v(0.0, 0.0, 0.0, 0.5, 0.5)];
    for i in 0..n {
        let a = i as f32 / n as f32 * std::f32::consts::TAU;
        vertices.push(v(
            a.cos() * 0.5,
            a.sin() * 0.5,
            0.0,
            a.cos() * 0.5 + 0.5,
            a.sin() * 0.5 + 0.5,
        ));
    }
    let mut indices = Vec::with_capacity(n as usize * 3);
    for i in 0..n {
        let b = 1 + i;
        let c = 1 + (i + 1) % n;
        indices.extend_from_slice(&[0, b, c]);
    }
    Arc::new(Mesh::new(vertices, indices, base_address))
}

/// A low-poly "gem": two fans sharing a rim, a stand-in for character
/// or vehicle blobs. `2n` triangles, closed CCW-out surface.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn gem(n: u32, base_address: u64) -> Arc<Mesh> {
    assert!(n >= 3, "a gem needs at least 3 segments");
    let mut vertices = vec![
        v(0.0, 0.0, 0.5, 0.5, 1.0),  // front apex
        v(0.0, 0.0, -0.5, 0.5, 0.0), // back apex
    ];
    for i in 0..n {
        let a = i as f32 / n as f32 * std::f32::consts::TAU;
        vertices.push(v(
            a.cos() * 0.5,
            a.sin() * 0.5,
            0.0,
            i as f32 / n as f32,
            0.5,
        ));
    }
    let mut indices = Vec::with_capacity(n as usize * 6);
    for i in 0..n {
        let b = 2 + i;
        let c = 2 + (i + 1) % n;
        // Front fan CCW seen from +Z; back fan CCW seen from -Z.
        indices.extend_from_slice(&[0, b, c]);
        indices.extend_from_slice(&[1, c, b]);
    }
    Arc::new(Mesh::new(vertices, indices, base_address))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_has_two_triangles() {
        let m = unit_quad(0);
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.vertices.len(), 4);
    }

    #[test]
    fn cube_has_twelve_triangles() {
        let m = unit_cube(0);
        assert_eq!(m.triangle_count(), 12);
        assert_eq!(m.vertices.len(), 8);
    }

    #[test]
    fn grid_counts_scale() {
        let m = grid(4, 3, 0);
        assert_eq!(m.vertices.len(), 5 * 4);
        assert_eq!(m.triangle_count(), 4 * 3 * 2);
    }

    #[test]
    fn disc_and_gem_close_up() {
        assert_eq!(disc(8, 0).triangle_count(), 8);
        assert_eq!(gem(6, 0).triangle_count(), 12);
    }

    #[test]
    fn meshes_fit_unit_box() {
        for m in [
            unit_quad(0),
            unit_cube(0),
            grid(4, 4, 0),
            disc(8, 0),
            gem(6, 0),
        ] {
            for vtx in &m.vertices {
                assert!(vtx.position.x.abs() <= 0.5 + 1e-6);
                assert!(vtx.position.y.abs() <= 0.5 + 1e-6);
                assert!(vtx.position.z.abs() <= 0.5 + 1e-6);
            }
        }
    }

    #[test]
    fn base_addresses_propagate() {
        assert_eq!(unit_quad(0x1234).base_address, 0x1234);
    }
}
