//! Property tests of the GL trace layer: record/replay fidelity on real
//! workloads and decoder robustness against arbitrary bytes.

use std::path::PathBuf;

use proptest::prelude::*;

use megsim_gl::{decode, encode, encode_v2, play, record_sequence};
use megsim_workloads::{build, BENCHMARKS};

/// Loads a golden corpus file (`v2 = false` for `tests/data`, `true`
/// for `tests/data/v2`).
fn corpus_bytes(alias: &str, v2: bool) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(if v2 { "tests/data/v2" } else { "tests/data" })
        .join(format!("{alias}.mglt"));
    std::fs::read(path).expect("corpus file present")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full TEAPOT-style loop — record a workload, write the trace
    /// file, read it back, replay — must reproduce every draw call.
    #[test]
    fn workload_trace_roundtrip(bench in 0usize..8, seed in 0u64..50) {
        let w = build(&BENCHMARKS[bench], 0.002, seed);
        let frames: Vec<_> = w.iter_frames().collect();
        let stream = record_sequence(w.shaders(), &frames);
        let bytes = encode(&stream);
        let decoded = decode(&bytes).expect("self-produced trace decodes");
        prop_assert_eq!(&stream, &decoded);
        let replay = play(&decoded).expect("self-produced trace plays");
        prop_assert_eq!(replay.frames.len(), frames.len());
        prop_assert_eq!(replay.shaders.vertex_count(), w.shaders().vertex_count());
        prop_assert_eq!(replay.shaders.fragment_count(), w.shaders().fragment_count());
        for (orig, back) in frames.iter().zip(&replay.frames) {
            prop_assert_eq!(orig.draws.len(), back.draws.len());
            for (a, b) in orig.draws.iter().zip(&back.draws) {
                prop_assert_eq!(&*a.mesh, &*b.mesh);
                prop_assert_eq!(a.transform, b.transform);
                prop_assert_eq!(a.vertex_shader, b.vertex_shader);
                prop_assert_eq!(a.fragment_shader, b.fragment_shader);
                prop_assert_eq!(a.texture, b.texture);
                prop_assert_eq!(a.blend, b.blend);
                prop_assert_eq!(a.depth_test, b.depth_test);
            }
        }
    }

    /// The decoder must never panic on arbitrary input.
    #[test]
    fn decoder_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(&bytes);
    }

    /// Bit-flipping a valid trace must either decode to *something* or
    /// fail cleanly — never panic.
    #[test]
    fn decoder_survives_corruption(bench in 0usize..4, flip in 0usize..4096, bit in 0u8..8) {
        let w = build(&BENCHMARKS[bench], 0.001, 3);
        let frames: Vec<_> = w.iter_frames().take(3).collect();
        let stream = record_sequence(w.shaders(), &frames);
        let mut bytes = encode(&stream).to_vec();
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = decode(&bytes);
    }

    /// Recording through the v2 wire format is as lossless as v1: both
    /// encodings of the same workload decode to the same stream.
    #[test]
    fn v2_roundtrip_matches_v1(bench in 0usize..8, seed in 0u64..50) {
        let w = build(&BENCHMARKS[bench], 0.001, seed);
        let frames: Vec<_> = w.iter_frames().take(3).collect();
        let stream = record_sequence(w.shaders(), &frames);
        let v1 = decode(&encode(&stream)).expect("v1 decodes");
        let v2 = decode(&encode_v2(&stream)).expect("v2 decodes");
        prop_assert_eq!(&stream, &v1);
        prop_assert_eq!(&v1, &v2);
    }

    /// Flipping any single bit of a golden corpus file (either wire
    /// version) must decode cleanly or fail with an error whose byte
    /// offset lies inside the file — never panic, never point past the
    /// bytes that exist.
    #[test]
    fn corpus_survives_bit_flips(bench in 0usize..8, v2 in any::<bool>(), flip in 0usize..8192, bit in 0u8..8) {
        let mut bytes = corpus_bytes(&BENCHMARKS[bench].alias, v2);
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Err(e) = decode(&bytes) {
            prop_assert!(
                e.offset <= bytes.len() as u64,
                "error offset {} past end of {}-byte input: {e}",
                e.offset,
                bytes.len()
            );
        }
    }

    /// Truncating a golden corpus file anywhere before its end must
    /// fail (the header's command count can no longer be satisfied)
    /// with an error offset at or before the cut.
    #[test]
    fn corpus_truncation_errors_in_range(bench in 0usize..8, v2 in any::<bool>(), cut in 0usize..8192) {
        let bytes = corpus_bytes(&BENCHMARKS[bench].alias, v2);
        let cut = cut % bytes.len();
        let err = decode(&bytes[..cut]).expect_err("truncated trace must not decode");
        prop_assert!(
            err.offset <= cut as u64,
            "error offset {} past the {cut}-byte cut: {err}",
            err.offset
        );
    }
}
