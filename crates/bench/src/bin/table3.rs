//! Prints Table III (frame-reduction factor per benchmark).
use megsim_bench::experiments::{run_all_megsim, table3};
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    let data = compute_suite(&ctx);
    let runs = run_all_megsim(&data, &ctx.megsim);
    print!("{}", table3(&data, &runs));
}
