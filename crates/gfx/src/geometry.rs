//! Vertices, meshes and primitives flowing through the pipeline.

use serde::{Deserialize, Serialize};

use crate::math::{signed_area2, Vec2, Vec3};

/// A model-space vertex as stored in a vertex buffer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vertex {
    /// Model-space position.
    pub position: Vec3,
    /// Surface normal (used only as shading cost proxy).
    pub normal: Vec3,
    /// Texture coordinates.
    pub uv: Vec2,
}

impl Vertex {
    /// Creates a vertex at `position` with a default normal and UV
    /// derived from the XY position (good enough for synthetic scenes).
    pub fn at(position: Vec3) -> Self {
        Self {
            position,
            normal: Vec3::new(0.0, 0.0, 1.0),
            uv: Vec2::new(position.x.fract().abs(), position.y.fract().abs()),
        }
    }

    /// Bytes one vertex occupies in memory (pos + normal + uv, f32).
    pub const SIZE_BYTES: u64 = 32;
}

/// An indexed triangle mesh plus its simulated memory location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    /// Vertex data.
    pub vertices: Vec<Vertex>,
    /// Triangle list: three indices per triangle.
    pub indices: Vec<u32>,
    /// Base address of the vertex buffer in the simulated address space.
    pub base_address: u64,
}

impl Mesh {
    /// Creates a mesh, validating the index list.
    ///
    /// # Panics
    ///
    /// Panics if the index count is not a multiple of 3 or an index is
    /// out of bounds.
    pub fn new(vertices: Vec<Vertex>, indices: Vec<u32>, base_address: u64) -> Self {
        assert_eq!(
            indices.len() % 3,
            0,
            "triangle list length must be a multiple of 3"
        );
        let n = vertices.len() as u32;
        assert!(indices.iter().all(|&i| i < n), "mesh index out of bounds");
        Self {
            vertices,
            indices,
            base_address,
        }
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.indices.len() / 3
    }

    /// Address of vertex `i`'s data.
    pub fn vertex_address(&self, i: u32) -> u64 {
        self.base_address + u64::from(i) * Vertex::SIZE_BYTES
    }
}

/// A vertex after the Geometry Pipeline: screen-space position + varyings.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScreenVertex {
    /// Screen-space X in pixels.
    pub x: f32,
    /// Screen-space Y in pixels.
    pub y: f32,
    /// Depth in `[0, 1]` after the viewport transform.
    pub z: f32,
    /// Reciprocal of clip-space W (kept for perspective correction cost).
    pub inv_w: f32,
    /// Interpolated texture coordinates.
    pub uv: Vec2,
}

impl ScreenVertex {
    /// The 2-D screen position.
    pub fn pos2(&self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }
}

/// A screen-space triangle (the paper's *primitive*).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Primitive {
    /// The three transformed vertices.
    pub v: [ScreenVertex; 3],
}

impl Primitive {
    /// Twice the signed screen-space area.
    pub fn signed_area2(&self) -> f32 {
        signed_area2(self.v[0].pos2(), self.v[1].pos2(), self.v[2].pos2())
    }

    /// Axis-aligned screen bounding box `(min_x, min_y, max_x, max_y)`.
    pub fn bounds(&self) -> (f32, f32, f32, f32) {
        let xs = [self.v[0].x, self.v[1].x, self.v[2].x];
        let ys = [self.v[0].y, self.v[1].y, self.v[2].y];
        let min = |a: &[f32; 3]| a.iter().copied().fold(f32::INFINITY, f32::min);
        let max = |a: &[f32; 3]| a.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        (min(&xs), min(&ys), max(&xs), max(&ys))
    }

    /// True when the triangle has (near-)zero area and can be culled.
    pub fn is_degenerate(&self) -> bool {
        self.signed_area2().abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(a: (f32, f32), b: (f32, f32), c: (f32, f32)) -> Primitive {
        let sv = |(x, y): (f32, f32)| ScreenVertex {
            x,
            y,
            z: 0.5,
            inv_w: 1.0,
            uv: Vec2::default(),
        };
        Primitive {
            v: [sv(a), sv(b), sv(c)],
        }
    }

    #[test]
    fn mesh_validates_indices() {
        let verts = vec![Vertex::at(Vec3::ZERO); 3];
        let mesh = Mesh::new(verts, vec![0, 1, 2], 0x100);
        assert_eq!(mesh.triangle_count(), 1);
        assert_eq!(mesh.vertex_address(2), 0x100 + 2 * Vertex::SIZE_BYTES);
    }

    #[test]
    #[should_panic(expected = "multiple of 3")]
    fn mesh_rejects_partial_triangles() {
        let _ = Mesh::new(vec![Vertex::default(); 3], vec![0, 1], 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn mesh_rejects_bad_index() {
        let _ = Mesh::new(vec![Vertex::default(); 2], vec![0, 1, 2], 0);
    }

    #[test]
    fn primitive_area_and_bounds() {
        let p = tri((0.0, 0.0), (4.0, 0.0), (0.0, 4.0));
        assert_eq!(p.signed_area2(), 16.0);
        assert_eq!(p.bounds(), (0.0, 0.0, 4.0, 4.0));
        assert!(!p.is_degenerate());
    }

    #[test]
    fn collinear_primitive_is_degenerate() {
        let p = tri((0.0, 0.0), (1.0, 1.0), (2.0, 2.0));
        assert!(p.is_degenerate());
    }
}
