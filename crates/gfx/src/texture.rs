//! Texture descriptors and texel address computation.
//!
//! Textures never hold pixel data in this simulator — only the metadata
//! needed to turn a `(u, v)` sample into the set of memory addresses the
//! texture caches and DRAM will observe.

use serde::{Deserialize, Serialize};

use crate::math::Vec2;
use crate::shader::TextureFilter;

/// Identifies a texture within one workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TextureId(pub u32);

/// Metadata of one texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextureDesc {
    /// Texture identifier.
    pub id: TextureId,
    /// Width in texels (power of two).
    pub width: u32,
    /// Height in texels (power of two).
    pub height: u32,
    /// Bytes per texel (e.g. 4 for RGBA8).
    pub bytes_per_texel: u32,
    /// Base address of mip level 0 in the simulated address space.
    pub base_address: u64,
}

impl TextureDesc {
    /// Creates a texture descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are not powers of two or zero, which
    /// would break the wrap-around addressing below.
    pub fn new(id: u32, width: u32, height: u32, bytes_per_texel: u32, base_address: u64) -> Self {
        assert!(
            width.is_power_of_two(),
            "texture width must be a power of two"
        );
        assert!(
            height.is_power_of_two(),
            "texture height must be a power of two"
        );
        assert!(bytes_per_texel > 0, "texel size must be non-zero");
        Self {
            id: TextureId(id),
            width,
            height,
            bytes_per_texel,
            base_address,
        }
    }

    /// Total size in bytes of mip level 0.
    pub fn level0_bytes(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * u64::from(self.bytes_per_texel)
    }

    /// Address of the texel at integer coordinates, wrapping (GL_REPEAT).
    ///
    /// Texels are stored in 4×4 tiles (Morton-lite layout) so that a
    /// bilinear footprint usually touches a single cache line, matching
    /// how mobile GPUs lay out textures.
    pub fn texel_address(&self, x: i64, y: i64, level: u32) -> u64 {
        let w = (self.width >> level).max(1);
        let h = (self.height >> level).max(1);
        let x = x.rem_euclid(i64::from(w)) as u64;
        let y = y.rem_euclid(i64::from(h)) as u64;
        // 4×4 texel blocks, row-major blocks, row-major texels inside.
        let bw = u64::from(w.div_ceil(4));
        let block = (y / 4) * bw + x / 4;
        let within = (y % 4) * 4 + x % 4;
        self.level_base(level) + (block * 16 + within) * u64::from(self.bytes_per_texel)
    }

    /// Base address of a mip level.
    fn level_base(&self, level: u32) -> u64 {
        let mut base = self.base_address;
        for l in 0..level {
            let w = u64::from((self.width >> l).max(1));
            let h = u64::from((self.height >> l).max(1));
            base += w * h * u64::from(self.bytes_per_texel);
        }
        base
    }

    /// Highest addressable mip level (down to 1×1).
    pub fn max_level(&self) -> u32 {
        self.width.min(self.height).trailing_zeros()
    }

    /// Generates the memory addresses one sample at `(u, v)` touches for
    /// the given filter mode at mip level 0, pushing them into `out`.
    ///
    /// The number of addresses equals [`TextureFilter::memory_accesses`],
    /// which is the invariant the paper's §III-B weighting relies on.
    pub fn sample_addresses(&self, uv: Vec2, filter: TextureFilter, out: &mut Vec<u64>) {
        self.sample_addresses_lod(uv, filter, 0, out);
    }

    /// LOD-aware variant of [`TextureDesc::sample_addresses`]: samples at
    /// mip `level` (clamped to [`TextureDesc::max_level`]), which is how
    /// the hardware keeps the texel:pixel ratio near one.
    pub fn sample_addresses_lod(
        &self,
        uv: Vec2,
        filter: TextureFilter,
        level: u32,
        out: &mut Vec<u64>,
    ) {
        let level = level.min(self.max_level());
        let w = (self.width >> level).max(1);
        let h = (self.height >> level).max(1);
        let x = (uv.x * w as f32).floor() as i64;
        let y = (uv.y * h as f32).floor() as i64;
        match filter {
            TextureFilter::Nearest => out.push(self.texel_address(x, y, level)),
            TextureFilter::Linear => {
                out.push(self.texel_address(x, y, level));
                out.push(self.texel_address(x + 1, y, level));
            }
            TextureFilter::Bilinear => {
                for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                    out.push(self.texel_address(x + dx, y + dy, level));
                }
            }
            TextureFilter::Trilinear => {
                let next = (level + 1).min(self.max_level());
                for (l, shift) in [(level, 0u32), (next, 1)] {
                    let lx = x >> shift;
                    let ly = y >> shift;
                    for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                        out.push(self.texel_address(lx + dx, ly + dy, l));
                    }
                }
            }
        }
    }

    /// Precomputes the per-level addressing constants for a
    /// `(filter, lod)` pair, so a hot loop sampling many `(u, v)`
    /// positions of the same texture skips the per-call level clamp,
    /// mip-chain walk ([`level_base`] loops over levels) and euclidean
    /// remainders.
    ///
    /// [`LodSampler::addresses`] is bit-identical to
    /// [`TextureDesc::sample_addresses_lod`] with the same arguments
    /// (pinned by tests below): dimensions are powers of two, so the
    /// wrap `x.rem_euclid(w)` is exactly `x & (w - 1)` in two's
    /// complement.
    ///
    /// [`level_base`]: TextureDesc::level_base
    pub fn lod_sampler(&self, filter: TextureFilter, level: u32) -> LodSampler {
        let level = level.min(self.max_level());
        let next = (level + 1).min(self.max_level());
        LodSampler {
            filter,
            bytes_per_texel: u64::from(self.bytes_per_texel),
            near: self.level_params(level),
            far: self.level_params(next),
        }
    }

    fn level_params(&self, level: u32) -> LevelParams {
        let w = (self.width >> level).max(1);
        let h = (self.height >> level).max(1);
        LevelParams {
            w,
            h,
            wf: w as f32,
            hf: h as f32,
            x_mask: i64::from(w) - 1,
            y_mask: i64::from(h) - 1,
            block_row: u64::from(w.div_ceil(4)),
            base: self.level_base(level),
        }
    }
}

/// Addressing constants of one mip level (see [`TextureDesc::lod_sampler`]).
#[derive(Debug, Clone, Copy)]
struct LevelParams {
    w: u32,
    h: u32,
    /// `w`/`h` as f32, so UV scaling skips the per-sample conversion.
    wf: f32,
    hf: f32,
    x_mask: i64,
    y_mask: i64,
    /// Number of 4×4 blocks per block row.
    block_row: u64,
    /// Precomputed [`TextureDesc::level_base`] of the level.
    base: u64,
}

impl LevelParams {
    /// [`TextureDesc::texel_address`] with the level constants hoisted.
    #[inline]
    fn texel_address(&self, x: i64, y: i64, bytes_per_texel: u64) -> u64 {
        let x = (x & self.x_mask) as u64;
        let y = (y & self.y_mask) as u64;
        let block = (y / 4) * self.block_row + x / 4;
        let within = (y % 4) * 4 + x % 4;
        self.base + (block * 16 + within) * bytes_per_texel
    }

    /// Partial address terms of one wrapped x (or y) coordinate, so a
    /// 2×2 footprint shares them instead of recomputing
    /// [`Self::texel_address`] per tap. Pure regrouping of the same
    /// integer arithmetic — the composed addresses are identical.
    #[inline]
    fn x_terms(&self, x: i64) -> (u64, u64) {
        let x = (x & self.x_mask) as u64;
        (x / 4, x % 4)
    }

    /// `(block-row term, within-block row term)` for a wrapped y.
    #[inline]
    fn y_terms(&self, y: i64) -> (u64, u64) {
        let y = (y & self.y_mask) as u64;
        ((y / 4) * self.block_row, (y % 4) * 4)
    }

    /// Composes [`Self::x_terms`] and [`Self::y_terms`] into the texel
    /// address.
    #[inline]
    fn compose(&self, (xb, xw): (u64, u64), (yb, yw): (u64, u64), bytes_per_texel: u64) -> u64 {
        self.base + ((yb + xb) * 16 + yw + xw) * bytes_per_texel
    }

    /// The four bilinear taps `(x, y), (x+1, y), (x, y+1), (x+1, y+1)`
    /// with the shared per-coordinate terms computed once.
    #[inline]
    fn quad_taps(&self, x: i64, y: i64, bpt: u64, out: &mut [u64]) {
        let x0 = self.x_terms(x);
        let x1 = self.x_terms(x + 1);
        let y0 = self.y_terms(y);
        let y1 = self.y_terms(y + 1);
        out[0] = self.compose(x0, y0, bpt);
        out[1] = self.compose(x1, y0, bpt);
        out[2] = self.compose(x0, y1, bpt);
        out[3] = self.compose(x1, y1, bpt);
    }

    /// Whether `x` and `x + 1` wrap into the same 4-texel block column
    /// (so a 2-wide footprint stays inside one block horizontally).
    /// `(x & mask) & 3 == 3` is exactly the straddle case: either the
    /// next texel enters the neighbouring block or it wraps to column 0.
    #[inline]
    fn x_pair_in_block(&self, x: i64) -> bool {
        (x & self.x_mask) & 3 != 3
    }

    /// [`Self::x_pair_in_block`] for the y direction.
    #[inline]
    fn y_pair_in_block(&self, y: i64) -> bool {
        (y & self.y_mask) & 3 != 3
    }

    /// The bilinear quad as same-line `(first address, count)` runs,
    /// passed to `emit` in stream order.
    ///
    /// Concatenating the runs reproduces [`Self::quad_taps`]'s address
    /// stream in order; a multi-tap run is emitted only when all its
    /// taps provably share one `line_size`-byte cache line (the whole
    /// footprint, or one footprint row, inside a single 16-texel block
    /// that itself fits the line). Falls back to per-tap runs
    /// otherwise.
    #[inline]
    fn quad_runs(&self, x: i64, y: i64, bpt: u64, line_size: u64, emit: &mut impl FnMut(u64, u64)) {
        let block_bytes = 16 * bpt;
        if block_bytes <= line_size
            && self.base.is_multiple_of(block_bytes)
            && self.x_pair_in_block(x)
        {
            if self.y_pair_in_block(y) {
                emit(self.texel_address(x, y, bpt), 4);
                return;
            }
            emit(self.texel_address(x, y, bpt), 2);
            emit(self.texel_address(x, y + 1, bpt), 2);
            return;
        }
        let mut taps = [0u64; 4];
        self.quad_taps(x, y, bpt, &mut taps);
        for addr in taps {
            emit(addr, 1);
        }
    }
}

/// The most addresses one filter tap can produce (trilinear: 2×2 taps
/// on each of two mip levels).
pub const MAX_SAMPLE_ADDRESSES: usize = 8;

/// Memoized sample-address generator for one (texture, filter, lod)
/// triple; built once per primitive by [`TextureDesc::lod_sampler`] and
/// queried once per fragment.
#[derive(Debug, Clone, Copy)]
pub struct LodSampler {
    filter: TextureFilter,
    bytes_per_texel: u64,
    /// The selected mip level.
    near: LevelParams,
    /// The next-coarser level (trilinear's second tap set; equals
    /// `near` at the bottom of the mip chain).
    far: LevelParams,
}

/// `f.floor() as i64` without the libc `floorf` call: the x86-64
/// baseline has no `roundss` instruction, so `f32::floor` lowers to a
/// library call on every fragment. Truncating casts saturate in Rust,
/// so truncate-and-adjust (with a saturating adjust for the
/// below-`i64::MIN` edge) is bit-identical for every input, including
/// NaN and the saturation boundaries.
#[inline]
fn floor_i64(f: f32) -> i64 {
    let t = f as i64;
    t.saturating_sub((t as f32 > f) as i64)
}

impl LodSampler {
    /// Footprint of the selected mip level in texels: `(1/w, 1/h)`.
    pub fn texel_extent(&self) -> Vec2 {
        Vec2::new(1.0 / self.near.w as f32, 1.0 / self.near.h as f32)
    }

    /// Pushes the sample addresses for `(u, v)`; bit-identical to
    /// [`TextureDesc::sample_addresses_lod`] at the sampler's filter
    /// and level.
    pub fn addresses(&self, uv: Vec2, out: &mut Vec<u64>) {
        let mut buf = [0u64; MAX_SAMPLE_ADDRESSES];
        let n = self.addresses_array(uv, &mut buf);
        out.extend_from_slice(&buf[..n]);
    }

    /// Streams the sample addresses for `(u, v)` as same-line
    /// `(first address, count)` runs, in stream order: concatenating the
    /// runs yields exactly [`Self::addresses_array`]'s address stream,
    /// and every address of a run falls on the same
    /// `1 << line_shift`-byte cache line. The timing hot loop feeds
    /// these straight into its run-coalescing state machine, so the
    /// common all-taps-in-one-block footprint costs one address
    /// computation instead of four — and the closure form keeps the
    /// runs in registers instead of staging them through memory.
    #[inline]
    pub fn for_each_run(&self, uv: Vec2, line_shift: u32, mut emit: impl FnMut(u64, u64)) {
        let bpt = self.bytes_per_texel;
        let line_size = 1u64 << line_shift;
        let x = floor_i64(uv.x * self.near.wf);
        let y = floor_i64(uv.y * self.near.hf);
        match self.filter {
            TextureFilter::Nearest => emit(self.near.texel_address(x, y, bpt), 1),
            TextureFilter::Linear => {
                let block_bytes = 16 * bpt;
                if block_bytes <= line_size
                    && self.near.base.is_multiple_of(block_bytes)
                    && self.near.x_pair_in_block(x)
                {
                    emit(self.near.texel_address(x, y, bpt), 2);
                } else {
                    emit(self.near.texel_address(x, y, bpt), 1);
                    emit(self.near.texel_address(x + 1, y, bpt), 1);
                }
            }
            TextureFilter::Bilinear => self.near.quad_runs(x, y, bpt, line_size, &mut emit),
            TextureFilter::Trilinear => {
                self.near.quad_runs(x, y, bpt, line_size, &mut emit);
                self.far
                    .quad_runs(x >> 1, y >> 1, bpt, line_size, &mut emit);
            }
        }
    }

    /// [`Self::for_each_run`] collected into a fixed buffer, returning
    /// the run count (the form the equivalence tests pin against
    /// [`Self::addresses_array`]).
    pub fn sample_runs(
        &self,
        uv: Vec2,
        line_shift: u32,
        out: &mut [(u64, u64); MAX_SAMPLE_ADDRESSES],
    ) -> usize {
        let mut n = 0;
        self.for_each_run(uv, line_shift, |addr, count| {
            out[n] = (addr, count);
            n += 1;
        });
        n
    }

    /// [`Self::addresses`] into a fixed buffer, returning the address
    /// count — the allocation-free form [`Self::sample_runs`] is pinned
    /// against.
    #[inline]
    pub fn addresses_array(&self, uv: Vec2, out: &mut [u64; MAX_SAMPLE_ADDRESSES]) -> usize {
        let bpt = self.bytes_per_texel;
        let x = floor_i64(uv.x * self.near.wf);
        let y = floor_i64(uv.y * self.near.hf);
        match self.filter {
            TextureFilter::Nearest => {
                out[0] = self.near.texel_address(x, y, bpt);
                1
            }
            TextureFilter::Linear => {
                out[0] = self.near.texel_address(x, y, bpt);
                out[1] = self.near.texel_address(x + 1, y, bpt);
                2
            }
            TextureFilter::Bilinear => {
                self.near.quad_taps(x, y, bpt, &mut out[..4]);
                4
            }
            TextureFilter::Trilinear => {
                self.near.quad_taps(x, y, bpt, &mut out[..4]);
                self.far.quad_taps(x >> 1, y >> 1, bpt, &mut out[4..8]);
                8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tex() -> TextureDesc {
        TextureDesc::new(0, 64, 64, 4, 0x1000)
    }

    #[test]
    fn floor_i64_matches_float_floor_everywhere() {
        let mut cases: Vec<f32> = vec![
            0.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN,
            f32::MAX,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            9.2233715e18, // largest f32 below 2^63
            -9.3e18,      // below i64::MIN: both forms saturate
        ];
        // Every exponent with a spread of mantissas, both signs.
        for exp_bits in 0..=0xffu32 {
            for mant in [0u32, 1, 0x1234, 0x3f_ffff, 0x40_0000, 0x7f_ffff] {
                let bits = (exp_bits << 23) | mant;
                cases.push(f32::from_bits(bits));
                cases.push(f32::from_bits(bits | 0x8000_0000));
            }
        }
        for f in cases {
            assert_eq!(
                floor_i64(f),
                f.floor() as i64,
                "floor_i64({f:?}) [bits {:#010x}]",
                f.to_bits()
            );
        }
    }

    #[test]
    fn sample_address_count_matches_filter_weight() {
        let t = tex();
        for filter in TextureFilter::ALL {
            let mut out = Vec::new();
            t.sample_addresses(Vec2::new(0.3, 0.7), filter, &mut out);
            assert_eq!(out.len(), filter.memory_accesses() as usize, "{filter:?}");
        }
    }

    #[test]
    fn addresses_wrap_at_edges() {
        let t = tex();
        let a = t.texel_address(-1, 0, 0);
        let b = t.texel_address(63, 0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn mip_level_bases_do_not_overlap() {
        let t = tex();
        assert!(t.level_base(1) >= t.base_address + t.level0_bytes());
    }

    #[test]
    fn bilinear_footprint_often_shares_cache_line() {
        // With 4×4×4-byte blocks (64 B = one cache line), a footprint
        // entirely inside a block touches one line.
        let t = tex();
        let mut out = Vec::new();
        t.sample_addresses(
            Vec2::new(1.5 / 64.0, 1.5 / 64.0),
            TextureFilter::Bilinear,
            &mut out,
        );
        let lines: std::collections::HashSet<u64> = out.iter().map(|a| a / 64).collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = TextureDesc::new(0, 48, 64, 4, 0);
    }

    #[test]
    fn lod_sampler_matches_sample_addresses_lod() {
        // Non-square texture exercises the independent x/y wrap masks;
        // uv sweep includes negatives (wrap) and magnitudes past 1.
        let t = TextureDesc::new(7, 128, 32, 4, 0xABC0_0000);
        let mut slow = Vec::new();
        let mut fast = Vec::new();
        for filter in TextureFilter::ALL {
            for lod in 0..=t.max_level() + 2 {
                let sampler = t.lod_sampler(filter, lod);
                for i in -40i32..40 {
                    for j in -40i32..40 {
                        let uv = Vec2::new(i as f32 * 0.07, j as f32 * 0.11);
                        slow.clear();
                        fast.clear();
                        t.sample_addresses_lod(uv, filter, lod, &mut slow);
                        sampler.addresses(uv, &mut fast);
                        assert_eq!(slow, fast, "{filter:?} lod {lod} uv {uv:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn sample_runs_replay_addresses_in_order_and_share_lines() {
        // Line-aligned and deliberately misaligned bases (the latter
        // must force per-tap runs), plus an 8-byte-per-texel format
        // whose blocks straddle 64-byte lines.
        let textures = [
            TextureDesc::new(0, 128, 32, 4, 0xABC0_0000),
            TextureDesc::new(1, 64, 64, 4, 0x5000 + 16),
            TextureDesc::new(2, 32, 32, 8, 0x9000),
        ];
        for t in textures {
            for filter in TextureFilter::ALL {
                for lod in 0..=t.max_level() + 1 {
                    let sampler = t.lod_sampler(filter, lod);
                    for i in -25i32..25 {
                        for j in -25i32..25 {
                            let uv = Vec2::new(i as f32 * 0.083, j as f32 * 0.129);
                            let mut addrs = [0u64; MAX_SAMPLE_ADDRESSES];
                            let n = sampler.addresses_array(uv, &mut addrs);
                            let mut runs = [(0u64, 0u64); MAX_SAMPLE_ADDRESSES];
                            let m = sampler.sample_runs(uv, 6, &mut runs);
                            let mut flat = Vec::new();
                            for &(addr, count) in &runs[..m] {
                                for k in 0..count {
                                    // Every address of a run shares the
                                    // first address's 64-byte line.
                                    flat.push((addr >> 6, if k == 0 { Some(addr) } else { None }));
                                }
                            }
                            assert_eq!(flat.len(), n, "{filter:?} lod {lod} uv {uv:?}");
                            for (k, &addr) in addrs[..n].iter().enumerate() {
                                assert_eq!(flat[k].0, addr >> 6, "{filter:?} lod {lod} uv {uv:?}");
                                if let Some(first) = flat[k].1 {
                                    assert_eq!(first, addr, "{filter:?} lod {lod} uv {uv:?}");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lod_sampler_texel_extent_matches_level_dims() {
        let t = TextureDesc::new(0, 64, 16, 4, 0);
        let s = t.lod_sampler(TextureFilter::Bilinear, 2);
        assert_eq!(s.texel_extent(), Vec2::new(1.0 / 16.0, 1.0 / 4.0));
        // Clamped past the bottom of the chain.
        let s = t.lod_sampler(TextureFilter::Bilinear, 9);
        assert_eq!(s.texel_extent(), Vec2::new(1.0 / 4.0, 1.0));
    }
}
