//! On-disk record framing for store segments.
//!
//! A segment is a header followed by a run of self-checking records:
//!
//! ```text
//! segment  := magic "MGSTSEG\0" | version u32 | record*
//! record   := payload_len u32 | key u128 | payload bytes | crc u32
//! ```
//!
//! All integers are little-endian. The CRC covers the length field, the
//! key and the payload, so a record cannot be mis-framed by a corrupted
//! length without failing its checksum. Scanning is *forgiving by
//! design*: the first record that fails to frame or checksum ends the
//! scan, everything before it is served, and everything at or after it
//! is treated as a torn tail — a crash mid-append loses at most the
//! records of the interrupted flush, never the segment.

use crate::crc::{crc32, Crc32};

/// Leading bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"MGSTSEG\0";

/// On-disk segment format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Hard cap on a record payload. Frame records are a few hundred bytes;
/// anything claiming more than this is framing garbage, not data.
pub const MAX_PAYLOAD: usize = 8 << 20;

/// Bytes of header before the first record.
pub const HEADER_LEN: usize = SEGMENT_MAGIC.len() + 4;

/// Fixed framing overhead of one record around its payload.
pub const RECORD_OVERHEAD: usize = 4 + 16 + 4;

/// Writes the segment header into `out`.
pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
}

/// Appends one framed record to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD`] — the typed codecs never
/// produce records anywhere near the cap.
pub fn append_record(out: &mut Vec<u8>, key: u128, payload: &[u8]) {
    assert!(payload.len() <= MAX_PAYLOAD, "record payload over cap");
    let len = (payload.len() as u32).to_le_bytes();
    let key_bytes = key.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&len);
    crc.update(&key_bytes);
    crc.update(payload);
    out.extend_from_slice(&len);
    out.extend_from_slice(&key_bytes);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// A record located during a segment scan. `offset` addresses the start
/// of the record (its length field) within the segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef {
    /// The 128-bit content fingerprint.
    pub key: u128,
    /// Byte offset of the record start within the segment.
    pub offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

impl RecordRef {
    /// Total on-disk length of the record, framing included.
    pub fn record_len(&self) -> usize {
        RECORD_OVERHEAD + self.payload_len as usize
    }
}

/// Result of scanning one segment's bytes.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Every record that framed and checksummed correctly, in file
    /// order.
    pub records: Vec<RecordRef>,
    /// Whether the scan ended on garbage (bad header, torn tail, CRC
    /// failure) rather than a clean end-of-file.
    pub corrupt: bool,
}

/// Scans a whole segment image, returning the clean prefix of records.
///
/// Never fails: a segment with a bad header simply yields zero records
/// (and `corrupt = true`), and a damaged record ends the scan at the
/// last good one.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    if bytes.len() < HEADER_LEN
        || bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC
        || bytes[SEGMENT_MAGIC.len()..HEADER_LEN] != SEGMENT_VERSION.to_le_bytes()
    {
        out.corrupt = true;
        return out;
    }
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        match frame_record(&bytes[pos..]) {
            Some((key, payload_len)) => {
                out.records.push(RecordRef {
                    key,
                    offset: pos as u64,
                    payload_len,
                });
                pos += RECORD_OVERHEAD + payload_len as usize;
            }
            None => {
                out.corrupt = true;
                break;
            }
        }
    }
    out
}

/// Frames and verifies the record at the start of `bytes`, returning
/// its key and payload length.
fn frame_record(bytes: &[u8]) -> Option<(u128, u32)> {
    if bytes.len() < RECORD_OVERHEAD {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes[..4].try_into().ok()?);
    if payload_len as usize > MAX_PAYLOAD {
        return None;
    }
    let total = RECORD_OVERHEAD + payload_len as usize;
    if bytes.len() < total {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[total - 4..total].try_into().ok()?);
    if crc32(&bytes[..total - 4]) != stored_crc {
        return None;
    }
    let key = u128::from_le_bytes(bytes[4..20].try_into().ok()?);
    Some((key, payload_len))
}

/// Re-verifies a single record image (as re-read from disk on a
/// disk-tier hit) and returns its payload slice.
///
/// Returns `None` — a miss, never an error — if the bytes do not frame
/// exactly one record for `expected_key`.
pub fn verify_record(bytes: &[u8], expected_key: u128) -> Option<&[u8]> {
    let (key, payload_len) = frame_record(bytes)?;
    if key != expected_key || bytes.len() != RECORD_OVERHEAD + payload_len as usize {
        return None;
    }
    Some(&bytes[20..20 + payload_len as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_with(records: &[(u128, &[u8])]) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        for (key, payload) in records {
            append_record(&mut bytes, *key, payload);
        }
        bytes
    }

    #[test]
    fn round_trips_records_in_order() {
        let bytes = segment_with(&[(7, b"alpha"), (9, b""), (7 << 64, b"gamma")]);
        let scan = scan(&bytes);
        assert!(!scan.corrupt);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].key, 7);
        assert_eq!(scan.records[1].payload_len, 0);
        assert_eq!(scan.records[2].key, 7 << 64);
        let r = scan.records[2];
        let image = &bytes[r.offset as usize..r.offset as usize + r.record_len()];
        assert_eq!(verify_record(image, r.key), Some(&b"gamma"[..]));
    }

    #[test]
    fn empty_segment_is_clean() {
        let bytes = segment_with(&[]);
        let scan = scan(&bytes);
        assert!(!scan.corrupt);
        assert!(scan.records.is_empty());
    }

    #[test]
    fn bad_header_yields_nothing() {
        assert!(scan(b"not a segment").corrupt);
        assert!(scan(b"").records.is_empty());
        let mut wrong_version = segment_with(&[(1, b"x")]);
        wrong_version[SEGMENT_MAGIC.len()] ^= 0xFF;
        let outcome = scan(&wrong_version);
        assert!(outcome.corrupt && outcome.records.is_empty());
    }

    #[test]
    fn torn_tail_keeps_the_clean_prefix() {
        let full = segment_with(&[(1, b"first"), (2, b"second"), (3, b"third")]);
        // Cut mid-way through the last record, at every possible point.
        let third_start = scan(&full).records[2].offset as usize;
        for cut in third_start + 1..full.len() {
            let outcome = scan(&full[..cut]);
            assert!(outcome.corrupt, "cut at {cut} not flagged");
            assert_eq!(outcome.records.len(), 2, "cut at {cut} lost good records");
        }
    }

    #[test]
    fn bit_flip_ends_the_scan_at_the_damaged_record() {
        let full = segment_with(&[(1, b"first"), (2, b"second")]);
        let second = scan(&full).records[1];
        // Flip one payload bit of the second record.
        let mut damaged = full.clone();
        damaged[second.offset as usize + 21] ^= 0x04;
        let outcome = scan(&damaged);
        assert!(outcome.corrupt);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].key, 1);
    }

    #[test]
    fn absurd_length_field_is_rejected() {
        let mut bytes = segment_with(&[]);
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        let outcome = scan(&bytes);
        assert!(outcome.corrupt && outcome.records.is_empty());
    }

    #[test]
    fn verify_record_rejects_wrong_key_and_trailing_bytes() {
        let bytes = segment_with(&[(5, b"payload")]);
        let r = scan(&bytes).records[0];
        let image = &bytes[r.offset as usize..r.offset as usize + r.record_len()];
        assert!(verify_record(image, 6).is_none());
        let mut longer = image.to_vec();
        longer.push(0);
        assert!(verify_record(&longer, 5).is_none());
        assert!(verify_record(&image[..image.len() - 1], 5).is_none());
    }
}
