//! Minimal linear-algebra types used throughout the graphics pipeline.
//!
//! Only the operations the simulator needs are implemented: enough to
//! express model/view/projection transforms, perspective division and the
//! viewport mapping of the Geometry Pipeline, plus the 2-D edge functions
//! used by the rasterizer.

use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A 2-component single-precision vector (screen-space positions, UVs).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A 3-component single-precision vector (model-space positions, normals).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component single-precision vector (homogeneous/clip coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W (homogeneous) component.
    pub w: f32,
}

impl Vec2 {
    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Dot product.
    pub fn dot(self, rhs: Self) -> f32 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }
}

impl Vec3 {
    /// Zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0, 0.0);

    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Self::new(v, v, v)
    }

    /// Dot product.
    pub fn dot(self, rhs: Self) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Self) -> Self {
        Self::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Returns the unit-length vector pointing in the same direction.
    ///
    /// Returns the zero vector unchanged to avoid NaNs on degenerate input.
    pub fn normalized(self) -> Self {
        let len = self.length();
        if len <= f32::EPSILON {
            self
        } else {
            self / len
        }
    }

    /// Extends to a homogeneous point (`w = 1`).
    pub fn to_point4(self) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, 1.0)
    }
}

impl Vec4 {
    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Drops the W component.
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Performs the perspective division of the Geometry Pipeline.
    ///
    /// The caller must ensure `w != 0`; clip-space points with `w == 0`
    /// are rejected earlier by the clipper.
    pub fn perspective_divide(self) -> Vec3 {
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

macro_rules! impl_vec_ops {
    ($t:ty { $($f:ident),+ }) => {
        impl Add for $t {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self { $($f: self.$f + rhs.$f),+ }
            }
        }
        impl Sub for $t {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self { $($f: self.$f - rhs.$f),+ }
            }
        }
        impl Mul<f32> for $t {
            type Output = Self;
            fn mul(self, rhs: f32) -> Self {
                Self { $($f: self.$f * rhs),+ }
            }
        }
        impl Div<f32> for $t {
            type Output = Self;
            fn div(self, rhs: f32) -> Self {
                Self { $($f: self.$f / rhs),+ }
            }
        }
        impl Neg for $t {
            type Output = Self;
            fn neg(self) -> Self {
                Self { $($f: -self.$f),+ }
            }
        }
    };
}

impl_vec_ops!(Vec2 { x, y });
impl_vec_ops!(Vec3 { x, y, z });
impl_vec_ops!(Vec4 { x, y, z, w });

/// A column-major 4×4 matrix, the workhorse of the vertex shader stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat4 {
    /// Columns of the matrix.
    pub cols: [Vec4; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    /// The identity transform.
    pub const IDENTITY: Self = Self {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from four columns.
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Translation matrix.
    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = Vec4::new(t.x, t.y, t.z, 1.0);
        m
    }

    /// Non-uniform scale matrix.
    pub fn scale(s: Vec3) -> Self {
        Self::from_cols(
            Vec4::new(s.x, 0.0, 0.0, 0.0),
            Vec4::new(0.0, s.y, 0.0, 0.0),
            Vec4::new(0.0, 0.0, s.z, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Right-handed perspective projection.
    ///
    /// `fov_y` is the vertical field of view in radians; depth maps to
    /// `[-1, 1]` clip space (OpenGL convention, matching the paper's
    /// OpenGL-trace-driven pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `near >= far` or `fov_y` is not in `(0, π)`.
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        assert!(near < far, "near plane must be closer than far plane");
        assert!(
            fov_y > 0.0 && fov_y < std::f32::consts::PI,
            "field of view out of range"
        );
        let f = 1.0 / (fov_y * 0.5).tan();
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (far + near) / (near - far), -1.0),
            Vec4::new(0.0, 0.0, (2.0 * far * near) / (near - far), 0.0),
        )
    }

    /// Orthographic projection (used by the 2-D games' sprite pipelines).
    pub fn orthographic(left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32) -> Self {
        let rl = right - left;
        let tb = top - bottom;
        let fne = far - near;
        Self::from_cols(
            Vec4::new(2.0 / rl, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 2.0 / tb, 0.0, 0.0),
            Vec4::new(0.0, 0.0, -2.0 / fne, 0.0),
            Vec4::new(
                -(right + left) / rl,
                -(top + bottom) / tb,
                -(far + near) / fne,
                1.0,
            ),
        )
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Transforms a homogeneous vector.
    pub fn transform(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Transforms a 3-D point (`w = 1`).
    pub fn transform_point(&self, p: Vec3) -> Vec4 {
        self.transform(p.to_point4())
    }
}

impl Mul for Mat4 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        Self {
            cols: [
                self.transform(rhs.cols[0]),
                self.transform(rhs.cols[1]),
                self.transform(rhs.cols[2]),
                self.transform(rhs.cols[3]),
            ],
        }
    }
}

/// Twice the signed area of triangle `(a, b, c)` in screen space.
///
/// Positive for counter-clockwise winding in a Y-up coordinate system.
/// This doubles as the rasterizer's edge-function setup value.
pub fn signed_area2(a: Vec2, b: Vec2, c: Vec2) -> f32 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Edge function: positive when point `p` lies to the left of edge `a→b`.
pub fn edge_function(a: Vec2, b: Vec2, p: Vec2) -> f32 {
    (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-4
    }

    #[test]
    fn vec3_dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn vec3_normalized_unit_length() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!(approx(v.length(), 1.0));
    }

    #[test]
    fn vec3_normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn identity_transform_is_noop() {
        let p = Vec4::new(1.0, 2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY.transform(p), p);
    }

    #[test]
    fn translation_moves_points() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        let p = m.transform_point(Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(p.xyz(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn matrix_multiplication_composes() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::splat(2.0));
        // (t * s) applies the scale first, then the translation.
        let p = (t * s).transform_point(Vec3::new(1.0, 1.0, 1.0)).xyz();
        assert_eq!(p, Vec3::new(3.0, 2.0, 2.0));
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotation_y(std::f32::consts::FRAC_PI_2);
        let p = m.transform_point(Vec3::new(1.0, 0.0, 0.0)).xyz();
        assert!(approx(p.x, 0.0) && approx(p.z, -1.0));
    }

    #[test]
    fn perspective_maps_near_plane_to_minus_one() {
        let m = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 100.0);
        let p = m.transform_point(Vec3::new(0.0, 0.0, -1.0));
        assert!(approx(p.z / p.w, -1.0));
    }

    #[test]
    #[should_panic(expected = "near plane")]
    fn perspective_rejects_inverted_planes() {
        let _ = Mat4::perspective(1.0, 1.0, 10.0, 1.0);
    }

    #[test]
    fn look_at_centers_target() {
        let m = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        );
        let p = m.transform_point(Vec3::ZERO);
        assert!(approx(p.x, 0.0) && approx(p.y, 0.0) && approx(p.z, -5.0));
    }

    #[test]
    fn signed_area_ccw_positive() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        let c = Vec2::new(0.0, 1.0);
        assert!(signed_area2(a, b, c) > 0.0);
        assert!(signed_area2(a, c, b) < 0.0);
    }

    #[test]
    fn edge_function_sign_matches_side() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        assert!(edge_function(a, b, Vec2::new(0.5, 1.0)) > 0.0);
        assert!(edge_function(a, b, Vec2::new(0.5, -1.0)) < 0.0);
    }

    #[test]
    fn orthographic_maps_corners() {
        let m = Mat4::orthographic(0.0, 10.0, 0.0, 10.0, -1.0, 1.0);
        let p = m.transform_point(Vec3::new(10.0, 10.0, 0.0));
        assert!(approx(p.x, 1.0) && approx(p.y, 1.0));
        let q = m.transform_point(Vec3::new(0.0, 0.0, 0.0));
        assert!(approx(q.x, -1.0) && approx(q.y, -1.0));
    }
}
