//! The Tiling Engine's Polygon List Builder: identifies the screen tiles
//! overlapped by each primitive and builds per-tile primitive lists
//! (center of Fig. 1).

use megsim_gfx::draw::Viewport;
use megsim_gfx::geometry::Primitive;

use crate::activity::FrameActivity;
use crate::geometry::TransformedDraw;

/// A primitive bound to its originating draw call.
#[derive(Debug, Clone, Copy)]
pub struct BinnedPrim {
    /// Index of the draw call within the frame.
    pub draw_index: u32,
    /// The screen-space primitive.
    pub prim: Primitive,
}

/// Per-tile primitive lists, in submission order within each tile.
#[derive(Debug, Clone)]
pub struct TileBins {
    /// Flat store of all emitted primitives.
    pub prims: Vec<BinnedPrim>,
    /// For each tile (row-major), indices into `prims`.
    pub bins: Vec<Vec<u32>>,
}

impl TileBins {
    /// Tiles that contain at least one primitive, in row-major order.
    pub fn touched_tiles(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, b)| (i as u32, b.as_slice()))
    }
}

/// Bins every emitted primitive to the tiles its bounding box overlaps
/// (the conservative binning that bbox-based Polygon List Builders use).
pub fn bin_primitives(
    draws: &[TransformedDraw],
    viewport: Viewport,
    activity: &mut FrameActivity,
) -> TileBins {
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); viewport.tile_count() as usize];
    let mut prims = Vec::new();
    for draw in draws {
        for prim in &draw.prims {
            let (min_x, min_y, max_x, max_y) = prim.bounds();
            let Some((tx0, ty0, tx1, ty1)) = viewport.tiles_overlapping(min_x, min_y, max_x, max_y)
            else {
                continue;
            };
            let prim_idx = prims.len() as u32;
            prims.push(BinnedPrim {
                draw_index: draw.geometry.draw_index,
                prim: *prim,
            });
            for ty in ty0..=ty1 {
                for tx in tx0..=tx1 {
                    bins[viewport.tile_index(tx, ty) as usize].push(prim_idx);
                    activity.tile_bin_entries += 1;
                }
            }
        }
    }
    activity.tiles_touched += bins.iter().filter(|b| !b.is_empty()).count() as u64;
    TileBins { prims, bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DrawGeometry;
    use megsim_gfx::geometry::ScreenVertex;
    use megsim_gfx::math::Vec2;
    use megsim_gfx::shader::ShaderId;

    fn sv(x: f32, y: f32) -> ScreenVertex {
        ScreenVertex {
            x,
            y,
            z: 0.5,
            inv_w: 1.0,
            uv: Vec2::default(),
        }
    }

    fn transformed(prims: Vec<Primitive>) -> TransformedDraw {
        TransformedDraw {
            geometry: DrawGeometry {
                draw_index: 0,
                vertex_shader: ShaderId(0),
                vertex_shader_instructions: 1,
                vertex_fetch_addresses: vec![],
                vertices_shaded: 0,
                primitives_assembled: prims.len() as u32,
                primitives_emitted: prims.len() as u32,
            },
            prims,
        }
    }

    #[test]
    fn small_triangle_bins_to_one_tile() {
        let viewport = Viewport::new(128, 128, 32);
        let prim = Primitive {
            v: [sv(2.0, 2.0), sv(10.0, 2.0), sv(2.0, 10.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin_primitives(&[transformed(vec![prim])], viewport, &mut act);
        assert_eq!(act.tile_bin_entries, 1);
        assert_eq!(act.tiles_touched, 1);
        assert_eq!(bins.bins[0], vec![0]);
    }

    #[test]
    fn spanning_triangle_bins_to_multiple_tiles() {
        let viewport = Viewport::new(128, 128, 32);
        // Bbox covers tiles (0,0)..(1,1) = 4 tiles.
        let prim = Primitive {
            v: [sv(10.0, 10.0), sv(50.0, 10.0), sv(10.0, 50.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin_primitives(&[transformed(vec![prim])], viewport, &mut act);
        assert_eq!(act.tile_bin_entries, 4);
        assert_eq!(bins.touched_tiles().count(), 4);
    }

    #[test]
    fn submission_order_is_preserved_within_a_tile() {
        let viewport = Viewport::new(64, 64, 32);
        let a = Primitive {
            v: [sv(1.0, 1.0), sv(5.0, 1.0), sv(1.0, 5.0)],
        };
        let b = Primitive {
            v: [sv(2.0, 2.0), sv(6.0, 2.0), sv(2.0, 6.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin_primitives(&[transformed(vec![a, b])], viewport, &mut act);
        assert_eq!(bins.bins[0], vec![0, 1]);
    }

    #[test]
    fn offscreen_primitive_is_ignored() {
        let viewport = Viewport::new(64, 64, 32);
        let prim = Primitive {
            v: [sv(-50.0, -50.0), sv(-40.0, -50.0), sv(-50.0, -40.0)],
        };
        let mut act = FrameActivity::new(1, 1);
        let bins = bin_primitives(&[transformed(vec![prim])], viewport, &mut act);
        assert_eq!(act.tile_bin_entries, 0);
        assert!(bins.prims.is_empty());
    }
}
