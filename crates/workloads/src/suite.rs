//! The Table II benchmark set: eight synthetic games mirroring the
//! paper's commercial Android workloads in frame counts, shader counts,
//! 2D/3D mix and phase structure.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use megsim_gfx::draw::BlendMode;
use megsim_gfx::geometry::Mesh;
use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::TextureDesc;
use megsim_mem::AddressSpace;

use crate::game::{GameType, ObjectClass, SegmentTemplate, Workload, WorkloadSpec};
use crate::meshes;

/// Static description of one Table II row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkInfo {
    /// Full game name.
    pub name: &'static str,
    /// Short alias (`asp`, `bbr1`, …).
    pub alias: &'static str,
    /// Genre description from Table II.
    pub description: &'static str,
    /// 2D or 3D.
    pub game_type: GameType,
    /// Google Play downloads bracket (millions), from Table II.
    pub downloads_millions: &'static str,
    /// Frames in the evaluated sequence (Table II).
    pub frames: usize,
    /// Number of vertex shaders (Table II).
    pub vertex_shaders: usize,
    /// Number of fragment shaders (Table II).
    pub fragment_shaders: usize,
    /// Number of distinct gameplay segment templates (controls the
    /// phase richness of the synthetic script).
    gameplay_templates: usize,
    /// Overall object-count multiplier for this game.
    intensity: f64,
}

/// The eight benchmarks of Table II.
pub const BENCHMARKS: [BenchmarkInfo; 8] = [
    BenchmarkInfo {
        name: "Asphalt 9: Legends",
        alias: "asp",
        description: "Racing",
        game_type: GameType::ThreeD,
        downloads_millions: "50-100",
        frames: 4000,
        vertex_shaders: 42,
        fragment_shaders: 45,
        gameplay_templates: 11,
        intensity: 1.3,
    },
    BenchmarkInfo {
        name: "Beach Buggy Racing",
        alias: "bbr1",
        description: "Racing",
        game_type: GameType::ThreeD,
        downloads_millions: "100-500",
        frames: 2500,
        vertex_shaders: 73,
        fragment_shaders: 62,
        gameplay_templates: 9,
        intensity: 1.1,
    },
    BenchmarkInfo {
        name: "Beach Buggy Racing",
        alias: "bbr2",
        description: "Racing",
        game_type: GameType::ThreeD,
        downloads_millions: "100-500",
        frames: 4000,
        vertex_shaders: 66,
        fragment_shaders: 59,
        gameplay_templates: 10,
        intensity: 1.1,
    },
    BenchmarkInfo {
        name: "Hill Climb Racing",
        alias: "hcr",
        description: "Platforms",
        game_type: GameType::TwoD,
        downloads_millions: "500-1000",
        frames: 2000,
        vertex_shaders: 5,
        fragment_shaders: 5,
        gameplay_templates: 6,
        intensity: 0.8,
    },
    BenchmarkInfo {
        name: "Hot Wheels",
        alias: "hwh",
        description: "Racing",
        game_type: GameType::ThreeD,
        downloads_millions: "50-100",
        frames: 4000,
        vertex_shaders: 30,
        fragment_shaders: 30,
        gameplay_templates: 8,
        intensity: 1.2,
    },
    BenchmarkInfo {
        name: "Jetpack Joyride",
        alias: "jjo",
        description: "Side-scrolling endless runner",
        game_type: GameType::TwoD,
        downloads_millions: "100-500",
        frames: 5000,
        vertex_shaders: 4,
        fragment_shaders: 5,
        gameplay_templates: 7,
        intensity: 0.9,
    },
    BenchmarkInfo {
        name: "Plants vs Zombies",
        alias: "pvz",
        description: "Tower defense",
        game_type: GameType::TwoD,
        downloads_millions: "100-500",
        frames: 5000,
        vertex_shaders: 4,
        fragment_shaders: 5,
        gameplay_templates: 8,
        intensity: 1.0,
    },
    BenchmarkInfo {
        name: "Spider-Man Unlimited",
        alias: "spd",
        description: "Side-scrolling endless runner",
        game_type: GameType::ThreeD,
        downloads_millions: "1-5",
        frames: 5000,
        vertex_shaders: 16,
        fragment_shaders: 26,
        gameplay_templates: 9,
        intensity: 1.15,
    },
];

/// Builds one benchmark's workload.
///
/// `frame_scale` multiplies the Table II frame count (1.0 = paper
/// length); `seed` perturbs the script deterministically.
pub fn build(info: &BenchmarkInfo, frame_scale: f64, seed: u64) -> Workload {
    let frames = ((info.frames as f64 * frame_scale).round() as usize).max(16);
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_alias(info.alias));
    let shaders = build_shaders(info, &mut rng);
    let textures = build_textures(info);
    let mesh_lib = build_meshes();
    let templates = build_templates(info, &mesh_lib, &textures, &mut rng);
    let timeline = build_timeline(info, frames, templates.len(), &mut rng);
    Workload::new(WorkloadSpec {
        name: info.name.to_string(),
        alias: info.alias.to_string(),
        game_type: info.game_type,
        shaders,
        textures,
        meshes: mesh_lib,
        templates,
        timeline,
        seed: seed ^ hash_alias(info.alias),
        noise: 0.04,
        spike_probability: 0.02,
        transition_boost: 3.0,
    })
}

/// Builds the whole Table II suite at the given frame scale.
pub fn suite(frame_scale: f64, seed: u64) -> Vec<Workload> {
    BENCHMARKS
        .iter()
        .map(|info| build(info, frame_scale, seed))
        .collect()
}

/// Looks up a benchmark by alias and builds it.
pub fn by_alias(alias: &str, frame_scale: f64, seed: u64) -> Option<Workload> {
    BENCHMARKS
        .iter()
        .find(|b| b.alias == alias)
        .map(|info| build(info, frame_scale, seed))
}

fn hash_alias(alias: &str) -> u64 {
    alias.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

fn build_shaders(info: &BenchmarkInfo, rng: &mut SmallRng) -> ShaderTable {
    let mut table = ShaderTable::new();
    for i in 0..info.vertex_shaders {
        // 3-D games carry heavier vertex work (skinning, lighting).
        let heavy = matches!(info.game_type, GameType::ThreeD);
        let base = if heavy { 14 } else { 8 };
        let alu = base + ((i * 11) % 34) as u32 + rng.gen_range(0..4);
        table.add(ShaderProgram::vertex(i as u32, format!("vs_{i}"), alu));
    }
    for j in 0..info.fragment_shaders {
        let alu = 5 + ((j * 7) % 24) as u32 + rng.gen_range(0..3);
        let samples = match j % 5 {
            0 => vec![TextureFilter::Bilinear],
            1 => vec![TextureFilter::Linear],
            2 => vec![TextureFilter::Bilinear, TextureFilter::Trilinear],
            3 => vec![TextureFilter::Nearest],
            _ => vec![], // flat-colored (UI, particles)
        };
        table.add(ShaderProgram::fragment(
            j as u32,
            format!("fs_{j}"),
            alu,
            samples,
        ));
    }
    table
}

fn build_textures(info: &BenchmarkInfo) -> Vec<TextureDesc> {
    let count = (info.fragment_shaders / 3).clamp(3, 12) as u32;
    (0..count)
        .map(|i| {
            let size = 64u32 << (i % 3); // 64, 128, 256
            TextureDesc::new(
                i,
                size,
                size,
                4,
                AddressSpace::TEXTURE_BASE + u64::from(i) * 0x10_0000,
            )
        })
        .collect()
}

fn build_meshes() -> Vec<Arc<Mesh>> {
    // The library is identical for every benchmark and every seed, so
    // it is built once per process and shared: every workload's draw
    // calls then point at the *same* `Arc<Mesh>` allocations, which
    // also lets downstream per-mesh memoization (frame fingerprints,
    // geometry scratch) hit across workloads.
    static LIBRARY: std::sync::OnceLock<Vec<Arc<Mesh>>> = std::sync::OnceLock::new();
    LIBRARY
        .get_or_init(|| {
            // Bases are staggered by a non-power-of-two stride so
            // distinct meshes spread over the vertex cache's sets
            // instead of aliasing.
            let base = |i: u64| AddressSpace::VERTEX_BASE + i * 0x10C0;
            vec![
                meshes::unit_quad(base(0)),  // 0: sprite
                meshes::unit_cube(base(1)),  // 1: crate/vehicle body
                meshes::grid(6, 6, base(2)), // 2: terrain/road strip
                meshes::disc(8, base(3)),    // 3: particles, coins
                meshes::gem(6, base(4)),     // 4: character blob
            ]
        })
        .clone()
}

fn build_templates(
    info: &BenchmarkInfo,
    _mesh_lib: &[Arc<Mesh>],
    textures: &[TextureDesc],
    rng: &mut SmallRng,
) -> Vec<SegmentTemplate> {
    let k = info.gameplay_templates;
    let max_shaders = info.vertex_shaders.max(info.fragment_shaders);
    let classes_per_template = max_shaders.div_ceil(k).clamp(3, 12);
    let is_3d = matches!(info.game_type, GameType::ThreeD);
    let mut templates = Vec::with_capacity(k + 1);

    // Menu template: a few big flat UI sprites, cheap shaders.
    let menu_classes = (0..3)
        .map(|c| ObjectClass {
            mesh: 0,
            vertex_shader: ShaderId((c % info.vertex_shaders) as u32),
            fragment_shader: ShaderId((c % info.fragment_shaders) as u32),
            texture: Some(c % textures.len()),
            blend: BlendMode::AlphaBlend,
            depth_test: false,
            base_count: 3.0 * info.intensity,
            count_amplitude: 0.5,
            wobble_freq: 0.2,
            size: if is_3d { 1.2 } else { 0.08 },
            tilt: 0.0,
            distance: 6.0,
        })
        .collect();
    templates.push(SegmentTemplate {
        label: "menu".into(),
        classes: menu_classes,
    });

    // Gameplay templates: disjoint-ish shader subsets so phases are
    // distinguishable in VSCV/FSCV space.
    let mut class_counter = 0usize;
    for tpl in 0..k {
        let mut classes = Vec::with_capacity(classes_per_template + 1);
        if is_3d {
            // Environment strip (road/terrain) — always present, varies
            // in size per template (straight vs turn vs tunnel).
            classes.push(ObjectClass {
                mesh: 2,
                vertex_shader: ShaderId((class_counter % info.vertex_shaders) as u32),
                fragment_shader: ShaderId((class_counter % info.fragment_shaders) as u32),
                texture: Some(class_counter % textures.len()),
                blend: BlendMode::Opaque,
                depth_test: true,
                base_count: 1.0,
                count_amplitude: 0.0,
                wobble_freq: 0.0,
                size: rng.gen_range(1.2..1.9),
                tilt: -1.1,
                distance: rng.gen_range(7.0..10.0),
            });
            class_counter += 1;
        }
        for _ in 0..classes_per_template {
            let mesh = if is_3d {
                [1usize, 3, 4, 1, 4][class_counter % 5]
            } else {
                [0usize, 0, 3, 0][class_counter % 4]
            };
            let blended = class_counter % 6 == 5;
            classes.push(ObjectClass {
                mesh,
                vertex_shader: ShaderId((class_counter % info.vertex_shaders) as u32),
                // `c % q` covers every fragment shader while `c / q`
                // decorrelates the pairing on later laps of the pool.
                fragment_shader: ShaderId(
                    ((class_counter + class_counter / info.fragment_shaders)
                        % info.fragment_shaders) as u32,
                ),
                texture: (class_counter % 7 != 6).then_some(class_counter % textures.len()),
                blend: if blended {
                    BlendMode::Additive
                } else {
                    BlendMode::Opaque
                },
                depth_test: is_3d,
                base_count: rng.gen_range(2.0..7.0) * info.intensity,
                count_amplitude: rng.gen_range(0.3..1.2),
                wobble_freq: rng.gen_range(0.2..1.2),
                size: if is_3d {
                    rng.gen_range(0.35..0.95)
                } else {
                    rng.gen_range(0.03..0.08)
                },
                tilt: 0.0,
                distance: rng.gen_range(6.0..20.0),
            });
            class_counter += 1;
        }
        templates.push(SegmentTemplate {
            label: format!("gameplay_{tpl}"),
            classes,
        });
    }
    templates
}

fn build_timeline(
    _info: &BenchmarkInfo,
    frames: usize,
    template_count: usize,
    rng: &mut SmallRng,
) -> Vec<(usize, usize)> {
    let k = template_count - 1; // template 0 is the menu
    let mut timeline = Vec::new();
    let menu_len = (frames / 30).max(4);
    timeline.push((0usize, menu_len));
    let mut remaining = frames.saturating_sub(menu_len);
    // Gameplay loop: rotate through templates with jittered lengths and
    // the occasional pause-menu, so the same phase recurs many times.
    let base_len = (frames / 45).max(8);
    let mut order: Vec<usize> = (1..=k).collect();
    let mut cursor = 0usize;
    while remaining > 0 {
        if cursor % (k + 3) == k + 2 {
            // Pause menu between laps/levels.
            let len = (base_len / 3).max(2).min(remaining);
            timeline.push((0, len));
            remaining -= len;
        } else {
            // `% k == 0` rather than `is_multiple_of` (MSRV 1.75).
            #[allow(clippy::manual_is_multiple_of)]
            if cursor % k == 0 && rng.gen_bool(0.3) {
                // Occasionally shuffle two phases (different lap lines,
                // different waves) so the loop is not perfectly periodic.
                let a = rng.gen_range(0..k);
                let b = rng.gen_range(0..k);
                order.swap(a, b);
            }
            let tpl = order[cursor % k];
            let len = ((base_len as f64 * rng.gen_range(0.6..1.5)) as usize)
                .max(4)
                .min(remaining);
            timeline.push((tpl, len));
            remaining -= len;
        }
        cursor += 1;
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_benchmarks_matching_table2() {
        let workloads = suite(0.01, 7);
        assert_eq!(workloads.len(), 8);
        for (w, info) in workloads.iter().zip(&BENCHMARKS) {
            assert_eq!(w.alias, info.alias);
            assert_eq!(w.shaders().vertex_count(), info.vertex_shaders);
            assert_eq!(w.shaders().fragment_count(), info.fragment_shaders);
            assert_eq!(w.game_type, info.game_type);
        }
    }

    #[test]
    fn frame_scale_controls_length() {
        let full = build(&BENCHMARKS[3], 1.0, 1); // hcr: 2000 frames
        let tenth = build(&BENCHMARKS[3], 0.1, 1);
        assert_eq!(full.frames(), 2000);
        assert_eq!(tenth.frames(), 200);
    }

    #[test]
    fn by_alias_finds_benchmarks() {
        assert!(by_alias("bbr1", 0.01, 0).is_some());
        assert!(by_alias("nope", 0.01, 0).is_none());
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = build(&BENCHMARKS[0], 0.01, 123);
        let b = build(&BENCHMARKS[0], 0.01, 123);
        assert_eq!(a.frame(5).draws.len(), b.frame(5).draws.len());
        let c = build(&BENCHMARKS[0], 0.01, 124);
        // A different seed perturbs the script (counts may coincide, the
        // timeline should not be identical in every segment).
        let differs = (0..a.frames().min(c.frames()))
            .any(|i| a.frame(i).draws.len() != c.frame(i).draws.len());
        assert!(differs);
    }

    #[test]
    fn all_shaders_are_exercised_somewhere() {
        for info in &BENCHMARKS {
            let w = build(info, 0.01, 3);
            let mut vs_used = vec![false; info.vertex_shaders];
            let mut fs_used = vec![false; info.fragment_shaders];
            for t in w.templates() {
                for c in &t.classes {
                    vs_used[c.vertex_shader.0 as usize] = true;
                    fs_used[c.fragment_shader.0 as usize] = true;
                }
            }
            let vs_cov = vs_used.iter().filter(|&&u| u).count() as f64 / info.vertex_shaders as f64;
            let fs_cov =
                fs_used.iter().filter(|&&u| u).count() as f64 / info.fragment_shaders as f64;
            assert!(vs_cov > 0.9, "{}: vs coverage {vs_cov}", info.alias);
            assert!(fs_cov > 0.75, "{}: fs coverage {fs_cov}", info.alias);
        }
    }

    #[test]
    fn timeline_revisits_templates() {
        let w = build(&BENCHMARKS[1], 0.5, 5);
        let mut visits = vec![0usize; w.templates().len()];
        for s in w.timeline() {
            visits[s.template] += 1;
        }
        // The menu and most gameplay templates recur.
        assert!(visits[0] >= 2, "menu visits = {}", visits[0]);
        let recurring = visits.iter().filter(|&&v| v >= 2).count();
        assert!(recurring >= w.templates().len() / 2);
    }

    #[test]
    fn frames_have_work() {
        let w = build(&BENCHMARKS[5], 0.02, 9);
        for i in 0..w.frames() {
            let f = w.frame(i);
            assert!(!f.draws.is_empty(), "frame {i} is empty");
        }
    }
}
