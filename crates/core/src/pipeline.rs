//! The MEGsim selection pipeline: characteristic vectors → normalization
//! → k-means/BIC search → cluster representatives (paper §III).

use serde::{Deserialize, Serialize};

use megsim_cluster::{search_clusters, SearchConfig};

use crate::features::{CharacterizationConfig, FeatureMatrix};
use crate::normalize::{normalize, GroupWeights};

/// Full configuration of the MEGsim methodology.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MegsimConfig {
    /// Characterization options (§III-B).
    pub characterization: CharacterizationConfig,
    /// Group weights (§III-C).
    pub weights: GroupWeights,
    /// Cluster-search options (§III-E/F).
    pub search: SearchConfig,
}

impl MegsimConfig {
    /// The paper's exact configuration: T = 0.85 and the strict
    /// "stop at the first BIC decrease" rule of §III-F.
    pub fn paper() -> Self {
        let mut cfg = Self::default();
        cfg.search = cfg.search.with_patience(1);
        cfg
    }

    /// Sets the k-means/BIC seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.search.seed = seed;
        self
    }
}

/// One selected representative frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Representative {
    /// Frame index within the sequence.
    pub frame_index: usize,
    /// Number of frames in the representative's cluster — the scaling
    /// factor applied to its simulated statistics.
    pub cluster_size: usize,
}

/// Output of the selection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// One representative per cluster, in cluster order.
    pub representatives: Vec<Representative>,
    /// Cluster label of every frame.
    pub labels: Vec<usize>,
    /// BIC score of every evaluated `k` (diagnostics / Fig. 6 dumps).
    pub bic_scores: Vec<f64>,
}

impl Selection {
    /// Number of clusters (= frames MEGsim will simulate).
    pub fn k(&self) -> usize {
        self.representatives.len()
    }

    /// The paper's Table III "reduction factor": total frames divided by
    /// simulated frames.
    pub fn reduction_factor(&self) -> f64 {
        self.labels.len() as f64 / self.k() as f64
    }
}

/// Runs normalization + clustering + representative selection on a raw
/// feature matrix.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn select_representatives(matrix: &FeatureMatrix, config: &MegsimConfig) -> Selection {
    assert!(matrix.frames() > 0, "cannot select from zero frames");
    let data = normalize(matrix, &config.weights);
    let found = search_clusters(&data, &config.search);
    let reps = found.clustering.representatives(&data);
    let sizes = found.clustering.cluster_sizes();
    let representatives = reps
        .into_iter()
        .zip(sizes)
        .map(|(frame_index, cluster_size)| Representative {
            frame_index,
            cluster_size,
        })
        .collect();
    Selection {
        representatives,
        labels: found.clustering.labels,
        bic_scores: found.bic_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic two-phase feature matrix: 30 "menu" frames and 30
    /// "gameplay" frames with very different shader activity.
    fn two_phase_matrix() -> FeatureMatrix {
        let mut rows = Vec::new();
        for i in 0..60 {
            let jitter = (i as f64 * 0.7).sin() * 5.0;
            if i % 2 == 0 {
                rows.push(vec![100.0 + jitter, 0.0, 500.0 + jitter, 0.0, 50.0]);
            } else {
                rows.push(vec![0.0, 900.0 + jitter, 0.0, 4000.0 + jitter, 300.0]);
            }
        }
        FeatureMatrix::from_rows(rows, 2, 2)
    }

    #[test]
    fn separates_the_two_phases() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        // T = 0.85 may refine each phase into sub-clusters, but no
        // cluster may mix the two phases (they are far apart).
        assert!(
            sel.k() >= 2 && sel.k() <= 8,
            "k = {} bic = {:?}",
            sel.k(),
            sel.bic_scores
        );
        assert_eq!(sel.labels.len(), 60);
        let sizes: Vec<usize> = sel.representatives.iter().map(|r| r.cluster_size).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        for c in 0..sel.k() {
            let members: Vec<usize> = (0..60).filter(|&i| sel.labels[i] == c).collect();
            assert!(
                members.iter().all(|m| m % 2 == members[0] % 2),
                "cluster {c} mixes phases: {members:?}"
            );
        }
    }

    #[test]
    fn representatives_belong_to_their_clusters() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        for (c, rep) in sel.representatives.iter().enumerate() {
            assert_eq!(sel.labels[rep.frame_index], c);
        }
    }

    #[test]
    fn reduction_factor_is_n_over_k() {
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::default());
        let expected = 60.0 / sel.k() as f64;
        assert!((sel.reduction_factor() - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = two_phase_matrix();
        let a = select_representatives(&m, &MegsimConfig::default().with_seed(5));
        let b = select_representatives(&m, &MegsimConfig::default().with_seed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn golden_selection_on_the_paper_shape_workload() {
        // Pins the exact (k, labels, representatives) the §III-F search
        // chooses on the synthetic two-phase workload under the paper's
        // configuration. The clustering fast path guarantees bit-
        // identity with the seed implementation, so these values may
        // only change when the methodology itself (seeding, stop rule,
        // threshold) deliberately changes — never from an optimization.
        let sel = select_representatives(&two_phase_matrix(), &MegsimConfig::paper().with_seed(42));
        assert_eq!(sel.k(), 7);
        let expected_period = [5, 2, 4, 2, 5, 6, 0, 1, 0, 3, 4, 2, 4, 3, 0, 1, 0, 6];
        let expected_labels: Vec<usize> = (0..60).map(|i| expected_period[i % 18]).collect();
        assert_eq!(sel.labels, expected_labels);
        let reps: Vec<(usize, usize)> = sel
            .representatives
            .iter()
            .map(|r| (r.frame_index, r.cluster_size))
            .collect();
        assert_eq!(
            reps,
            vec![
                (8, 12),
                (51, 6),
                (39, 11),
                (45, 6),
                (12, 10),
                (54, 8),
                (59, 7)
            ]
        );
        assert_eq!(sel.bic_scores.len(), 22);
        let selected = sel.bic_scores[sel.k() - 1];
        assert!(
            (selected - 3048.1742055005957).abs() < 1e-9,
            "selected BIC drifted: {selected}"
        );
    }

    #[test]
    fn selection_is_identical_across_thread_counts() {
        // Full pipeline (normalize → warm search → representatives) at
        // 1/2/8 threads: the bit-identity contract end to end.
        let m = two_phase_matrix();
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            megsim_exec::set_threads(threads);
            runs.push(select_representatives(
                &m,
                &MegsimConfig::default().with_seed(42),
            ));
        }
        megsim_exec::set_threads(0);
        for pair in runs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }
}
