//! Golden multi-GPU regression tests: exact cycles, L2 hits, DRAM row
//! hits and interconnect transfers for the fixed `golden.rs` scene
//! across every (dispatch, topology) pair, all three rendering modes,
//! and a partial-tile viewport under split-frame dispatch — plus the
//! N = 1 oracle that pins the degenerate rig bit-identical to the
//! single-GPU pipeline (and, under `--features reference`, to the
//! pre-optimization reference model).

use std::sync::Arc;

use megsim_funcsim::{RenderConfig, RenderMode, Renderer};
use megsim_gfx::draw::{BlendMode, DrawCall, Frame, Viewport};
use megsim_gfx::geometry::{Mesh, Vertex};
use megsim_gfx::math::{Mat4, Vec3};
use megsim_gfx::shader::{ShaderId, ShaderProgram, ShaderTable, TextureFilter};
use megsim_gfx::texture::TextureDesc;
use megsim_mem::Topology;
use megsim_timing::{
    DispatchMode, FrameStats, Gpu, GpuConfig, MultiGpu, MultiGpuConfig, MultiGpuReport,
};

fn shaders() -> ShaderTable {
    let mut t = ShaderTable::new();
    t.add(ShaderProgram::vertex(0, "vs", 10));
    t.add(ShaderProgram::fragment(
        0,
        "fs_tex",
        7,
        vec![TextureFilter::Bilinear],
    ));
    t.add(ShaderProgram::fragment(1, "fs_flat", 3, vec![]));
    t
}

fn corner(x: f32, y: f32, u: f32, v: f32) -> Vertex {
    Vertex {
        uv: megsim_gfx::math::Vec2::new(u, v),
        ..Vertex::at(Vec3::new(x, y, 0.0))
    }
}

fn quad(scale: f32, base_address: u64) -> Arc<Mesh> {
    Arc::new(Mesh::new(
        vec![
            corner(-scale, -scale, 0.0, 0.0),
            corner(scale, -scale, 1.0, 0.0),
            corner(scale, scale, 1.0, 1.0),
            corner(-scale, scale, 0.0, 1.0),
        ],
        vec![0, 1, 2, 0, 2, 3],
        base_address,
    ))
}

/// The `golden.rs` scene: a textured quad under an opaque overlay plus
/// a translucent sprite, twice (second frame against warm caches).
fn scene() -> Vec<Frame> {
    let mut frame = Frame::new();
    frame.draws.push(DrawCall {
        mesh: quad(0.7, 0x4000),
        transform: Mat4::translation(Vec3::new(0.0, 0.0, 0.3)),
        vertex_shader: ShaderId(0),
        fragment_shader: ShaderId(0),
        texture: Some(TextureDesc::new(0, 64, 64, 4, 0x8000)),
        blend: BlendMode::Opaque,
        depth_test: true,
    });
    frame.draws.push(DrawCall {
        mesh: quad(0.35, 0x6000),
        transform: Mat4::translation(Vec3::new(0.1, -0.1, -0.2)),
        vertex_shader: ShaderId(0),
        fragment_shader: ShaderId(1),
        texture: None,
        blend: BlendMode::Opaque,
        depth_test: true,
    });
    frame.draws.push(DrawCall {
        mesh: quad(0.2, 0x7000),
        transform: Mat4::translation(Vec3::new(-0.4, 0.4, -0.4)),
        vertex_shader: ShaderId(0),
        fragment_shader: ShaderId(1),
        texture: None,
        blend: BlendMode::AlphaBlend,
        depth_test: false,
    });
    vec![frame.clone(), frame]
}

fn run_multi(
    mode: RenderMode,
    viewport: Viewport,
    multi: MultiGpuConfig,
) -> (Vec<FrameStats>, MultiGpuReport) {
    let mut cfg = GpuConfig::small(viewport.width, viewport.height);
    cfg.viewport = viewport;
    cfg.render_mode = mode;
    let renderer = Renderer::new(RenderConfig { viewport, mode });
    let shaders = shaders();
    let mut rig = MultiGpu::new(cfg, multi);
    let stats = scene()
        .iter()
        .map(|f| rig.simulate_frame(&renderer.render_frame(f, &shaders), &shaders))
        .collect();
    (stats, rig.report())
}

/// `(cycles, L2 hits, DRAM row hits)` per frame, then the sequence's
/// total interconnect line transfers.
fn fingerprint(stats: &[FrameStats], report: &MultiGpuReport) -> (Vec<(u64, u64, u64)>, u64) {
    (
        stats
            .iter()
            .map(|s| (s.cycles, s.memory.l2.hits, s.memory.dram.row_hits))
            .collect(),
        report.transfers(),
    )
}

fn pin(mode: RenderMode, viewport: Viewport, multi: MultiGpuConfig) -> (Vec<(u64, u64, u64)>, u64) {
    let (stats, report) = run_multi(mode, viewport, multi);
    fingerprint(&stats, &report)
}

const VIEW_128: Viewport = Viewport {
    width: 128,
    height: 128,
    tile_size: 32,
};

/// 33×33 at 16-px tiles: a 3×3 tile grid whose right/bottom edge tiles
/// are 1 px wide/tall — split-frame bands end mid-row on partial tiles.
const VIEW_33: Viewport = Viewport {
    width: 33,
    height: 33,
    tile_size: 16,
};

fn cfg2(dispatch: DispatchMode, topology: Topology) -> MultiGpuConfig {
    MultiGpuConfig::new(2, dispatch, topology)
}

#[test]
fn golden_multi_gpu_tbr() {
    use DispatchMode::{AlternateFrame, SplitFrame};
    // AFR/private: both frames are cold (each GPU's first frame), so
    // the per-frame counters repeat; frame 1 additionally pays the
    // 1024-line scan-out on GPU 1's link.
    assert_eq!(
        pin(
            RenderMode::TileBased,
            VIEW_128,
            cfg2(AlternateFrame, Topology::Private)
        ),
        (vec![(22662, 971, 724), (31054, 971, 724)], 1024),
        "pinned TBR AFR/private counters changed"
    );
    // AFR/shared: GPU 1's frame queues behind GPU 0's DRAM traffic in
    // the contended hierarchy (frame-granular round-robin), trading
    // row-buffer locality for L2 reuse of the shared polygon lists.
    assert_eq!(
        pin(
            RenderMode::TileBased,
            VIEW_128,
            cfg2(AlternateFrame, Topology::Shared)
        ),
        (vec![(22662, 971, 724), (61790, 1220, 345)], 1024),
        "pinned TBR AFR/shared counters changed"
    );
    // SFR: the band split roughly halves raster time per frame; the
    // worker GPU ships its band's visible pixels (676 lines over the
    // sequence).
    assert_eq!(
        pin(
            RenderMode::TileBased,
            VIEW_128,
            cfg2(SplitFrame, Topology::Private)
        ),
        (vec![(15884, 919, 838), (14640, 440, 508)], 676),
        "pinned TBR SFR/private counters changed"
    );
    assert_eq!(
        pin(
            RenderMode::TileBased,
            VIEW_128,
            cfg2(SplitFrame, Topology::Shared)
        ),
        (vec![(25566, 1055, 724), (24760, 516, 443)], 676),
        "pinned TBR SFR/shared counters changed"
    );
}

#[test]
fn golden_multi_gpu_tbdr() {
    use DispatchMode::{AlternateFrame, SplitFrame};
    assert_eq!(
        pin(
            RenderMode::TileBasedDeferred,
            VIEW_128,
            cfg2(AlternateFrame, Topology::Shared)
        ),
        (vec![(20579, 671, 668), (56618, 896, 346)], 1024),
        "pinned TBDR AFR/shared counters changed"
    );
    // HSR culls occluded fragments before shading, so the worker band
    // ships fewer visible pixels than TBR (586 vs 676 lines).
    assert_eq!(
        pin(
            RenderMode::TileBasedDeferred,
            VIEW_128,
            cfg2(SplitFrame, Topology::Private)
        ),
        (vec![(13725, 706, 693), (13452, 223, 456)], 586),
        "pinned TBDR SFR/private counters changed"
    );
}

#[test]
fn golden_multi_gpu_imr() {
    use DispatchMode::{AlternateFrame, SplitFrame};
    // IMR is memory-bound: sharing the hierarchy serializes GPU 1's
    // stream behind GPU 0's, more than doubling frame 1's latency.
    assert_eq!(
        pin(
            RenderMode::Immediate,
            VIEW_128,
            cfg2(AlternateFrame, Topology::Shared)
        ),
        (vec![(53352, 6072, 113), (123542, 6426, 10)], 1024),
        "pinned IMR AFR/shared counters changed"
    );
    // An IMR trace is one whole-viewport tile, so split-frame dispatch
    // degenerates to the display GPU rasterizing everything (geometry
    // still duplicated — the extra L2 hits) with zero transfers.
    assert_eq!(
        pin(
            RenderMode::Immediate,
            VIEW_128,
            cfg2(SplitFrame, Topology::Shared)
        ),
        (vec![(53352, 6078, 113), (62270, 6375, 10)], 0),
        "pinned IMR SFR/shared counters changed"
    );
}

/// Split-frame over the 33×33/16-px viewport: 9 tiles (4 full, 4 edge,
/// 1 corner) split 5/4 at N = 2 and 3/2/2/2 at N = 4 — bands end on
/// partial tiles and the worker GPUs ship ragged pixel counts.
#[test]
fn golden_multi_gpu_partial_tiles_sfr() {
    for (n, expect) in [
        (2, (vec![(4022, 197, 86), (2240, 12, 38)], 48)),
        (4, (vec![(3926, 230, 86), (1800, 24, 38)], 72)),
    ] {
        let multi = MultiGpuConfig::new(n, DispatchMode::SplitFrame, Topology::Shared);
        assert_eq!(
            pin(RenderMode::TileBased, VIEW_33, multi),
            expect,
            "pinned 33×33/16px SFR counters changed at N={n}"
        );
    }
}

/// The N = 1 oracle: a single-GPU rig is bit-identical to [`Gpu`] in
/// both dispatch modes and both topologies — every frame stat, the
/// final clock, and zero interconnect traffic.
#[test]
fn single_gpu_rig_matches_gpu_oracle() {
    let modes = [
        RenderMode::TileBased,
        RenderMode::TileBasedDeferred,
        RenderMode::Immediate,
    ];
    for mode in modes {
        for viewport in [VIEW_128, VIEW_33] {
            let mut cfg = GpuConfig::small(viewport.width, viewport.height);
            cfg.viewport = viewport;
            cfg.render_mode = mode;
            let renderer = Renderer::new(RenderConfig { viewport, mode });
            let shaders = shaders();
            let mut gpu = Gpu::new(cfg);
            let base: Vec<FrameStats> = scene()
                .iter()
                .map(|f| gpu.simulate_frame(&renderer.render_frame(f, &shaders), &shaders))
                .collect();
            for dispatch in [DispatchMode::AlternateFrame, DispatchMode::SplitFrame] {
                for topology in [Topology::Shared, Topology::Private] {
                    let multi = MultiGpuConfig::new(1, dispatch, topology);
                    let (stats, report) = run_multi(mode, viewport, multi);
                    assert_eq!(stats, base, "{mode:?} {dispatch:?} {topology:?} N=1");
                    assert_eq!(report.transfers(), 0);
                    assert_eq!(report.bytes(), 0);
                }
            }
        }
    }
}

/// Topology invariants that hold for any scene: AFR transfer volume is
/// exactly the off-display frames' framebuffers, and SFR transfer
/// volume is exactly the worker bands' visible pixels.
#[test]
fn transfer_accounting_is_exact() {
    let (stats, report) = run_multi(
        RenderMode::TileBased,
        VIEW_128,
        cfg2(DispatchMode::AlternateFrame, Topology::Private),
    );
    // Frame 1 of 2 ran on GPU 1: one full 128×128×4-byte scan-out.
    assert_eq!(report.bytes(), 128 * 128 * 4);
    assert_eq!(report.frames_per_gpu, vec![1, 1]);
    assert_eq!(stats.len(), 2);

    let (stats, report) = run_multi(
        RenderMode::TileBased,
        VIEW_128,
        cfg2(DispatchMode::SplitFrame, Topology::Private),
    );
    // SFR ships at most the frame's visible pixels per frame from the
    // single worker GPU.
    let total_px: u64 = stats
        .iter()
        .map(|s| s.color_buffer_accesses + s.depth_buffer_accesses)
        .sum();
    assert!(report.bytes() > 0);
    assert!(report.bytes() <= total_px * 4);
}

#[cfg(feature = "reference")]
mod reference_oracle {
    use super::*;
    use megsim_timing::ReferenceGpu;

    /// The degenerate rig agrees with the pre-optimization scalar
    /// model end to end: N = 1 rig ≡ `Gpu` ≡ `ReferenceGpu`.
    #[test]
    fn single_gpu_rig_matches_reference_model() {
        let modes = [
            RenderMode::TileBased,
            RenderMode::TileBasedDeferred,
            RenderMode::Immediate,
        ];
        for mode in modes {
            let viewport = VIEW_128;
            let mut cfg = GpuConfig::small(viewport.width, viewport.height);
            cfg.render_mode = mode;
            let renderer = Renderer::new(RenderConfig { viewport, mode });
            let shaders = shaders();
            let mut reference = ReferenceGpu::new(cfg.clone());
            let mut rig = MultiGpu::new(cfg, MultiGpuConfig::single());
            for frame in scene() {
                let trace = renderer.render_frame(&frame, &shaders);
                let want = reference.simulate_frame(&trace, &shaders);
                let got = rig.simulate_frame(&trace, &shaders);
                assert_eq!(got, want, "{mode:?} N=1 rig vs reference model");
            }
            assert_eq!(rig.now(), reference.now(), "{mode:?} final clock");
        }
    }

    /// Private-topology AFR at N = 2 replays each GPU's frame stream on
    /// an independently-driven reference model: the rig's per-frame
    /// counters must match the reference GPU that owns the frame
    /// (cycles additionally carry the rig's interconnect stall).
    #[test]
    fn afr_private_matches_per_gpu_reference_streams() {
        let viewport = VIEW_128;
        let mode = RenderMode::TileBased;
        let mut cfg = GpuConfig::small(viewport.width, viewport.height);
        cfg.render_mode = mode;
        let renderer = Renderer::new(RenderConfig { viewport, mode });
        let shaders = shaders();
        let traces: Vec<_> = scene()
            .iter()
            .map(|f| renderer.render_frame(f, &shaders))
            .collect();

        let multi = MultiGpuConfig::new(2, DispatchMode::AlternateFrame, Topology::Private);
        let mut rig = MultiGpu::new(cfg.clone(), multi);
        let rig_stats: Vec<FrameStats> = traces
            .iter()
            .map(|t| rig.simulate_frame(t, &shaders))
            .collect();

        // GPU 1 sees only frame 1, but at global frame parity 1: mirror
        // that by burning a trace-free parity slot is impossible on the
        // reference model, so drive it with the same frame sequence the
        // rig dispatched (frame 1 only) and compare the memory-system
        // counters, which are parity-independent for this scene's
        // polygon lists and textures.
        let mut ref1 = ReferenceGpu::new(cfg);
        let want = ref1.simulate_frame(&traces[1], &shaders);
        let got = &rig_stats[1];
        assert_eq!(got.vertex_cache, want.vertex_cache, "vertex L1 stream");
        assert_eq!(got.texture_cache, want.texture_cache, "texture L1 stream");
        assert_eq!(got.instructions, want.instructions);
        assert!(
            got.cycles >= want.cycles,
            "rig frame carries the interconnect stall on top of compute"
        );
    }
}
