//! Per-frame simulation throughput: functional render (characterization
//! pass) vs full cycle-level simulation — the ratio MEGsim exploits.

use criterion::{criterion_group, criterion_main, Criterion};
use megsim_funcsim::{RenderConfig, Renderer};
use megsim_timing::{Gpu, GpuConfig};
use megsim_workloads::by_alias;

fn bench_frame_pipeline(c: &mut Criterion) {
    let gpu_config = GpuConfig::mali450_like();
    let renderer = Renderer::new(RenderConfig::tbr(gpu_config.viewport));
    for alias in ["jjo", "bbr1"] {
        let workload = by_alias(alias, 0.02, 7).expect("known alias");
        let shaders = workload.shaders();
        let frame = workload.frame(workload.frames() / 2);

        c.bench_function(&format!("funcsim_activity_{alias}"), |b| {
            b.iter(|| renderer.frame_activity(&frame, shaders));
        });
        c.bench_function(&format!("funcsim_full_trace_{alias}"), |b| {
            b.iter(|| renderer.render_frame(&frame, shaders));
        });
        let trace = renderer.render_frame(&frame, shaders);
        c.bench_function(&format!("timing_simulate_frame_{alias}"), |b| {
            let mut gpu = Gpu::new(gpu_config.clone());
            b.iter(|| gpu.simulate_frame(&trace, shaders));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frame_pipeline
}
criterion_main!(benches);
