//! Contiguous row-major point storage shared by the distance kernels,
//! plus the cache-blocked SoA pairwise-distance kernel.
//!
//! The original implementation stored observations as `Vec<Vec<f64>>`,
//! which puts every row behind its own heap allocation: the inner
//! loops of k-means, BIC, silhouette, and the similarity matrix then
//! pointer-chase on every distance. [`PointMatrix`] packs all rows
//! into one flat buffer so row access is a bounds-checked slice into
//! contiguous memory and streaming the whole matrix is a linear scan.
//!
//! [`SoaPoints`] is the transposed (column-major) view feeding
//! [`SoaPoints::d2_block`]: all-pairs stages (the §III-D similarity
//! matrix, the silhouette ablation) compute distances tile by tile so
//! one pass over a dimension's column serves a whole block of pairs
//! from cache, and the inner loop over `j` is a contiguous stream the
//! compiler can vectorize. Per pair the accumulation runs dimension by
//! dimension into a single scalar — the exact op sequence of
//! [`crate::squared_distance`] — so tiling reorders only *which* pairs
//! are computed, never any floating-point result.

/// A dense `rows × dim` matrix of `f64` observations, row-major.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointMatrix {
    data: Vec<f64>,
    dim: usize,
    rows: usize,
}

impl PointMatrix {
    /// An empty matrix whose rows will have `dim` columns.
    pub fn new(dim: usize) -> Self {
        PointMatrix {
            data: Vec::new(),
            dim,
            rows: 0,
        }
    }

    /// An empty matrix with storage reserved for `rows` rows.
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        PointMatrix {
            data: Vec::with_capacity(rows * dim),
            dim,
            rows: 0,
        }
    }

    /// Packs nested rows into contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut matrix = PointMatrix::with_capacity(rows.len(), dim);
        for row in &rows {
            matrix.push_row(row);
        }
        matrix
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim` (a `dim` of 0
    /// requires empty data).
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        let rows = if dim == 0 {
            assert!(data.is_empty(), "dim 0 requires empty data");
            0
        } else {
            assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
            data.len() / dim
        };
        PointMatrix { data, dim, rows }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length != matrix dim");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Overwrites row `i` in place (the streaming clusterer's reservoir
    /// eviction).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `row.len() != dim`.
    pub fn set_row(&mut self, i: usize, row: &[f64]) {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        assert_eq!(row.len(), self.dim, "row length != matrix dim");
        self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(row);
    }

    /// Removes every row, keeping the allocation (the streaming
    /// clusterer's mini-batch window).
    pub fn clear(&mut self) {
        self.data.clear();
        self.rows = 0;
    }

    /// Number of rows (observations).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates rows in order as slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone {
        // `chunks_exact(0)` would panic; an empty matrix has no rows to
        // yield regardless of dim.
        self.data.chunks_exact(self.dim.max(1)).take(self.rows)
    }

    /// The whole matrix as one flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }
}

/// Register-block width of [`SoaPoints::d2_block`]: how many `j` points
/// accumulate simultaneously, each in its own register lane (8 f64s is
/// one AVX-512 vector, two AVX ones).
const D2_LANES: usize = 8;

/// Column-major (structure-of-arrays) copy of a [`PointMatrix`] for the
/// blocked pairwise-distance kernel: coordinate `d` of every point sits
/// contiguously in column `d`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaPoints {
    /// `dim` columns of `n` values each, column-major.
    cols: Vec<f64>,
    n: usize,
    dim: usize,
}

impl SoaPoints {
    /// Transposes a row-major matrix into column-major storage (one
    /// O(n·d) pass, paid once per all-pairs stage).
    pub fn from_matrix(points: &PointMatrix) -> Self {
        let n = points.len();
        let dim = points.dim();
        let mut cols = vec![0.0f64; n * dim];
        for (i, row) in points.iter_rows().enumerate() {
            for (d, &v) in row.iter().enumerate() {
                cols[d * n + i] = v;
            }
        }
        SoaPoints { cols, n, dim }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensions per point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Column `d`: coordinate `d` of every point, contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim`.
    pub fn col(&self, d: usize) -> &[f64] {
        assert!(d < self.dim, "column {d} out of range ({} dims)", self.dim);
        &self.cols[d * self.n..(d + 1) * self.n]
    }

    /// Writes the squared Euclidean distances between every `i` in `is`
    /// and every `j` in `js` into `out` as a row-major
    /// `is.len() × js.len()` tile (`out[(i − is.start) · js.len() +
    /// (j − js.start)]`).
    ///
    /// The tile accumulates dimension by dimension: per pair that is a
    /// single scalar receiving `(x_id − x_jd)²` in ascending `d` order —
    /// bitwise the fold [`crate::squared_distance`] computes. The kernel
    /// register-blocks [`D2_LANES`] points of `js` at a time: their
    /// accumulators live in registers across the whole dimension loop
    /// (one contiguous vector load per dimension, no per-dimension tile
    /// traffic), and each lane is an independent sum, so the block
    /// vectorizes at full width without reordering any pair's fold.
    ///
    /// # Panics
    ///
    /// Panics if a range exceeds the point count or `out` is smaller
    /// than the tile.
    pub fn d2_block(
        &self,
        is: std::ops::Range<usize>,
        js: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.block_kernel::<false>(is, js, out);
    }

    /// [`SoaPoints::d2_block`] with the square root fused into the
    /// store: `out` receives Euclidean distances (`sqrt` applied to the
    /// finished accumulator lanes, bitwise
    /// [`crate::euclidean_distance`]), saving consumers a separate pass
    /// over the tile.
    ///
    /// # Panics
    ///
    /// Panics if a range exceeds the point count or `out` is smaller
    /// than the tile.
    pub fn dist_block(
        &self,
        is: std::ops::Range<usize>,
        js: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        self.block_kernel::<true>(is, js, out);
    }

    /// Gather-row variant of [`SoaPoints::d2_block`]: the `i` side is an
    /// arbitrary index list instead of a contiguous range (the sampled
    /// silhouette's reservoir rows), the `j` side streams contiguously.
    /// Per pair the fold is bitwise [`crate::squared_distance`], exactly
    /// like the range kernel.
    ///
    /// # Panics
    ///
    /// Panics if an index or the range exceeds the point count, or
    /// `out` is smaller than the `is.len() × js.len()` tile.
    pub fn d2_block_rows(&self, is: &[usize], js: std::ops::Range<usize>, out: &mut [f64]) {
        self.block_kernel_rows::<false>(is, js, out);
    }

    /// [`SoaPoints::d2_block_rows`] with the square root fused into the
    /// store (bitwise [`crate::euclidean_distance`] per pair).
    ///
    /// # Panics
    ///
    /// Panics if an index or the range exceeds the point count, or
    /// `out` is smaller than the tile.
    pub fn dist_block_rows(&self, is: &[usize], js: std::ops::Range<usize>, out: &mut [f64]) {
        self.block_kernel_rows::<true>(is, js, out);
    }

    fn block_kernel_rows<const SQRT: bool>(
        &self,
        is: &[usize],
        js: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert!(
            is.iter().all(|&i| i < self.n) && js.end <= self.n,
            "tile range out of bounds"
        );
        let (h, w) = (is.len(), js.len());
        let tile = &mut out[..h * w];
        let n = self.n;
        for (bi, &i) in is.iter().enumerate() {
            let row = &mut tile[bi * w..(bi + 1) * w];
            let mut jb = 0;
            while jb + D2_LANES <= w {
                let mut acc = [0.0f64; D2_LANES];
                for d in 0..self.dim {
                    let col = &self.cols[d * n..(d + 1) * n];
                    let xi = col[i];
                    let cj = &col[js.start + jb..js.start + jb + D2_LANES];
                    for (a, &xj) in acc.iter_mut().zip(cj) {
                        let diff = xi - xj;
                        *a += diff * diff;
                    }
                }
                if SQRT {
                    for a in &mut acc {
                        *a = a.sqrt();
                    }
                }
                row[jb..jb + D2_LANES].copy_from_slice(&acc);
                jb += D2_LANES;
            }
            for (off, j) in (js.start + jb..js.end).enumerate() {
                let mut acc = 0.0f64;
                for d in 0..self.dim {
                    let col = &self.cols[d * n..(d + 1) * n];
                    let diff = col[i] - col[j];
                    acc += diff * diff;
                }
                row[jb + off] = if SQRT { acc.sqrt() } else { acc };
            }
        }
    }

    fn block_kernel<const SQRT: bool>(
        &self,
        is: std::ops::Range<usize>,
        js: std::ops::Range<usize>,
        out: &mut [f64],
    ) {
        assert!(
            is.end <= self.n && js.end <= self.n,
            "tile range out of bounds"
        );
        let (h, w) = (is.len(), js.len());
        let tile = &mut out[..h * w];
        let n = self.n;
        for (bi, i) in is.clone().enumerate() {
            let row = &mut tile[bi * w..(bi + 1) * w];
            let mut jb = 0;
            while jb + D2_LANES <= w {
                let mut acc = [0.0f64; D2_LANES];
                for d in 0..self.dim {
                    let col = &self.cols[d * n..(d + 1) * n];
                    let xi = col[i];
                    let cj = &col[js.start + jb..js.start + jb + D2_LANES];
                    for (a, &xj) in acc.iter_mut().zip(cj) {
                        let diff = xi - xj;
                        *a += diff * diff;
                    }
                }
                if SQRT {
                    for a in &mut acc {
                        *a = a.sqrt();
                    }
                }
                row[jb..jb + D2_LANES].copy_from_slice(&acc);
                jb += D2_LANES;
            }
            // Ragged tail: one scalar fold per remaining pair.
            for (off, j) in (js.start + jb..js.end).enumerate() {
                let mut acc = 0.0f64;
                for d in 0..self.dim {
                    let col = &self.cols[d * n..(d + 1) * n];
                    let diff = col[i] - col[j];
                    acc += diff * diff;
                }
                row[jb + off] = if SQRT { acc.sqrt() } else { acc };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrips() {
        let m = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }

    #[test]
    fn push_row_appends() {
        let mut m = PointMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn empty_matrix_is_well_formed() {
        let m = PointMatrix::from_rows(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn inconsistent_rows_panic() {
        let _ = PointMatrix::from_rows(vec![vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn from_flat_splits_rows() {
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn soa_transpose_roundtrips() {
        let m = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let soa = SoaPoints::from_matrix(&m);
        assert_eq!(soa.len(), 3);
        assert_eq!(soa.dim(), 2);
        assert_eq!(soa.col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(soa.col(1), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn d2_block_is_bitwise_squared_distance() {
        // Awkward magnitudes so any accumulation-order difference would
        // show up in the low bits.
        let m = PointMatrix::from_rows(
            (0..17)
                .map(|i| {
                    (0..5)
                        .map(|d| ((i * 7 + d * 13) as f64).sin() * 10f64.powi((d % 3) - 1))
                        .collect()
                })
                .collect(),
        );
        let soa = SoaPoints::from_matrix(&m);
        let mut tile = vec![f64::NAN; 17 * 17];
        for (is, js) in [(0..17, 0..17), (3..9, 11..17), (16..17, 0..1), (5..5, 0..4)] {
            let w = js.len();
            soa.d2_block(is.clone(), js.clone(), &mut tile);
            for (bi, i) in is.clone().enumerate() {
                for (bj, j) in js.clone().enumerate() {
                    let expected = crate::kmeans::squared_distance(m.row(i), m.row(j));
                    assert_eq!(
                        tile[bi * w + bj].to_bits(),
                        expected.to_bits(),
                        "pair ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn set_row_and_clear() {
        let mut m = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.set_row(0, &[9.0, 8.0]);
        assert_eq!(m.row(0), &[9.0, 8.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.dim(), 2);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.row(0), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_row_out_of_range_panics() {
        let mut m = PointMatrix::from_rows(vec![vec![1.0]]);
        m.set_row(1, &[2.0]);
    }

    #[test]
    fn gather_row_block_matches_the_range_kernel() {
        let m = PointMatrix::from_rows(
            (0..23)
                .map(|i| {
                    (0..4)
                        .map(|d| ((i * 11 + d * 5) as f64).cos() * 10f64.powi((d % 3) - 1))
                        .collect()
                })
                .collect(),
        );
        let soa = SoaPoints::from_matrix(&m);
        // Scattered, unsorted, repeated indices — everything the range
        // kernel cannot express.
        let is = [20usize, 3, 3, 17, 0, 9];
        let js = 2..23;
        let w = js.len();
        let mut tile = vec![f64::NAN; is.len() * w];
        soa.dist_block_rows(&is, js.clone(), &mut tile);
        let mut d2 = vec![f64::NAN; is.len() * w];
        soa.d2_block_rows(&is, js.clone(), &mut d2);
        for (bi, &i) in is.iter().enumerate() {
            for (bj, j) in js.clone().enumerate() {
                let expected = crate::kmeans::euclidean_distance(m.row(i), m.row(j));
                assert_eq!(
                    tile[bi * w + bj].to_bits(),
                    expected.to_bits(),
                    "pair ({i}, {j})"
                );
                let expected2 = crate::kmeans::squared_distance(m.row(i), m.row(j));
                assert_eq!(d2[bi * w + bj].to_bits(), expected2.to_bits());
            }
        }
    }

    #[test]
    fn d2_block_handles_zero_dim() {
        let m = PointMatrix::from_rows(vec![vec![], vec![]]);
        let soa = SoaPoints::from_matrix(&m);
        let mut tile = vec![f64::NAN; 4];
        soa.d2_block(0..2, 0..2, &mut tile);
        assert_eq!(tile, vec![0.0; 4]);
    }
}
