//! # megsim-gl
//!
//! OpenGL-style command streams — the role of TEAPOT's *OpenGL trace
//! generator*, which intercepts the GL commands an Android application
//! issues and stores them in trace files for the simulators to replay.
//!
//! * [`command`] — the GL-like command vocabulary and [`CommandStream`]
//! * [`recorder`] — records frame sequences into deduplicated streams
//! * [`player`] — replays a stream through a GL state machine back into
//!   frames (validating resource references)
//! * [`codec`] — the compact binary trace-file format (`MGLT`, wire
//!   versions 1 and 2)
//! * [`stream`] — incremental decoding and frame-granular streaming
//!   replay from any `Read` source with O(frame) peak memory
//!
//! ```
//! use megsim_gl::{decode, encode, play, record_sequence};
//! use megsim_workloads::by_alias;
//!
//! let workload = by_alias("hcr", 0.005, 1).expect("known alias");
//! let frames: Vec<_> = workload.iter_frames().collect();
//! // Record, serialize to a trace file, read it back, replay.
//! let stream = record_sequence(workload.shaders(), &frames);
//! let file = encode(&stream);
//! let replay = play(&decode(&file).expect("valid trace")).expect("valid stream");
//! assert_eq!(replay.frames.len(), frames.len());
//! assert_eq!(replay.shaders.vertex_count(), workload.shaders().vertex_count());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod command;
pub mod player;
pub mod recorder;
pub mod stream;

pub use codec::{
    decode, encode, encode_v2, encode_with_version, DecodeError, DecodeErrorKind, FORMAT_VERSION,
    FORMAT_VERSION_V2,
};
pub use command::{BufferId, Command, CommandStream};
pub use player::{play, PlayError, Replay, StreamPlayer};
pub use recorder::{record_sequence, Recorder};
pub use stream::{FrameIter, StreamDecoder, TraceError};
