//! The persistent content-addressed store: sharded append-only log
//! segments under one directory, an in-memory index built on open, and
//! write-behind flushes sealed by atomic rename.
//!
//! ## Layout
//!
//! A store directory holds sealed segment files named
//! `s<shard:02x>-<seq:06>-<pid>.seg` plus short-lived `*.tmp` files
//! that a flush is still writing. Only `.seg` files are ever read:
//! a flush builds the complete segment image in memory, writes it to a
//! `.tmp` sibling, syncs it, and atomically renames it into place — so
//! a crash at any point leaves either no new segment or a fully valid
//! one, and a reader never observes a half-written file name it would
//! trust. The pid in the name keeps concurrent processes writing to the
//! same directory from colliding; duplicate keys across segments are
//! harmless because values are content-addressed (identical by
//! construction), with later segments winning the index.
//!
//! ## Degradation contract
//!
//! Nothing this store reads can fail a run. Corrupt headers, torn
//! tails, CRC failures and vanished files all degrade to *misses*
//! (counted in [`StoreStats`]), and the caller falls back to
//! recomputation — the same result, computed instead of read.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

use crate::segment::{self, RecordRef, MAX_PAYLOAD};

/// Number of independently locked shards; segment files are also
/// per-shard. Matches the in-memory cache's shard selection (top bits
/// of the uniformly distributed fingerprint).
const SHARDS: usize = 16;

/// Where an indexed record lives on disk.
#[derive(Debug, Clone, Copy)]
struct Loc {
    /// Index into [`Store::segments`].
    file: u32,
    /// Offset of the record start within that segment.
    offset: u64,
    /// Total record length, framing included.
    len: u32,
}

/// One shard: its in-memory index plus records buffered for the next
/// flush.
#[derive(Debug, Default)]
struct Shard {
    index: HashMap<u128, Loc>,
    pending: HashMap<u128, Vec<u8>>,
}

/// Counters describing the store's health and traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files indexed.
    pub segments: u64,
    /// Records currently indexed (readable from disk).
    pub records: u64,
    /// Records buffered for the next flush.
    pub pending: u64,
    /// Records (or whole segments) dropped because they failed framing
    /// or CRC checks — on open or on a disk read.
    pub corrupt_records: u64,
    /// Disk-tier reads that returned a payload.
    pub reads_served: u64,
    /// Disk-tier reads that missed (absent, corrupt, or unreadable).
    pub reads_missed: u64,
}

/// A persistent `u128 → bytes` store over one directory.
pub struct Store {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
    /// Open sealed segments; a `Loc::file` indexes this list. Pushed
    /// only while holding `flush_lock`, read under the `RwLock`.
    segments: RwLock<Vec<Mutex<File>>>,
    /// Serializes flush rotations.
    flush_lock: Mutex<()>,
    /// Next segment sequence number for this process.
    next_seq: AtomicU64,
    corrupt_records: AtomicU64,
    reads_served: AtomicU64,
    reads_missed: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`, scanning every
    /// sealed segment into the in-memory index.
    ///
    /// Damaged segments degrade to fewer indexed records, never to an
    /// error; only directory creation/listing problems fail.
    pub fn open(dir: &Path) -> std::io::Result<Store> {
        fs::create_dir_all(dir)?;
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|entry| entry.ok())
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        // Deterministic open order; later files win duplicate keys.
        names.sort();
        let store = Store {
            dir: dir.to_path_buf(),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            segments: RwLock::new(Vec::new()),
            flush_lock: Mutex::new(()),
            next_seq: AtomicU64::new(0),
            corrupt_records: AtomicU64::new(0),
            reads_served: AtomicU64::new(0),
            reads_missed: AtomicU64::new(0),
        };
        let mut max_seq = 0u64;
        for path in names {
            max_seq = max_seq.max(sequence_of(&path));
            store.index_segment(&path);
        }
        store.next_seq.store(max_seq + 1, Ordering::Relaxed);
        Ok(store)
    }

    /// Reads, scans and indexes one sealed segment. Unreadable or
    /// corrupt content degrades to fewer records.
    fn index_segment(&self, path: &Path) {
        let mut bytes = Vec::new();
        let Ok(mut file) = File::open(path) else {
            self.corrupt_records.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if file.read_to_end(&mut bytes).is_err() {
            self.corrupt_records.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let outcome = segment::scan(&bytes);
        if outcome.corrupt {
            self.corrupt_records.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.records.is_empty() {
            return;
        }
        let file_idx = {
            let mut segments = self.segments.write();
            segments.push(Mutex::new(file));
            (segments.len() - 1) as u32
        };
        for RecordRef {
            key,
            offset,
            payload_len,
        } in outcome.records
        {
            self.shard(key).lock().index.insert(
                key,
                Loc {
                    file: file_idx,
                    offset,
                    len: (segment::RECORD_OVERHEAD + payload_len as usize) as u32,
                },
            );
        }
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[(key >> 124) as usize & (SHARDS - 1)]
    }

    /// Looks `key` up: first in the un-flushed pending buffer, then on
    /// disk. A record that fails re-verification (bit rot since open)
    /// counts as corrupt and misses.
    pub fn get(&self, key: u128) -> Option<Vec<u8>> {
        let loc = {
            let shard = self.shard(key).lock();
            if let Some(payload) = shard.pending.get(&key) {
                self.reads_served.fetch_add(1, Ordering::Relaxed);
                return Some(payload.clone());
            }
            shard.index.get(&key).copied()
        };
        let Some(loc) = loc else {
            self.reads_missed.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match self.read_at(loc, key) {
            Some(payload) => {
                self.reads_served.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                // The entry indexed fine on open but no longer reads
                // back: drop it so later lookups miss cheaply.
                self.shard(key).lock().index.remove(&key);
                self.corrupt_records.fetch_add(1, Ordering::Relaxed);
                self.reads_missed.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads and re-verifies one record image from its segment.
    fn read_at(&self, loc: Loc, key: u128) -> Option<Vec<u8>> {
        let segments = self.segments.read();
        let mut file = segments.get(loc.file as usize)?.lock();
        let mut image = vec![0u8; loc.len as usize];
        file.seek(SeekFrom::Start(loc.offset)).ok()?;
        file.read_exact(&mut image).ok()?;
        segment::verify_record(&image, key).map(<[u8]>::to_vec)
    }

    /// Whether `key` is already stored (indexed or pending) — a cheap
    /// existence probe that does not touch the disk or the counters.
    pub fn contains(&self, key: u128) -> bool {
        let shard = self.shard(key).lock();
        shard.pending.contains_key(&key) || shard.index.contains_key(&key)
    }

    /// Buffers `key → payload` for the next [`flush`](Store::flush)
    /// (write-behind). Re-puts of an already stored or pending key are
    /// dropped: values are content-addressed, so the first write is as
    /// good as any.
    ///
    /// Oversized payloads (over [`MAX_PAYLOAD`]) are silently dropped —
    /// the store only ever degrades to recomputation.
    pub fn put(&self, key: u128, payload: Vec<u8>) {
        if payload.len() > MAX_PAYLOAD {
            return;
        }
        let mut shard = self.shard(key).lock();
        if shard.index.contains_key(&key) || shard.pending.contains_key(&key) {
            return;
        }
        shard.pending.insert(key, payload);
    }

    /// Seals every shard's pending records into new segment files:
    /// each image is fully written to a `.tmp` sibling, synced, then
    /// atomically renamed into place, so a crash never publishes a
    /// partial segment.
    ///
    /// Returns the number of records sealed. IO failures leave the
    /// affected records pending (retried by a later flush) and return
    /// the error after attempting every shard.
    pub fn flush(&self) -> std::io::Result<u64> {
        let _rotation = self.flush_lock.lock();
        let mut sealed = 0u64;
        let mut first_error = None;
        for shard_idx in 0..SHARDS {
            // Snapshot and release: simulation threads keep hitting the
            // shard while its image is built and written.
            let pending: Vec<(u128, Vec<u8>)> = {
                let shard = self.shards[shard_idx].lock();
                let mut p: Vec<_> = shard.pending.iter().map(|(k, v)| (*k, v.clone())).collect();
                // Deterministic record order within a segment.
                p.sort_by_key(|(k, _)| *k);
                p
            };
            if pending.is_empty() {
                continue;
            }
            match self.seal_segment(shard_idx, &pending) {
                Ok(file_idx) => {
                    sealed += pending.len() as u64;
                    let mut image_offset = segment::HEADER_LEN as u64;
                    let mut shard = self.shards[shard_idx].lock();
                    for (key, payload) in pending {
                        let len = (segment::RECORD_OVERHEAD + payload.len()) as u32;
                        shard.index.insert(
                            key,
                            Loc {
                                file: file_idx,
                                offset: image_offset,
                                len,
                            },
                        );
                        image_offset += u64::from(len);
                        shard.pending.remove(&key);
                    }
                }
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(sealed),
        }
    }

    /// Builds, writes, syncs and renames one segment; returns its index
    /// in the open-segment list.
    fn seal_segment(&self, shard_idx: usize, records: &[(u128, Vec<u8>)]) -> std::io::Result<u32> {
        let mut image = Vec::new();
        segment::write_header(&mut image);
        for (key, payload) in records {
            segment::append_record(&mut image, *key, payload);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let final_name = format!("s{shard_idx:02x}-{seq:06}-{pid}.seg");
        let tmp_path = self.dir.join(format!("{final_name}.tmp"));
        let final_path = self.dir.join(&final_name);
        let mut tmp = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&tmp_path)?;
        let write = std::io::Write::write_all(&mut tmp, &image).and_then(|()| tmp.sync_all());
        if let Err(e) = write {
            drop(tmp);
            let _ = fs::remove_file(&tmp_path);
            return Err(e);
        }
        drop(tmp);
        if let Err(e) = fs::rename(&tmp_path, &final_path) {
            let _ = fs::remove_file(&tmp_path);
            return Err(e);
        }
        let file = File::open(&final_path)?;
        let mut segments = self.segments.write();
        segments.push(Mutex::new(file));
        Ok((segments.len() - 1) as u32)
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        let mut records = 0u64;
        let mut pending = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            records += shard.index.len() as u64;
            pending += shard.pending.len() as u64;
        }
        StoreStats {
            segments: self.segments.read().len() as u64,
            records,
            pending,
            corrupt_records: self.corrupt_records.load(Ordering::Relaxed),
            reads_served: self.reads_served.load(Ordering::Relaxed),
            reads_missed: self.reads_missed.load(Ordering::Relaxed),
        }
    }

    /// Records readable from disk or pending.
    pub fn len(&self) -> usize {
        let stats = self.stats();
        (stats.records + stats.pending) as usize
    }

    /// Whether the store holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Store {
    /// Best-effort final flush: write-behind records are sealed when
    /// the store goes away, and failures only cost warmth.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Parses the sequence number out of a segment file name; unknown
/// shapes sort as zero (harmless: sequence only seeds `next_seq`).
fn sequence_of(path: &Path) -> u64 {
    path.file_stem()
        .and_then(|s| s.to_str())
        .and_then(|s| s.split('-').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("megsim_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let store = Store::open(&dir).expect("open");
            store.put(1, b"one".to_vec());
            store.put(2 << 120, b"two".to_vec());
            // Pending entries are readable before any flush.
            assert_eq!(store.get(1), Some(b"one".to_vec()));
            assert_eq!(store.flush().expect("flush"), 2);
        }
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.get(1), Some(b"one".to_vec()));
        assert_eq!(store.get(2 << 120), Some(b"two".to_vec()));
        assert_eq!(store.get(3), None);
        let stats = store.stats();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.reads_served, 2);
        assert_eq!(stats.reads_missed, 1);
        assert_eq!(stats.corrupt_records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reput_of_existing_key_is_dropped() {
        let dir = tmp_dir("reput");
        let store = Store::open(&dir).expect("open");
        store.put(9, b"first".to_vec());
        store.put(9, b"second".to_vec());
        assert_eq!(store.get(9), Some(b"first".to_vec()));
        store.flush().expect("flush");
        store.put(9, b"third".to_vec());
        assert_eq!(store.stats().pending, 0, "re-put after seal must drop");
        assert_eq!(store.get(9), Some(b"first".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_of_empty_store_is_a_noop() {
        let dir = tmp_dir("empty");
        let store = Store::open(&dir).expect("open");
        assert_eq!(store.flush().expect("flush"), 0);
        assert!(store.is_empty());
        assert_eq!(store.stats().segments, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_files_from_a_crashed_flush_are_ignored() {
        let dir = tmp_dir("tmpfiles");
        {
            let store = Store::open(&dir).expect("open");
            store.put(5, b"kept".to_vec());
            store.flush().expect("flush");
        }
        // A crash between tmp write and rename leaves a .tmp sibling —
        // plausibly even one full of valid records.
        let mut orphan = Vec::new();
        segment::write_header(&mut orphan);
        segment::append_record(&mut orphan, 6, b"never sealed");
        fs::write(dir.join("s00-000099-1.seg.tmp"), &orphan).expect("write orphan");
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.get(5), Some(b"kept".to_vec()));
        assert_eq!(store.get(6), None, "unsealed tmp data must stay invisible");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_degrades_to_the_clean_prefix() {
        let dir = tmp_dir("torn");
        let seg_path;
        {
            let store = Store::open(&dir).expect("open");
            store.put(1, b"first".to_vec());
            store.put(1 << 8, b"second".to_vec());
            store.flush().expect("flush");
            seg_path = fs::read_dir(&dir)
                .expect("list")
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .find(|p| p.extension().is_some_and(|e| e == "seg"))
                .expect("segment exists");
        }
        // Chop the last 3 bytes off the sealed segment (torn tail).
        let bytes = fs::read(&seg_path).expect("read");
        fs::write(&seg_path, &bytes[..bytes.len() - 3]).expect("truncate");
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(store.stats().records, 1, "one record survives the tear");
        assert!(store.stats().corrupt_records > 0);
        // Whichever record tore, lookups still never error.
        let survivors = [store.get(1), store.get(1 << 8)];
        assert_eq!(survivors.iter().flatten().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_payload_is_dropped() {
        let dir = tmp_dir("oversize");
        let store = Store::open(&dir).expect("open");
        store.put(1, vec![0u8; MAX_PAYLOAD + 1]);
        assert_eq!(store.stats().pending, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        use std::sync::Arc;
        let dir = tmp_dir("concurrent");
        let store = Arc::new(Store::open(&dir).expect("open"));
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..128u128 {
                        let key = i << 120 | u128::from(t);
                        store.put(key, key.to_le_bytes().to_vec());
                        assert_eq!(store.get(key), Some(key.to_le_bytes().to_vec()));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        store.flush().expect("flush");
        assert_eq!(store.stats().records, 4 * 128);
        let _ = fs::remove_dir_all(&dir);
    }
}
