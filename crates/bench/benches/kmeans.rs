//! Clustering-kernel benchmarks: k-means and the BIC-driven search on
//! realistic feature matrices (supports Table III/IV cost analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megsim_cluster::{kmeans, search_clusters, KMeansConfig, PointMatrix, SearchConfig};

fn feature_like_data(n: usize, d: usize) -> PointMatrix {
    PointMatrix::from_rows(
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        let phase = (i / 50) % 4;
                        let base = if j % 4 == phase { 100.0 } else { 5.0 };
                        base + ((i * 31 + j * 17) % 13) as f64
                    })
                    .collect()
            })
            .collect(),
    )
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for (n, d, k) in [(500, 16, 8), (1000, 64, 16), (2000, 128, 32)] {
        let data = feature_like_data(n, d);
        group.bench_with_input(
            BenchmarkId::new("lloyd", format!("n{n}_d{d}_k{k}")),
            &data,
            |b, data| {
                b.iter(|| kmeans(data, &KMeansConfig::new(k).with_seed(1)));
            },
        );
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let data = feature_like_data(800, 32);
    c.bench_function("bic_search_n800_d32", |b| {
        b.iter(|| search_clusters(&data, &SearchConfig::default().with_max_k(24)));
    });
}

criterion_group!(benches, bench_kmeans, bench_search);
criterion_main!(benches);
