//! A small sharded concurrent memoization cache.
//!
//! Built for the frame-result memoization of the MEGsim pipeline:
//! many worker threads look up 128-bit content keys, misses compute
//! outside any lock, and hit/miss counters feed the experiment reports.
//! Determinism note: because values stored under a key are themselves
//! deterministic functions of the key (content-addressed), a lost
//! insert race or a capacity-evicted entry can only cause *recompute*,
//! never a different result — so results are bit-identical whether the
//! cache is cold, warm, full, or disabled.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Number of independently-locked shards (power of two).
const SHARDS: usize = 16;

/// A fixed-capacity concurrent `u128 → V` map with hit/miss statistics.
///
/// Keys are expected to already be uniformly distributed (content
/// hashes); the top bits select the shard. When a shard reaches its
/// capacity share, further inserts into it are dropped — a full cache
/// degrades to recomputation, never to eviction churn.
pub struct ConcurrentCache<V> {
    shards: Vec<Mutex<HashMap<u128, V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> ConcurrentCache<V> {
    /// Creates a cache holding at most roughly `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, V>> {
        &self.shards[(key >> 124) as usize & (SHARDS - 1)]
    }

    /// Looks `key` up, counting a hit or miss. The counter update
    /// happens under the shard lock, so a [`stats`](Self::stats) or
    /// [`clear`](Self::clear) holding every shard observes counters and
    /// contents as one consistent snapshot.
    pub fn lookup(&self, key: u128) -> Option<V> {
        let shard = self.shard(key).lock();
        let found = shard.get(&key).cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores `key → value` unless the shard is at capacity (the value
    /// is then simply dropped; see the type docs for why that is safe).
    pub fn insert(&self, key: u128, value: V) {
        let mut shard = self.shard(key).lock();
        if shard.len() < self.per_shard_capacity || shard.contains_key(&key) {
            shard.insert(key, value);
        }
    }

    /// Returns the cached value for `key`, computing and storing it on
    /// a miss. `compute` runs outside any lock, so concurrent misses on
    /// the same key may compute redundantly (both arrive at the same
    /// value; one insert wins).
    pub fn get_or_insert_with(&self, key: u128, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.lookup(key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Locks every shard at once, in index order (the only multi-shard
    /// acquisition in the crate, so the fixed order cannot deadlock).
    fn lock_all(&self) -> Vec<std::sync::MutexGuard<'_, HashMap<u128, V>>> {
        self.shards.iter().map(Mutex::lock).collect()
    }

    /// One consistent snapshot of the counters and entry count.
    ///
    /// Taken while holding every shard lock, so no concurrent insert,
    /// lookup or clear can land between reading the counters and
    /// counting the entries — `hits + misses` always equals the number
    /// of lookups that contributed to `entries`.
    pub fn stats(&self) -> CacheSnapshot {
        let guards = self.lock_all();
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: guards.iter().map(|g| g.len()).sum(),
        }
    }

    /// Drops all entries and zeroes the statistics as one atomic
    /// transition: every shard lock is held while both the maps and the
    /// counters reset, so a concurrent lookup can never see cleared
    /// shards with stale counters (or vice versa).
    pub fn clear(&self) {
        let mut guards = self.lock_all();
        for guard in &mut guards {
            guard.clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A consistent point-in-time view of a [`ConcurrentCache`]'s activity,
/// from [`ConcurrentCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries stored at snapshot time.
    pub entries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let cache = ConcurrentCache::new(64);
        assert_eq!(cache.lookup(1), None);
        cache.insert(1, 10u64);
        assert_eq!(cache.lookup(1), Some(10));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache = ConcurrentCache::new(64);
        let mut calls = 0;
        let v = cache.get_or_insert_with(7, || {
            calls += 1;
            42u64
        });
        assert_eq!(v, 42);
        let v = cache.get_or_insert_with(7, || {
            calls += 1;
            99u64
        });
        assert_eq!(v, 42, "second call must hit");
        assert_eq!(calls, 1);
    }

    #[test]
    fn capacity_bounds_inserts_per_shard() {
        let cache = ConcurrentCache::new(SHARDS); // 1 entry per shard
                                                  // Keys differing only in low bits land in the same shard.
        cache.insert(1, 1u64);
        cache.insert(2, 2u64);
        assert_eq!(cache.lookup(1), Some(1));
        assert_eq!(cache.lookup(2), None, "shard full: insert dropped");
        // Overwriting an existing key is always allowed.
        cache.insert(1, 3u64);
        assert_eq!(cache.lookup(1), Some(3));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ConcurrentCache::new(64);
        cache.insert(5, 5u64);
        let _ = cache.lookup(5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn stats_snapshot_is_consistent_under_concurrent_inserts() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let cache = Arc::new(ConcurrentCache::new(4096));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for k in 0..512u128 {
                        let key = (k << 112) ^ (t as u128);
                        cache.get_or_insert_with(key, || k as u64);
                    }
                })
            })
            .collect();
        let reader = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = cache.stats();
                    // Every stored entry was inserted after a counted
                    // miss, and the snapshot holds all shard locks, so
                    // it can never observe more entries than misses.
                    assert!(
                        snap.entries as u64 <= snap.misses,
                        "inconsistent snapshot: {snap:?}"
                    );
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        let snap = cache.stats();
        assert_eq!(snap.entries, cache.len());
        assert_eq!(snap.hits, cache.hits());
        assert_eq!(snap.misses, cache.misses());
    }

    #[test]
    fn concurrent_use_is_consistent() {
        use std::sync::Arc;
        let cache = Arc::new(ConcurrentCache::new(1024));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for k in 0..256u128 {
                        let key = k << 120; // top bits vary → all shards
                        let v = cache.get_or_insert_with(key, || k as u64 * 3);
                        assert_eq!(v, k as u64 * 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cache.len(), 256);
    }
}
