//! Multi-GPU scenario benchmark: N-instance rig throughput per
//! (dispatch, topology) at N = 1/2/4, the interconnect-bound vs
//! compute-bound crossover of the split-frame link, and the
//! representative-vs-full accuracy deltas of the MEGsim methodology on
//! each rig shape (the PR 10 Fig.-7-style table).
//!
//! Results merge into `BENCH_10.json` at the repo root. Rig simulation
//! is single-threaded timing-model work by construction (only the pure
//! tile-record stage fans out), so the throughput numbers measure model
//! cost, not host parallelism; `multi_gpu_available_parallelism` is
//! recorded alongside for context.

use std::time::Instant;

use megsim_bench::report::{available_cores, merge_bench_json};
use megsim_core::evaluate::{characterize_sequence, simulate_representatives_multi};
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_core::{metric_errors, sequence_totals};
use megsim_funcsim::{FrameTrace, RenderConfig, Renderer};
use megsim_timing::{
    DispatchMode, FrameStats, GpuConfig, LinkConfig, MultiGpu, MultiGpuConfig, Topology,
};
use megsim_workloads::by_alias;

const PAIRS: [(&str, DispatchMode, Topology); 4] = [
    (
        "afr_private",
        DispatchMode::AlternateFrame,
        Topology::Private,
    ),
    ("afr_shared", DispatchMode::AlternateFrame, Topology::Shared),
    ("sfr_private", DispatchMode::SplitFrame, Topology::Private),
    ("sfr_shared", DispatchMode::SplitFrame, Topology::Shared),
];

/// Best-of-three wall-clock seconds for `f` (after one warm-up pass).
fn secs(mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Warm rig sequence over pre-rendered traces with the end-of-sequence
/// L2 drain — bitwise the `simulate_sequence_multi` semantics, minus
/// the re-render.
fn rig_sequence(
    cfg: &GpuConfig,
    multi: MultiGpuConfig,
    traces: &[FrameTrace],
    shaders: &megsim_gfx::shader::ShaderTable,
) -> Vec<FrameStats> {
    let mut rig = MultiGpu::new(cfg.clone(), multi);
    let mut stats: Vec<FrameStats> = traces
        .iter()
        .map(|t| rig.simulate_frame(t, shaders))
        .collect();
    let writebacks = rig.drain_l2();
    if let Some(last) = stats.last_mut() {
        last.memory.l2.writebacks += writebacks;
    }
    stats
}

fn main() {
    let cores = available_cores();
    megsim_exec::set_threads(1);
    let workload = by_alias("jjo", 0.01, 7).expect("known alias"); // 50 frames
    let shaders = workload.shaders();
    let cfg = GpuConfig::small(256, 256);
    let renderer = Renderer::new(RenderConfig {
        viewport: cfg.viewport,
        mode: cfg.render_mode,
    });
    let traces: Vec<FrameTrace> = workload
        .iter_frames()
        .map(|f| renderer.render_frame(&f, shaders))
        .collect();
    let n_frames = traces.len() as f64;
    let mut entries: Vec<(String, f64)> =
        vec![("multi_gpu_available_parallelism".to_string(), cores as f64)];

    // Rig throughput (host frames/s) and simulated frame latency per
    // (dispatch, topology) at N = 1/2/4. Simulated cycles show the
    // scaling story — AFR hides whole frames, SFR splits raster — while
    // host throughput shows what the extra modeled GPUs cost to
    // simulate.
    for (label, dispatch, topology) in PAIRS {
        for n in [1usize, 2, 4] {
            let multi = MultiGpuConfig::new(n, dispatch, topology);
            let total_cycles: u64 = rig_sequence(&cfg, multi, &traces, shaders)
                .iter()
                .map(|s| s.cycles)
                .sum();
            let wall = secs(|| {
                let mut rig = MultiGpu::new(cfg.clone(), multi);
                for t in &traces {
                    std::hint::black_box(rig.simulate_frame(t, shaders).cycles);
                }
            });
            entries.push((
                format!("multi_gpu_{label}_n{n}_frames_per_sec"),
                n_frames / wall,
            ));
            entries.push((
                format!("multi_gpu_{label}_n{n}_sim_cycles_per_frame"),
                total_cycles as f64 / n_frames,
            ));
            println!(
                "multi-GPU {label} N={n}: {:.1} frames/s simulated, {:.0} model cycles/frame",
                n_frames / wall,
                total_cycles as f64 / n_frames
            );
        }
    }

    // Interconnect-bound vs compute-bound crossover: N = 2 split-frame
    // over private memory, sweeping link bandwidth. At low
    // bytes-per-cycle the worker GPU's band transfer extends the frame
    // (interconnect-bound); the crossover is the narrowest link whose
    // simulated cycles are within 1% of the widest link's
    // (compute-bound).
    let bandwidths = [1u64, 2, 4, 8, 16, 32, 64];
    let mut cycles_at = Vec::new();
    for &bw in &bandwidths {
        let mut multi = MultiGpuConfig::new(2, DispatchMode::SplitFrame, Topology::Private);
        multi.link = LinkConfig {
            bytes_per_cycle: bw,
            ..LinkConfig::baseline()
        };
        let total: u64 = rig_sequence(&cfg, multi, &traces, shaders)
            .iter()
            .map(|s| s.cycles)
            .sum();
        cycles_at.push(total as f64);
        entries.push((
            format!("multi_gpu_sfr_link_bw{bw}_sim_cycles"),
            total as f64,
        ));
    }
    let compute_bound = cycles_at.last().copied().expect("non-empty sweep");
    let crossover = bandwidths
        .iter()
        .zip(&cycles_at)
        .find(|(_, &c)| c <= compute_bound * 1.01)
        .map(|(&bw, _)| bw)
        .expect("widest link is its own bound");
    entries.push((
        "multi_gpu_interconnect_crossover_bytes_per_cycle".to_string(),
        crossover as f64,
    ));
    println!(
        "interconnect crossover: compute-bound from {crossover} bytes/cycle \
         ({:.2}x cycles at 1 byte/cycle)",
        cycles_at[0] / compute_bound
    );

    // Representative-vs-full accuracy per rig shape: MEGsim selects
    // representatives once (selection is rig-independent — it only sees
    // functional features), then each rig's cold representative
    // estimate is compared against its own warm full-sequence ground
    // truth. The cycles delta quantifies how much warm-state and
    // cross-GPU contention the cold representative rigs miss.
    let megsim = MegsimConfig::default().with_seed(3);
    let matrix = characterize_sequence(workload.iter_frames(), shaders, &cfg, &megsim);
    let selection = select_representatives(&matrix, &megsim);
    println!(
        "accuracy: {} of {} frames simulated per rig ({:.1}x reduction)",
        selection.k(),
        workload.frames(),
        selection.reduction_factor()
    );
    println!(
        "  (N=1 rows are the cold-representative-vs-warm-sequence baseline; \
         growth beyond them is what the rig adds — transfers, duplicated \
         geometry, shared-memory contention)"
    );
    println!("  N  dispatch+mem  cycles-err  dram-err  l2-err");
    for (label, dispatch, topology) in PAIRS {
        for n in [1usize, 2, 4] {
            let multi = MultiGpuConfig::new(n, dispatch, topology);
            let actual = sequence_totals(&rig_sequence(&cfg, multi, &traces, shaders));
            let rep_stats = simulate_representatives_multi(
                |i| workload.frame(i),
                &selection,
                shaders,
                &cfg,
                multi,
            );
            let mut estimated = FrameStats::default();
            for (stats, rep) in rep_stats.iter().zip(&selection.representatives) {
                estimated.merge(&stats.scaled(rep.cluster_size as u64));
            }
            let errors = metric_errors(&estimated, &actual);
            entries.push((
                format!("multi_gpu_{label}_n{n}_rep_cycles_err"),
                errors.cycles,
            ));
            entries.push((
                format!("multi_gpu_{label}_n{n}_rep_dram_err"),
                errors.dram_accesses,
            ));
            println!(
                "  {n}  {label:<12} {:>9.2}% {:>8.2}% {:>7.2}%",
                errors.cycles * 100.0,
                errors.dram_accesses * 100.0,
                errors.l2_accesses * 100.0
            );
        }
    }
    megsim_exec::set_threads(0);

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json");
    if let Err(e) = merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
