//! Content-addressed memoization of per-frame simulation results.
//!
//! The experiment sweeps (random-sampling trials, per-seed/per-mode
//! grids, representative re-simulation) render and time the *same*
//! frames many times over. Because PR 1 made per-frame simulation
//! independent — every frame is rendered from scratch and timed on a
//! freshly reset GPU — a frame's [`FrameActivity`] is a pure function
//! of `(frame content, render config, shader table)` and its
//! [`FrameStats`] a pure function of `(frame content, GPU config,
//! shader table)`. That purity is exactly what makes memoization sound:
//! this module hashes the full frame content (meshes, transforms,
//! shader bindings, textures, blend/depth state) together with the
//! config into a 128-bit key, and caches results process-wide in
//! [`megsim_exec::ConcurrentCache`] instances.
//!
//! The caches are transparent by construction — a hit returns a value
//! that recomputation would reproduce bit for bit, so enabling or
//! disabling the cache (or racing inserts, or dropping entries at
//! capacity) can never change pipeline output, only wall-clock time.
//! [`set_enabled`] (the CLI's `--no-frame-cache`) exists for
//! benchmarking and for double-checking that property, which
//! `tests/frame_cache.rs` does on every run.
//!
//! ## Tiers
//!
//! A lookup walks up to three tiers, each transparent in the same
//! sense:
//!
//! 1. **Memory** — the process-wide [`ConcurrentCache`] maps.
//! 2. **Disk** — an optional [`megsim_store::Store`] attached with
//!    [`set_store_dir`] (the CLI's `--cache-dir`). Reads are
//!    CRC-verified and re-decoded; anything torn or corrupt is a miss.
//!    Computed results are written behind (buffered in the store,
//!    flushed to a sealed segment by [`flush_store`] or on drop), so a
//!    later process starts warm.
//! 3. **Compute** — render / simulate the frame.
//!
//! The miss path (disk + compute) runs under a
//! [`megsim_exec::SingleFlight`] keyed by the same fingerprint, so
//! concurrent identical frames — e.g. two batch campaigns over
//! overlapping traces — simulate once and share the result.
//!
//! Per-tier counters are kept process-wide (see [`report`]) and
//! per-thread ([`take_thread_counts`]); the batch runner uses the
//! latter to attribute tiers to campaigns, which works because a
//! campaign's nested parallel calls run inline on its worker thread.

use std::cell::Cell;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use megsim_exec::{ConcurrentCache, FlightOutcome, SingleFlight};
use megsim_funcsim::{FrameActivity, RenderConfig};
use megsim_gfx::draw::{BlendMode, DrawCall, Frame};
use megsim_gfx::geometry::Mesh;
use megsim_gfx::shader::ShaderTable;
use megsim_store::{codec, Store, StoreStats};
use megsim_timing::{FrameStats, GpuConfig};

use parking_lot::Mutex;

/// Entries per cache (activity and stats each); beyond this, inserts
/// are dropped and the pipeline just recomputes.
const CACHE_CAPACITY: usize = 1 << 14;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ACTIVITY: OnceLock<ConcurrentCache<FrameActivity>> = OnceLock::new();
static STATS: OnceLock<ConcurrentCache<FrameStats>> = OnceLock::new();
static ACTIVITY_FLIGHTS: OnceLock<SingleFlight<FrameActivity>> = OnceLock::new();
static STATS_FLIGHTS: OnceLock<SingleFlight<FrameStats>> = OnceLock::new();
static STORE: Mutex<Option<Arc<Store>>> = Mutex::new(None);

fn activity_cache() -> &'static ConcurrentCache<FrameActivity> {
    ACTIVITY.get_or_init(|| ConcurrentCache::new(CACHE_CAPACITY))
}

fn stats_cache() -> &'static ConcurrentCache<FrameStats> {
    STATS.get_or_init(|| ConcurrentCache::new(CACHE_CAPACITY))
}

fn activity_flights() -> &'static SingleFlight<FrameActivity> {
    ACTIVITY_FLIGHTS.get_or_init(SingleFlight::new)
}

fn stats_flights() -> &'static SingleFlight<FrameStats> {
    STATS_FLIGHTS.get_or_init(SingleFlight::new)
}

fn store() -> Option<Arc<Store>> {
    STORE.lock().clone()
}

/// Attaches (or replaces) the persistent disk tier, opening the store
/// under `dir` and rebuilding its index from the segments found there.
///
/// Corrupt or torn segment data is tolerated (it degrades to misses);
/// only directory-level problems — cannot create, cannot list — return
/// an error. Callers should treat that error as a *warning* and keep
/// running cold: a missing disk tier must never fail a run, which is
/// why this function's only failure mode is "no store attached".
pub fn set_store_dir(dir: &Path) -> io::Result<()> {
    let opened = Arc::new(Store::open(dir)?);
    let mut slot = STORE.lock();
    *slot = Some(opened);
    Ok(())
}

/// Detaches the disk tier (flushing it best-effort via `Drop` if this
/// was the last reference). Subsequent lookups are memory + compute
/// only.
pub fn detach_store() {
    *STORE.lock() = None;
}

/// Flushes write-behind results to a durable sealed segment, returning
/// the number of records sealed. A no-op `Ok(0)` without a store.
pub fn flush_store() -> io::Result<u64> {
    match store() {
        Some(s) => s.flush(),
        None => Ok(0),
    }
}

/// Statistics of the attached store, if any.
pub fn store_stats() -> Option<StoreStats> {
    store().map(|s| s.stats())
}

/// Whether a persistent disk tier is currently attached.
pub fn has_store() -> bool {
    STORE.lock().is_some()
}

/// Globally enables or disables both frame caches (they default to
/// enabled). Disabling does not drop existing entries; re-enabling
/// resumes hitting them.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the frame caches are currently consulted.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drops every cached in-memory entry and zeroes all tier counters.
/// The attached store (if any) is untouched: clearing memory and
/// re-running is exactly the cross-process warm-start path.
pub fn clear() {
    activity_cache().clear();
    stats_cache().clear();
    GLOBAL_TIERS.reset();
    LOCAL_TIERS.with(|c| c.set(TierCounts::ZERO));
}

/// Which result kind a lookup was for.
#[derive(Clone, Copy)]
enum Kind {
    Activity,
    Stats,
}

/// Which tier ultimately served a lookup.
#[derive(Clone, Copy)]
enum Tier {
    Memory,
    Disk,
    Shared,
    Computed,
}

/// Per-tier lookup counts for one scope (a thread, a campaign, or the
/// whole process). `memory`/`disk`/`shared` are hits at the named tier;
/// `computed` lookups fell through everything and simulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Activity lookups served by the in-memory cache.
    pub activity_memory: u64,
    /// Activity lookups served by the disk store.
    pub activity_disk: u64,
    /// Activity lookups served by a concurrent identical computation.
    pub activity_shared: u64,
    /// Activity lookups that computed.
    pub activity_computed: u64,
    /// Stats lookups served by the in-memory cache.
    pub stats_memory: u64,
    /// Stats lookups served by the disk store.
    pub stats_disk: u64,
    /// Stats lookups served by a concurrent identical computation.
    pub stats_shared: u64,
    /// Stats lookups that computed.
    pub stats_computed: u64,
}

impl TierCounts {
    /// All-zero counts (`Default` is identical; this one is `const`).
    pub const ZERO: TierCounts = TierCounts {
        activity_memory: 0,
        activity_disk: 0,
        activity_shared: 0,
        activity_computed: 0,
        stats_memory: 0,
        stats_disk: 0,
        stats_shared: 0,
        stats_computed: 0,
    };

    fn add(&mut self, kind: Kind, tier: Tier) {
        let slot = match (kind, tier) {
            (Kind::Activity, Tier::Memory) => &mut self.activity_memory,
            (Kind::Activity, Tier::Disk) => &mut self.activity_disk,
            (Kind::Activity, Tier::Shared) => &mut self.activity_shared,
            (Kind::Activity, Tier::Computed) => &mut self.activity_computed,
            (Kind::Stats, Tier::Memory) => &mut self.stats_memory,
            (Kind::Stats, Tier::Disk) => &mut self.stats_disk,
            (Kind::Stats, Tier::Shared) => &mut self.stats_shared,
            (Kind::Stats, Tier::Computed) => &mut self.stats_computed,
        };
        *slot += 1;
    }

    /// Total lookups in this scope.
    pub fn lookups(&self) -> u64 {
        self.hits() + self.activity_computed + self.stats_computed
    }

    /// Lookups served without computing (any hit tier).
    pub fn hits(&self) -> u64 {
        self.activity_memory
            + self.activity_disk
            + self.activity_shared
            + self.stats_memory
            + self.stats_disk
            + self.stats_shared
    }

    /// Lookups served from disk.
    pub fn disk_hits(&self) -> u64 {
        self.activity_disk + self.stats_disk
    }

    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (campaign → batch totals).
    pub fn merge(&mut self, other: &TierCounts) {
        self.activity_memory += other.activity_memory;
        self.activity_disk += other.activity_disk;
        self.activity_shared += other.activity_shared;
        self.activity_computed += other.activity_computed;
        self.stats_memory += other.stats_memory;
        self.stats_disk += other.stats_disk;
        self.stats_shared += other.stats_shared;
        self.stats_computed += other.stats_computed;
    }

    /// One-line `mem/disk/shared/computed` summary across both kinds.
    pub fn summary(&self) -> String {
        format!(
            "mem {} disk {} shared {} computed {} ({:.1}% hit)",
            self.activity_memory + self.stats_memory,
            self.activity_disk + self.stats_disk,
            self.activity_shared + self.stats_shared,
            self.activity_computed + self.stats_computed,
            self.hit_rate() * 100.0,
        )
    }
}

/// Process-wide tier counters (atomics; `stats()` reads are
/// per-counter consistent, which is all the reports need).
struct GlobalTiers {
    slots: [AtomicU64; 8],
}

impl GlobalTiers {
    const fn new() -> Self {
        Self {
            slots: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    fn index(kind: Kind, tier: Tier) -> usize {
        let k = match kind {
            Kind::Activity => 0,
            Kind::Stats => 4,
        };
        k + match tier {
            Tier::Memory => 0,
            Tier::Disk => 1,
            Tier::Shared => 2,
            Tier::Computed => 3,
        }
    }

    fn add(&self, kind: Kind, tier: Tier) {
        self.slots[Self::index(kind, tier)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        for slot in &self.slots {
            slot.store(0, Ordering::Relaxed);
        }
    }

    fn counts(&self) -> TierCounts {
        let v = |i: usize| self.slots[i].load(Ordering::Relaxed);
        TierCounts {
            activity_memory: v(0),
            activity_disk: v(1),
            activity_shared: v(2),
            activity_computed: v(3),
            stats_memory: v(4),
            stats_disk: v(5),
            stats_shared: v(6),
            stats_computed: v(7),
        }
    }
}

static GLOBAL_TIERS: GlobalTiers = GlobalTiers::new();

thread_local! {
    /// This thread's tier counts since the last [`take_thread_counts`].
    static LOCAL_TIERS: Cell<TierCounts> = const { Cell::new(TierCounts::ZERO) };
}

fn count(kind: Kind, tier: Tier) {
    GLOBAL_TIERS.add(kind, tier);
    LOCAL_TIERS.with(|c| {
        let mut counts = c.get();
        counts.add(kind, tier);
        c.set(counts);
    });
}

/// Returns and zeroes the calling thread's tier counts.
///
/// This is how the batch runner attributes cache tiers to campaigns: a
/// campaign runs entirely on one worker thread (its nested parallel
/// calls degrade to sequential there), so the thread's counts between
/// two `take` calls are that campaign's. When a single-flight leader
/// computes a frame that followers share, the disk/compute count lands
/// on the leader's campaign and each follower counts one `shared`.
pub fn take_thread_counts() -> TierCounts {
    LOCAL_TIERS.with(|c| c.replace(TierCounts::ZERO))
}

/// A snapshot of both caches' statistics, for experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameCacheReport {
    /// Characterization-pass lookups served by the in-memory cache.
    pub activity_hits: u64,
    /// Characterization-pass lookups served by the disk store.
    pub activity_disk_hits: u64,
    /// Characterization-pass lookups served by a concurrent identical
    /// in-flight computation.
    pub activity_shared_hits: u64,
    /// Characterization-pass lookups that fell through every tier and
    /// computed.
    pub activity_misses: u64,
    /// Entries in the activity cache.
    pub activity_entries: usize,
    /// Timing-pass lookups served by the in-memory cache.
    pub stats_hits: u64,
    /// Timing-pass lookups served by the disk store.
    pub stats_disk_hits: u64,
    /// Timing-pass lookups served by a concurrent identical in-flight
    /// computation.
    pub stats_shared_hits: u64,
    /// Timing-pass lookups that fell through every tier and computed.
    pub stats_misses: u64,
    /// Entries in the stats cache.
    pub stats_entries: usize,
}

impl FrameCacheReport {
    /// Overall hit rate across both caches and all hit tiers, in
    /// `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.activity_hits
            + self.activity_disk_hits
            + self.activity_shared_hits
            + self.stats_hits
            + self.stats_disk_hits
            + self.stats_shared_hits;
        let total = hits + self.activity_misses + self.stats_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary for experiment logs. The
    /// `key value` pairs are stable and machine-parseable (the
    /// cross-process warm-start test greps them).
    pub fn summary(&self) -> String {
        format!(
            "frame cache: activity mem {} disk {} shared {} computed {}, \
             stats mem {} disk {} shared {} computed {} \
             ({:.1}% hit, {} entries)",
            self.activity_hits,
            self.activity_disk_hits,
            self.activity_shared_hits,
            self.activity_misses,
            self.stats_hits,
            self.stats_disk_hits,
            self.stats_shared_hits,
            self.stats_misses,
            self.hit_rate() * 100.0,
            self.activity_entries + self.stats_entries,
        )
    }

    /// The counters accumulated since `earlier` (entries stay at their
    /// current values — they are gauges, not counters). This is what
    /// turns process-lifetime totals into per-campaign numbers:
    /// snapshot at campaign start, delta at the end.
    pub fn delta_since(&self, earlier: &FrameCacheReport) -> FrameCacheReport {
        FrameCacheReport {
            activity_hits: self.activity_hits.saturating_sub(earlier.activity_hits),
            activity_disk_hits: self
                .activity_disk_hits
                .saturating_sub(earlier.activity_disk_hits),
            activity_shared_hits: self
                .activity_shared_hits
                .saturating_sub(earlier.activity_shared_hits),
            activity_misses: self.activity_misses.saturating_sub(earlier.activity_misses),
            activity_entries: self.activity_entries,
            stats_hits: self.stats_hits.saturating_sub(earlier.stats_hits),
            stats_disk_hits: self.stats_disk_hits.saturating_sub(earlier.stats_disk_hits),
            stats_shared_hits: self
                .stats_shared_hits
                .saturating_sub(earlier.stats_shared_hits),
            stats_misses: self.stats_misses.saturating_sub(earlier.stats_misses),
            stats_entries: self.stats_entries,
        }
    }
}

/// Current statistics of both caches (process-lifetime totals; combine
/// with [`FrameCacheReport::delta_since`] for per-campaign numbers).
pub fn report() -> FrameCacheReport {
    let t = GLOBAL_TIERS.counts();
    FrameCacheReport {
        activity_hits: t.activity_memory,
        activity_disk_hits: t.activity_disk,
        activity_shared_hits: t.activity_shared,
        activity_misses: t.activity_computed,
        activity_entries: activity_cache().len(),
        stats_hits: t.stats_memory,
        stats_disk_hits: t.stats_disk,
        stats_shared_hits: t.stats_shared,
        stats_misses: t.stats_computed,
        stats_entries: stats_cache().len(),
    }
}

/// A 128-bit streaming content fingerprint: two 64-bit lanes fed with
/// every word, each mixed splitmix64-style. Not cryptographic — it only
/// needs to make accidental collisions among a few thousand frames
/// astronomically unlikely (≈ 2⁻⁹⁷ for 10⁴ distinct frames).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    h0: u64,
    h1: u64,
}

impl Fingerprint {
    /// A fresh fingerprint with fixed, distinct lane seeds.
    pub fn new() -> Self {
        Self {
            h0: 0xcbf2_9ce4_8422_2325,
            h1: 0x9e37_79b9_7f4a_7c15,
        }
    }

    #[inline]
    fn mix(h: u64, v: u64) -> u64 {
        let mut x = (h ^ v).wrapping_mul(0x2545_f491_4f6c_dd1d);
        x ^= x >> 29;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }

    /// Feeds one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.h0 = Self::mix(self.h0, v);
        self.h1 = Self::mix(self.h1, v ^ 0xa5a5_a5a5_a5a5_a5a5);
    }

    /// Feeds one 32-bit word.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Feeds an `f32` by bit pattern (so `-0.0` and `0.0` differ —
    /// exactness matters more than float semantics here).
    #[inline]
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Feeds a byte slice (word-at-a-time, length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        (u128::from(self.h0) << 64) | u128::from(self.h1)
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

fn mesh_fingerprint(mesh: &Mesh) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64(mesh.vertices.len() as u64);
    for v in &mesh.vertices {
        fp.write_f32(v.position.x);
        fp.write_f32(v.position.y);
        fp.write_f32(v.position.z);
        fp.write_f32(v.normal.x);
        fp.write_f32(v.normal.y);
        fp.write_f32(v.normal.z);
        fp.write_f32(v.uv.x);
        fp.write_f32(v.uv.y);
    }
    fp.write_u64(mesh.indices.len() as u64);
    for &i in &mesh.indices {
        fp.write_u32(i);
    }
    fp.write_u64(mesh.base_address);
    fp.finish()
}

fn write_draw(fp: &mut Fingerprint, draw: &DrawCall, meshes: &mut HashMap<*const Mesh, u128>) {
    // Meshes are shared via `Arc` across draws (and frames), so hash
    // each distinct mesh once per frame and feed the digest.
    let key = std::sync::Arc::as_ptr(&draw.mesh);
    let mesh_fp = *meshes
        .entry(key)
        .or_insert_with(|| mesh_fingerprint(&draw.mesh));
    fp.write_u64((mesh_fp >> 64) as u64);
    fp.write_u64(mesh_fp as u64);
    for col in &draw.transform.cols {
        fp.write_f32(col.x);
        fp.write_f32(col.y);
        fp.write_f32(col.z);
        fp.write_f32(col.w);
    }
    fp.write_u32(draw.vertex_shader.0);
    fp.write_u32(draw.fragment_shader.0);
    match draw.texture {
        None => fp.write_u32(0),
        Some(t) => {
            fp.write_u32(1);
            fp.write_u32(t.id.0);
            fp.write_u32(t.width);
            fp.write_u32(t.height);
            fp.write_u32(t.bytes_per_texel);
            fp.write_u64(t.base_address);
        }
    }
    fp.write_u32(match draw.blend {
        BlendMode::Opaque => 0,
        BlendMode::AlphaBlend => 1,
        BlendMode::Additive => 2,
    });
    fp.write_u32(u32::from(draw.depth_test));
}

/// Content fingerprint of a frame: every field of every draw call that
/// the functional renderer or the timing model can observe.
pub fn frame_fingerprint(frame: &Frame) -> u128 {
    let mut fp = Fingerprint::new();
    let mut meshes = HashMap::new();
    fp.write_u64(frame.draws.len() as u64);
    for draw in &frame.draws {
        write_draw(&mut fp, draw, &mut meshes);
    }
    fp.finish()
}

/// Fingerprint of everything besides frame content that determines a
/// characterization result: the render config and the shader table.
///
/// Both types are plain data with derived `Debug`, so their full debug
/// representation is a faithful (if verbose) serialization — computed
/// once per sequence, not per frame.
pub fn activity_config_fingerprint(config: &RenderConfig, shaders: &ShaderTable) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64(0x41435449); // "ACTI" domain tag
    fp.write_bytes(format!("{config:?}|{shaders:?}").as_bytes());
    fp.finish()
}

/// Fingerprint of everything besides frame content that determines a
/// timing result: the full GPU config (which embeds the render mode and
/// viewport) and the shader table.
pub fn stats_config_fingerprint(config: &GpuConfig, shaders: &ShaderTable) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64(0x53544154); // "STAT" domain tag
    fp.write_bytes(format!("{config:?}|{shaders:?}").as_bytes());
    fp.finish()
}

#[inline]
fn combine(config_fp: u128, frame_fp: u128) -> u128 {
    let mut fp = Fingerprint::new();
    fp.write_u64((config_fp >> 64) as u64);
    fp.write_u64(config_fp as u64);
    fp.write_u64((frame_fp >> 64) as u64);
    fp.write_u64(frame_fp as u64);
    fp.finish()
}

/// The shared three-tier lookup: memory, then (under single-flight)
/// disk, then compute with write-behind. See the module docs for why
/// every tier is transparent.
fn tiered_or_else<V: Clone>(
    kind: Kind,
    cache: &ConcurrentCache<V>,
    flights: &SingleFlight<V>,
    key: u128,
    decode: impl Fn(&[u8]) -> Option<V>,
    encode: impl Fn(&V) -> Vec<u8>,
    compute: impl FnOnce() -> V,
) -> V {
    if let Some(v) = cache.lookup(key) {
        count(kind, Tier::Memory);
        return v;
    }
    let (v, outcome) = flights.run(key, || {
        if let Some(store) = store() {
            if let Some(bytes) = store.get(key) {
                if let Some(v) = decode(&bytes) {
                    count(kind, Tier::Disk);
                    cache.insert(key, v.clone());
                    return v;
                }
            }
        }
        let v = compute();
        count(kind, Tier::Computed);
        cache.insert(key, v.clone());
        if let Some(store) = store() {
            store.put(key, encode(&v));
        }
        v
    });
    if outcome == FlightOutcome::Shared {
        // The leader already counted its tier and populated the memory
        // cache; this lookup only waited.
        count(kind, Tier::Shared);
    }
    v
}

/// Returns the cached [`FrameActivity`] for `(config_fp, frame)`, or
/// computes (and caches) it. With the cache disabled this is just
/// `compute()`.
pub fn activity_or_else(
    config_fp: u128,
    frame: &Frame,
    compute: impl FnOnce() -> FrameActivity,
) -> FrameActivity {
    if !is_enabled() {
        return compute();
    }
    tiered_or_else(
        Kind::Activity,
        activity_cache(),
        activity_flights(),
        combine(config_fp, frame_fingerprint(frame)),
        codec::decode_activity,
        codec::encode_activity,
        compute,
    )
}

/// Returns the cached [`FrameStats`] for `(config_fp, frame)`, or
/// computes (and caches) it. With the cache disabled this is just
/// `compute()`.
pub fn stats_or_else(
    config_fp: u128,
    frame: &Frame,
    compute: impl FnOnce() -> FrameStats,
) -> FrameStats {
    if !is_enabled() {
        return compute();
    }
    tiered_or_else(
        Kind::Stats,
        stats_cache(),
        stats_flights(),
        combine(config_fp, frame_fingerprint(frame)),
        codec::decode_stats,
        codec::encode_stats,
        compute,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use megsim_gfx::geometry::Vertex;
    use megsim_gfx::math::{Mat4, Vec3};
    use megsim_gfx::shader::ShaderId;
    use std::sync::Arc;

    fn frame_with(z: f32) -> Frame {
        let mesh = Arc::new(Mesh::new(
            vec![
                Vertex::at(Vec3::new(-0.5, -0.5, z)),
                Vertex::at(Vec3::new(0.5, -0.5, z)),
                Vertex::at(Vec3::new(0.0, 0.5, z)),
            ],
            vec![0, 1, 2],
            0x100,
        ));
        let mut f = Frame::new();
        f.draws.push(DrawCall {
            mesh,
            transform: Mat4::IDENTITY,
            vertex_shader: ShaderId(0),
            fragment_shader: ShaderId(0),
            texture: None,
            blend: BlendMode::Opaque,
            depth_test: true,
        });
        f
    }

    #[test]
    fn identical_content_hashes_identically() {
        // Distinct allocations, same content: the fingerprint must be
        // content-addressed, not identity-addressed.
        assert_eq!(
            frame_fingerprint(&frame_with(0.25)),
            frame_fingerprint(&frame_with(0.25))
        );
    }

    #[test]
    fn content_changes_change_the_hash() {
        let base = frame_fingerprint(&frame_with(0.25));
        assert_ne!(base, frame_fingerprint(&frame_with(0.26)));
        let mut f = frame_with(0.25);
        f.draws[0].depth_test = false;
        assert_ne!(base, frame_fingerprint(&f));
        let mut f = frame_with(0.25);
        f.draws[0].blend = BlendMode::Additive;
        assert_ne!(base, frame_fingerprint(&f));
        let mut f = frame_with(0.25);
        f.draws[0].transform = Mat4::translation(Vec3::new(0.1, 0.0, 0.0));
        assert_ne!(base, frame_fingerprint(&f));
    }

    #[test]
    fn empty_frame_differs_from_nonempty() {
        assert_ne!(
            frame_fingerprint(&Frame::new()),
            frame_fingerprint(&frame_with(0.5))
        );
    }

    #[test]
    fn domain_tags_separate_activity_and_stats_keys() {
        let shaders = ShaderTable::new();
        let rc = RenderConfig::default();
        let gc = GpuConfig::default();
        assert_ne!(
            activity_config_fingerprint(&rc, &shaders),
            stats_config_fingerprint(&gc, &shaders)
        );
    }

    #[test]
    fn bytes_hashing_is_length_prefixed() {
        let mut a = Fingerprint::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Fingerprint::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
