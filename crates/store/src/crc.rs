//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the
//! per-record integrity guard of the on-disk store.
//!
//! A store record that fails its CRC is treated as *absent*, never as
//! an error: torn tails from a crash mid-append and bit rot both
//! degrade to cache misses. A table-driven byte-at-a-time
//! implementation is plenty — records are a few hundred bytes and the
//! check runs once per record on open and once per disk-tier hit.

/// The 256-entry lookup table for the reflected IEEE polynomial,
/// computed once on first use.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            self.state = (self.state >> 8) ^ table[((self.state ^ u32::from(b)) & 0xFF) as usize];
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"split across several updates";
        let mut crc = Crc32::new();
        for chunk in data.chunks(5) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"record payload bytes".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
