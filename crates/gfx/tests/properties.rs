//! Property-based tests of the geometry/math substrate.

use proptest::prelude::*;

use megsim_gfx::math::{edge_function, signed_area2, Mat4, Vec2, Vec3};
use megsim_gfx::prelude::*;
use megsim_gfx::shader::TextureFilter;

fn finite_vec3() -> impl Strategy<Value = Vec3> {
    (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn matrix_multiplication_is_associative_on_points(
        a in finite_vec3(), b in finite_vec3(), p in finite_vec3(),
    ) {
        let m1 = Mat4::translation(a) * Mat4::scale(Vec3::new(2.0, 0.5, 1.5));
        let m2 = Mat4::rotation_y(b.x * 0.01) * Mat4::translation(b);
        let lhs = (m1 * m2).transform_point(p);
        let rhs = m1.transform(m2.transform_point(p));
        for (l, r) in [(lhs.x, rhs.x), (lhs.y, rhs.y), (lhs.z, rhs.z), (lhs.w, rhs.w)] {
            prop_assert!((l - r).abs() <= 1e-2 + l.abs() * 1e-4, "{l} vs {r}");
        }
    }

    #[test]
    fn translation_then_inverse_translation_is_identity(t in finite_vec3(), p in finite_vec3()) {
        let round = (Mat4::translation(t) * Mat4::translation(-t)).transform_point(p);
        prop_assert!((round.x - p.x).abs() < 1e-3);
        prop_assert!((round.y - p.y).abs() < 1e-3);
        prop_assert!((round.z - p.z).abs() < 1e-3);
    }

    #[test]
    fn signed_area_flips_with_winding(
        ax in -50.0f32..50.0, ay in -50.0f32..50.0,
        bx in -50.0f32..50.0, by in -50.0f32..50.0,
        cx in -50.0f32..50.0, cy in -50.0f32..50.0,
    ) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        let c = Vec2::new(cx, cy);
        let fwd = signed_area2(a, b, c);
        let rev = signed_area2(a, c, b);
        prop_assert!((fwd + rev).abs() <= 1e-3 + fwd.abs() * 1e-4);
    }

    #[test]
    fn edge_function_is_zero_on_the_edge(
        ax in -50.0f32..50.0, ay in -50.0f32..50.0,
        bx in -50.0f32..50.0, by in -50.0f32..50.0,
        t in 0.0f32..1.0,
    ) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        let p = a + (b - a) * t;
        // Points on the segment evaluate to ~0 relative to segment size.
        let scale = ((b - a).length() + 1.0) * 50.0;
        prop_assert!(edge_function(a, b, p).abs() <= scale * 1e-3);
    }

    #[test]
    fn texture_addresses_stay_inside_the_mip_chain(
        u in -4.0f32..4.0, v in -4.0f32..4.0,
        size_log in 4u32..9,
        level in 0u32..8,
    ) {
        let size = 1u32 << size_log;
        let tex = TextureDesc::new(0, size, size, 4, 0x100);
        // Total mip-chain bytes < 2 * level0 (geometric series).
        let bound = 0x100 + 2 * tex.level0_bytes();
        for filter in TextureFilter::ALL {
            let mut out = Vec::new();
            tex.sample_addresses_lod(Vec2::new(u, v), filter, level, &mut out);
            prop_assert_eq!(out.len(), filter.memory_accesses() as usize);
            for addr in out {
                prop_assert!(addr >= 0x100 && addr < bound, "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn viewport_tiles_partition_the_screen(
        w in 1u32..2048, h in 1u32..1200, ts in prop::sample::select(vec![16u32, 32, 64]),
    ) {
        let vp = Viewport::new(w, h, ts);
        // Every pixel belongs to exactly one tile rect.
        let mut covered = 0u64;
        for ty in 0..vp.tiles_y() {
            for tx in 0..vp.tiles_x() {
                let (x0, y0, x1, y1) = vp.tile_rect(tx, ty);
                prop_assert!(x1 <= w && y1 <= h);
                covered += u64::from(x1 - x0) * u64::from(y1 - y0);
            }
        }
        prop_assert_eq!(covered, u64::from(w) * u64::from(h));
    }

    #[test]
    fn tiles_overlapping_is_consistent_with_tile_rects(
        w in 64u32..1024, h in 64u32..1024,
        min_x in -200.0f32..1200.0, min_y in -200.0f32..1200.0,
        dx in 0.0f32..300.0, dy in 0.0f32..300.0,
    ) {
        let vp = Viewport::new(w, h, 32);
        if let Some((tx0, ty0, tx1, ty1)) = vp.tiles_overlapping(min_x, min_y, min_x + dx, min_y + dy) {
            prop_assert!(tx0 <= tx1 && ty0 <= ty1);
            prop_assert!(tx1 < vp.tiles_x() && ty1 < vp.tiles_y());
            // The returned range covers the clamped bbox.
            let (x0, _, _, _) = vp.tile_rect(tx0, ty0);
            let (_, _, x1, _) = vp.tile_rect(tx1, ty1);
            prop_assert!(x0 as f32 <= (min_x + dx).max(0.0));
            prop_assert!(x1 as f32 >= min_x.min(w as f32 - 1.0).max(0.0));
        } else {
            // Fully off-screen in at least one axis.
            prop_assert!(
                min_x + dx < 0.0 || min_y + dy < 0.0
                    || min_x >= w as f32 || min_y >= h as f32
            );
        }
    }
}

#[test]
fn perspective_divide_recovers_affine_points() {
    let proj = Mat4::perspective(1.2, 1.6, 0.5, 50.0);
    // Points strictly inside the frustum map into the unit cube.
    for z in [-1.0f32, -5.0, -40.0] {
        let clip = proj.transform_point(Vec3::new(0.1 * z.abs(), -0.05 * z.abs(), z));
        let ndc = clip.perspective_divide();
        assert!(
            ndc.x.abs() <= 1.0 && ndc.y.abs() <= 1.0 && ndc.z.abs() <= 1.0,
            "z = {z}: {ndc:?}"
        );
    }
}
