//! # megsim-funcsim
//!
//! The functional GPU simulator of the MEGsim reproduction — the role
//! Gallium3D's Softpipe plays in the paper's TEAPOT toolchain. It
//! executes frames through the full Fig. 1 pipeline (Geometry Pipeline
//! → Tiling Engine → Raster Pipeline) at functional fidelity, in any of
//! three rendering architectures ([`RenderMode`]): tile-based (the
//! paper's baseline), tile-based deferred with Hidden Surface Removal,
//! or immediate-mode. It produces:
//!
//! * [`FrameActivity`]: the per-frame counters MEGsim characterizes
//!   frames with (per-shader invocation counts, primitives, fragments,
//!   texture samples, …), and
//! * [`FrameTrace`]: the per-tile work stream the cycle-level timing
//!   model (`megsim-timing`) consumes.
//!
//! ```
//! use std::sync::Arc;
//! use megsim_gfx::prelude::*;
//! use megsim_funcsim::{RenderConfig, Renderer};
//!
//! let mut shaders = ShaderTable::new();
//! shaders.add(ShaderProgram::vertex(0, "vs", 10));
//! shaders.add(ShaderProgram::fragment(0, "fs", 8, vec![]));
//!
//! let mesh = Arc::new(Mesh::new(
//!     vec![
//!         Vertex::at(Vec3::new(-0.5, -0.5, 0.0)),
//!         Vertex::at(Vec3::new(0.5, -0.5, 0.0)),
//!         Vertex::at(Vec3::new(0.0, 0.5, 0.0)),
//!     ],
//!     vec![0, 1, 2],
//!     0,
//! ));
//! let mut frame = Frame::new();
//! frame.draws.push(DrawCall {
//!     mesh,
//!     transform: Mat4::IDENTITY,
//!     vertex_shader: ShaderId(0),
//!     fragment_shader: ShaderId(0),
//!     texture: None,
//!     blend: BlendMode::Opaque,
//!     depth_test: true,
//! });
//!
//! let renderer = Renderer::new(RenderConfig::tbr(Viewport::new(64, 64, 32)));
//! let activity = renderer.frame_activity(&frame, &shaders);
//! assert_eq!(activity.primitives_emitted, 1);
//! assert!(activity.fragments_shaded > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
pub mod binning;
pub mod geometry;
pub mod raster;
#[cfg(any(test, feature = "reference"))]
pub mod raster_reference;
pub mod renderer;
pub mod trace;

pub use activity::FrameActivity;
pub use raster::RasterScratch;
pub use renderer::{RenderConfig, RenderMode, Renderer};
pub use trace::{DrawGeometry, FrameTrace, QuadTrace, TilePrim, TileTrace};
