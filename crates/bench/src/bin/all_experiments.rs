//! Runs every table and figure of the paper's evaluation in one pass,
//! reusing the per-benchmark simulations.
use megsim_bench::experiments::{
    fig3, fig4, fig5, fig6, fig7, resimulate_representatives, run_all_megsim, similarity_of,
    table1, table2, table3, table4,
};
use megsim_bench::{compute_suite, Context, ExperimentArgs};

fn main() {
    let ctx = Context::new(ExperimentArgs::from_env());
    println!(
        "MEGsim reproduction — all experiments (scale {}, seed {})\n",
        ctx.args.scale, ctx.args.seed
    );
    println!("{}", table1(&ctx));
    let data = compute_suite(&ctx);
    println!("{}", table2(&data));
    println!("{}", fig3(&data));
    println!("{}", fig4(&data));
    if let Some(bbr) = data.iter().find(|d| d.info.alias == "bbr1") {
        println!("{}", fig5(bbr, &ctx.megsim, 60));
        std::fs::create_dir_all(&ctx.args.out_dir).ok();
        let path = format!("{}/fig5_bbr1.pgm", ctx.args.out_dir);
        if std::fs::write(&path, similarity_of(bbr, &ctx.megsim).to_pgm()).is_ok() {
            eprintln!("similarity matrix PGM written to {path}");
        }
        println!("{}", fig6(bbr, &ctx.megsim));
    }
    let runs = run_all_megsim(&data, &ctx.megsim);
    // Machine-readable artifacts for external plotting.
    for (d, run) in data.iter().zip(&runs) {
        let dir = &ctx.args.out_dir;
        let ok = megsim_bench::report::write_artifact(
            dir,
            &format!("per_frame_{}.csv", d.info.alias),
            &megsim_bench::report::per_frame_csv(&d.per_frame),
        )
        .and_then(|()| {
            megsim_bench::report::write_artifact(
                dir,
                &format!("features_{}.csv", d.info.alias),
                &megsim_bench::report::feature_matrix_csv(&d.matrix),
            )
        })
        .and_then(|()| {
            megsim_bench::report::write_artifact(
                dir,
                &format!("megsim_{}.csv", d.info.alias),
                &megsim_bench::report::megsim_run_csv(run),
            )
        });
        if let Err(e) = ok {
            eprintln!(
                "warning: could not write artifacts for {}: {e}",
                d.info.alias
            );
        }
    }
    println!("{}", table3(&data, &runs));
    println!("{}", fig7(&data, &runs));
    println!(
        "{}",
        table4(&data, &ctx.megsim, ctx.args.seeds, ctx.args.trials)
    );
    // Deployment-style pass: simulate each benchmark's representatives
    // standalone. The content-addressed frame cache serves these from
    // the ground-truth pass; the delta below covers just this pass, not
    // the process lifetime, so the hit rate reflects the pass itself.
    let before = megsim_core::frame_cache::report();
    let reps = resimulate_representatives(&data, &runs, &ctx.gpu);
    eprintln!(
        "re-simulated {reps} representative frames; {}",
        megsim_core::frame_cache::report()
            .delta_since(&before)
            .summary()
    );
}
