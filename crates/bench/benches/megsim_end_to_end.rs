//! The headline comparison: full-sequence cycle simulation vs the
//! MEGsim flow (functional characterization + clustering + simulating
//! only the representatives). The wall-clock ratio is the simulation
//! speedup the paper reports as 126x at full scale.
//!
//! Both flows are additionally swept across worker-pool sizes
//! (`--threads 1/2/N` equivalent) to measure how the deterministic
//! execution layer scales; results are bit-identical at every size.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use megsim_core::evaluate::{characterize_sequence, simulate_representatives, simulate_sequence};
use megsim_core::frame_cache;
use megsim_core::pipeline::{select_representatives, MegsimConfig};
use megsim_timing::GpuConfig;
use megsim_workloads::by_alias;

fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, usize::from);
    let mut sweep = vec![1];
    if max >= 2 {
        sweep.push(2);
    }
    if max > 2 {
        sweep.push(max);
    }
    sweep
}

fn bench_end_to_end(c: &mut Criterion) {
    let workload = by_alias("pvz", 0.02, 7).expect("known alias"); // 100 frames
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();

    let mut full = c.benchmark_group("full_sequence_simulation_pvz100");
    for threads in thread_sweep() {
        full.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                megsim_exec::set_threads(threads);
                b.iter(|| simulate_sequence(workload.iter_frames(), workload.shaders(), &gpu));
            },
        );
    }
    full.finish();

    let mut flow = c.benchmark_group("megsim_flow_pvz100");
    for threads in thread_sweep() {
        flow.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                megsim_exec::set_threads(threads);
                b.iter(|| {
                    let matrix = characterize_sequence(
                        workload.iter_frames(),
                        workload.shaders(),
                        &gpu,
                        &config,
                    );
                    let selection = select_representatives(&matrix, &config);
                    simulate_representatives(
                        |i| workload.frame(i),
                        &selection,
                        workload.shaders(),
                        &gpu,
                    )
                });
            },
        );
    }
    flow.finish();
    megsim_exec::set_threads(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}

/// Times the single-thread MEGsim flow twice — cold cache, then warm —
/// and merges end-to-end frames/sec plus the frame-cache hit rate into
/// `BENCH_2.json` at the repo root.
fn write_bench_summary() {
    megsim_exec::set_threads(1);
    let workload = by_alias("pvz", 0.02, 7).expect("known alias");
    let gpu = GpuConfig::mali450_like();
    let config = MegsimConfig::default();
    let flow = || {
        let matrix =
            characterize_sequence(workload.iter_frames(), workload.shaders(), &gpu, &config);
        let selection = select_representatives(&matrix, &config);
        simulate_representatives(|i| workload.frame(i), &selection, workload.shaders(), &gpu)
    };
    frame_cache::set_enabled(true);
    frame_cache::clear();
    let start = Instant::now();
    black_box(flow());
    let cold = start.elapsed().as_secs_f64();
    let start = Instant::now();
    black_box(flow());
    let warm = start.elapsed().as_secs_f64();
    let report = frame_cache::report();
    println!("{}", report.summary());
    println!(
        "megsim flow (pvz, {} frames, 1 thread): cold {cold:.3} s, warm {warm:.3} s",
        workload.frames()
    );
    let n = workload.frames() as f64;
    let entries = vec![
        ("end_to_end_cold_frames_per_sec".to_string(), n / cold),
        ("end_to_end_warm_frames_per_sec".to_string(), n / warm),
        ("frame_cache_hit_rate".to_string(), report.hit_rate()),
    ];
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_2.json");
    if let Err(e) = megsim_bench::report::merge_bench_json(&path, &entries) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    megsim_exec::set_threads(0);
}

fn main() {
    // The criterion groups compare full simulation against the MEGsim
    // flow; run them with the frame cache off so repeated `iter` calls
    // keep measuring simulation rather than cache lookups.
    frame_cache::set_enabled(false);
    benches();
    frame_cache::set_enabled(true);
    write_bench_summary();
}
