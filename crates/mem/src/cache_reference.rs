//! The original array-of-structs cache model, kept verbatim as the
//! oracle for the way-compact, run-coalescing [`crate::cache::Cache`].
//!
//! Every access recomputes the tag shift from `set_mask.count_ones()`
//! and walks `Line` records — exactly the code the optimized cache
//! replaced. The proptests at the bottom of this file drive random
//! address streams through both models and assert access-by-access
//! bit-equality (hit/miss, writeback addresses, stats, flush counts);
//! the `reference` cargo feature exposes this module to benchmarks so
//! speedups are measured against the true baseline.

use crate::cache::{CacheAccess, CacheConfig, CacheStats};

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic counter value of the last touch (for LRU).
    last_use: u64,
}

/// The pre-optimization set-associative write-back cache.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    set_mask: u64,
    line_shift: u32,
}

impl ReferenceCache {
    /// Builds a cold cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let lines = vec![Line::default(); (sets * u64::from(config.ways)) as usize];
        let line_shift = config.line_size.trailing_zeros();
        Self {
            set_mask: sets - 1,
            line_shift,
            lines,
            tick: 0,
            stats: CacheStats::default(),
            config,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters but keeps cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses `addr`; returns hit/miss and any writeback generated.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.tick += 1;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.config.ways as usize;
        let base = set * ways;
        // Hit path.
        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return CacheAccess {
                    hit: true,
                    writeback: None,
                };
            }
        }
        // Miss: find victim (invalid first, else LRU).
        self.stats.misses += 1;
        let mut victim = base;
        for way in 0..ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim = base + way;
                break;
            }
            if line.last_use < self.lines[victim].last_use {
                victim = base + way;
            }
        }
        let evicted = self.lines[victim];
        let writeback = if evicted.valid && evicted.dirty {
            self.stats.writebacks += 1;
            let victim_line = (evicted.tag << self.set_mask.count_ones()) | set as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_use: self.tick,
        };
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Writes back all dirty lines and invalidates the cache, returning
    /// the number of writebacks produced (end-of-frame flush).
    pub fn flush(&mut self) -> u64 {
        let mut wb = 0;
        for line in &mut self.lines {
            if line.valid && line.dirty {
                wb += 1;
            }
            *line = Line::default();
        }
        self.stats.writebacks += wb;
        wb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use proptest::prelude::*;

    /// One step of a random access stream: a (small) address, a
    /// read/write flag, and a run length for the coalesced path.
    fn stream_strategy() -> impl Strategy<Value = Vec<(u64, bool, u64)>> {
        // Addresses confined to a few KiB so the tiny caches below see
        // real conflict pressure; run lengths 1..5.
        proptest::collection::vec((0u64..0x1000, proptest::bool::ANY, 1u64..5), 1..200)
    }

    fn configs() -> Vec<CacheConfig> {
        vec![
            CacheConfig::new("direct", 256, 64, 1, 1, 1),
            CacheConfig::new("2way", 512, 64, 2, 1, 1),
            CacheConfig::new("4way", 2048, 64, 4, 2, 2),
            CacheConfig::new("small-lines", 512, 32, 2, 1, 1),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The way-compact cache replays the reference access-by-access:
        /// identical hit/miss decisions, writeback addresses and stats.
        #[test]
        fn scalar_access_matches_reference(stream in stream_strategy()) {
            for config in configs() {
                let mut optimized = Cache::new(config.clone());
                let mut reference = ReferenceCache::new(config);
                for &(addr, is_write, _) in &stream {
                    let a = optimized.access(addr, is_write);
                    let b = reference.access(addr, is_write);
                    prop_assert_eq!(a, b);
                }
                prop_assert_eq!(optimized.stats(), reference.stats());
                prop_assert_eq!(optimized.flush(), reference.flush());
                prop_assert_eq!(optimized.stats(), reference.stats());
            }
        }

        /// `access_run` over same-line streaks is bit-identical to the
        /// scalar loop on the reference model: the first access's
        /// outcome matches and the end state (stats + subsequent LRU
        /// behaviour) agrees.
        #[test]
        fn access_run_matches_scalar_reference(stream in stream_strategy()) {
            for config in configs() {
                let line = config.line_size;
                let mut optimized = Cache::new(config.clone());
                let mut reference = ReferenceCache::new(config);
                for &(addr, is_write, count) in &stream {
                    let a = optimized.access_run(addr, is_write, count);
                    let mut first = None;
                    for k in 0..count {
                        // Same line, varied offsets within it.
                        let offset = (addr + k * 7) % line;
                        let b = reference.access((addr / line) * line + offset, is_write);
                        if k == 0 {
                            first = Some(b);
                        } else {
                            prop_assert!(b.hit, "run tail must hit");
                        }
                    }
                    prop_assert_eq!(Some(a), first);
                }
                prop_assert_eq!(optimized.stats(), reference.stats());
                // Post-run accesses agree, so LRU state converged too.
                for probe in (0..0x1000u64).step_by(64) {
                    prop_assert_eq!(
                        optimized.access(probe, false),
                        reference.access(probe, false)
                    );
                }
            }
        }
    }
}
