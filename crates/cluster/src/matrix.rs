//! Contiguous row-major point storage shared by the distance kernels.
//!
//! The original implementation stored observations as `Vec<Vec<f64>>`,
//! which puts every row behind its own heap allocation: the inner
//! loops of k-means, BIC, silhouette, and the similarity matrix then
//! pointer-chase on every distance. [`PointMatrix`] packs all rows
//! into one flat buffer so row access is a bounds-checked slice into
//! contiguous memory and streaming the whole matrix is a linear scan.

/// A dense `rows × dim` matrix of `f64` observations, row-major.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PointMatrix {
    data: Vec<f64>,
    dim: usize,
    rows: usize,
}

impl PointMatrix {
    /// An empty matrix whose rows will have `dim` columns.
    pub fn new(dim: usize) -> Self {
        PointMatrix { data: Vec::new(), dim, rows: 0 }
    }

    /// An empty matrix with storage reserved for `rows` rows.
    pub fn with_capacity(rows: usize, dim: usize) -> Self {
        PointMatrix {
            data: Vec::with_capacity(rows * dim),
            dim,
            rows: 0,
        }
    }

    /// Packs nested rows into contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let mut matrix = PointMatrix::with_capacity(rows.len(), dim);
        for row in &rows {
            matrix.push_row(row);
        }
        matrix
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim` (a `dim` of 0
    /// requires empty data).
    pub fn from_flat(data: Vec<f64>, dim: usize) -> Self {
        let rows = if dim == 0 {
            assert!(data.is_empty(), "dim 0 requires empty data");
            0
        } else {
            assert_eq!(data.len() % dim, 0, "data length not a multiple of dim");
            data.len() / dim
        };
        PointMatrix { data, dim, rows }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length != matrix dim");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows (observations).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates rows in order as slices.
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + Clone {
        // `chunks_exact(0)` would panic; an empty matrix has no rows to
        // yield regardless of dim.
        self.data.chunks_exact(self.dim.max(1)).take(self.rows)
    }

    /// The whole matrix as one flat row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrips() {
        let m = PointMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }

    #[test]
    fn push_row_appends() {
        let mut m = PointMatrix::new(3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn empty_matrix_is_well_formed() {
        let m = PointMatrix::from_rows(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.iter_rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn inconsistent_rows_panic() {
        let _ = PointMatrix::from_rows(vec![vec![1.0], vec![2.0, 3.0]]);
    }

    #[test]
    fn from_flat_splits_rows() {
        let m = PointMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }
}
